//! Replays the deterministic-runtime regression corpus
//! (`tests/regressions/rt_corpus.tokens`) and property-tests the runtime
//! explorer's determinism contract.
//!
//! Every failing token in the corpus once reproduced a real bug in the
//! *deployed* node event loop — the same `run_node` loop the TCP transport
//! drives, stepped under a virtual clock by `DeterministicRuntime` (see the
//! comments in the corpus file). Replaying them on every test run keeps
//! those bugs fixed at the layer they were found.

use proptest::prelude::*;
use wbam::harness::rt::{generate_rt_plan, run_rt_artifacts, run_rt_token, RtSeedToken};
use wbam::harness::Protocol;

/// Parses the corpus file, skipping comments and blank lines.
fn corpus() -> Vec<RtSeedToken> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/regressions/rt_corpus.tokens"
    );
    let text = std::fs::read_to_string(path).expect("corpus file exists");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| RtSeedToken::parse(l).unwrap_or_else(|e| panic!("bad corpus token `{l}`: {e}")))
        .collect()
}

#[test]
fn rt_regression_corpus_replays_clean() {
    let tokens = corpus();
    assert!(!tokens.is_empty(), "corpus must not be empty");
    let mut failures = Vec::new();
    for token in &tokens {
        let report = run_rt_token(token);
        if let Some(violation) = report.violation {
            failures.push(format!("{token}: {violation}"));
        }
        if report.completed != report.ops {
            failures.push(format!(
                "{token}: only {} of {} operations completed",
                report.completed, report.ops
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "previously fixed deployed-loop bugs reappeared:\n{}",
        failures.join("\n")
    );
}

/// The acceptance contract of `rt1` tokens: re-running a token reproduces
/// the identical interleaving byte for byte — equal digests over every
/// delivery record *and* the scheduler's decision trace.
#[test]
fn rt_corpus_tokens_replay_byte_for_byte() {
    // One token per protocol is enough to pin the determinism contract; the
    // clean-replay test above already runs every token once.
    let mut seen = std::collections::BTreeSet::new();
    for token in corpus() {
        if !seen.insert(token.protocol.label()) {
            continue;
        }
        let plan = generate_rt_plan(&token);
        let first = run_rt_artifacts(&token, &plan);
        let second = run_rt_artifacts(&token, &plan);
        assert_eq!(
            first.report.digest, second.report.digest,
            "{token} did not replay deterministically"
        );
        assert_eq!(first.trace_digest, second.trace_digest);
        assert_eq!(first.deliveries, second.deliveries);
        assert_eq!(first.report.completed, second.report.completed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Twin-run determinism over arbitrary seeds and every protocol: two
    /// runs of the same `rt1` token — crashes, elections, retries and all —
    /// must produce element-wise identical delivery records and identical
    /// scheduler traces. This is deliberately *not* a cleanliness check
    /// (the sweep in CI covers that); determinism must hold even for a
    /// hypothetical future failing seed, or its token would be unreplayable.
    #[test]
    fn rt_tokens_are_deterministic(seed in 0u64..u64::MAX, proto in 0usize..3) {
        let token = RtSeedToken {
            protocol: Protocol::evaluated()[proto],
            seed,
        };
        let plan = generate_rt_plan(&token);
        let first = run_rt_artifacts(&token, &plan);
        let second = run_rt_artifacts(&token, &plan);
        prop_assert_eq!(first.report.digest, second.report.digest);
        prop_assert_eq!(first.trace_digest, second.trace_digest);
        prop_assert_eq!(&first.deliveries, &second.deliveries);
        prop_assert_eq!(first.report.violation, second.report.violation);
    }
}
