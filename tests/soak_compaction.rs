//! Soak tests for bounded-memory ordering: compaction, checkpoints and
//! catch-up state transfer.
//!
//! The tier-1 (fast) profile drives a few thousand multicasts through every
//! protocol with compaction on and asserts that each replica's live record
//! count stays bounded by the in-flight window plus the compaction lag — the
//! property that lets a replica serve unbounded traffic in bounded memory.
//! The `#[ignore]`d full profile raises the load to ≥100k multicasts per
//! protocol (run it with `cargo test --release -- --ignored soak`).
//!
//! The restart test crashes a follower mid-run, keeps the load going so the
//! group's watermark advances past everything the follower slept through,
//! restarts it, and verifies it recovers via checkpoint-based state transfer
//! — with the per-process delivery invariants and the key-value store
//! linearizability oracle (taught to excuse the installed history below the
//! transfer watermark) holding over the whole run.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use wbam::core::invariants::check_total_order;
use wbam::harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam::kvstore::{KvCommand, KvHistory, KvStore, Partitioner};
use wbam::simnet::LatencyModel;
use wbam::types::{GroupId, MsgId, ProcessId, Timestamp};

const NUM_GROUPS: usize = 3;
const GROUP_SIZE: usize = 3;
const INTERVAL: u64 = 50;
const LAG: usize = 100;

/// The live-record bound asserted throughout a soak: the compaction lag
/// window, plus up to a few STABLE intervals of not-yet-stable deliveries
/// (reports are sent every `INTERVAL` deliveries per member and cross-group
/// watermarks piggyback on the next advance), plus a small in-flight window.
fn live_bound() -> usize {
    LAG + 8 * INTERVAL as usize + 64
}

fn soak_spec(seed: u64) -> ClusterSpec {
    ClusterSpec {
        num_groups: NUM_GROUPS,
        group_size: GROUP_SIZE,
        num_clients: 2,
        num_sites: 1,
        latency: LatencyModel::constant(Duration::from_micros(500)),
        service_time: Duration::ZERO,
        seed,
        max_batch: 1,
        batch_delay: Duration::ZERO,
        nemesis: wbam::types::NemesisPlan::quiet(),
        record_trace: false,
        auto_election: false,
        compaction_interval: 0,
        compaction_lag: 0,
    }
    .with_compaction(INTERVAL, LAG)
}

/// Deterministically generated command `i`: a mix of single-partition writes
/// and reads with cross-partition transfers (conflicting destinations).
fn command(i: usize) -> KvCommand {
    let key = |k: usize| format!("k{}", k % 7);
    match i % 10 {
        0..=3 => KvCommand::put(&key(i), (i % 997) as i64),
        4 | 5 => KvCommand::add(&key(i + 1), ((i % 13) as i64) - 6),
        6 => KvCommand::get(&key(i + 2)),
        _ => {
            let from = key(i);
            let mut to = key(i + 1);
            if to == from {
                to = key(i + 2);
            }
            KvCommand::transfer(&from, &to, 1 + (i % 9) as i64)
        }
    }
}

fn replicas_of(sim: &ProtocolSim) -> Vec<ProcessId> {
    sim.cluster()
        .groups()
        .iter()
        .flat_map(|g| g.members().iter().copied())
        .collect()
}

fn assert_bounded(sim: &ProtocolSim, label: &str, when: &str) {
    for p in replicas_of(sim) {
        let live = sim
            .live_records(p)
            .expect("compaction-capable replicas expose live_records");
        assert!(
            live <= live_bound(),
            "{label}: {p} holds {live} live records {when} (bound {})",
            live_bound()
        );
    }
}

struct SoakRun {
    sim: ProtocolSim,
    history: KvHistory,
    op_cmds: BTreeMap<MsgId, KvCommand>,
    submitted: usize,
}

/// Drives `messages` multicasts through `protocol`, pacing submissions so the
/// in-flight window stays small, and asserts the live-record bound at every
/// checkpoint of the drive loop.
fn drive_soak(protocol: Protocol, messages: usize, seed: u64) -> SoakRun {
    let spec = soak_spec(seed);
    let mut sim = ProtocolSim::build(protocol, &spec);
    let partitioner = Partitioner::new(NUM_GROUPS as u32);
    let mut history = KvHistory {
        partitions: NUM_GROUPS as u32,
        ..KvHistory::default()
    };
    let mut op_cmds = BTreeMap::new();
    // Pace: one submission per client per 250 µs, checked every few thousand.
    let pace = Duration::from_micros(250);
    let chunk = 2_000usize;
    let mut submitted = 0usize;
    while submitted < messages {
        let n = chunk.min(messages - submitted);
        for i in 0..n {
            let idx = submitted + i;
            let cmd = command(idx);
            let at = pace * (idx as u32 / 2);
            let client = idx % 2;
            let dest = partitioner
                .destination_of(cmd.keys())
                .expect("commands have keys");
            let payload = wbam::types::wire::to_json(&cmd).expect("commands encode");
            let id = sim.submit_with_payload(at, client, dest.groups(), payload.into_bytes());
            history.invoke(id, cmd.clone(), at);
            op_cmds.insert(id, cmd);
        }
        submitted += n;
        // Run until this chunk's submissions (plus their protocol traffic) is
        // processed, then check the bound mid-flight.
        let horizon = pace * (submitted as u32 / 2) + Duration::from_millis(50);
        sim.run_until_quiescent(horizon);
        assert_bounded(
            &sim,
            protocol.label(),
            &format!("after {submitted} submissions"),
        );
    }
    sim.run_until_quiescent(Duration::from_secs(3_600));
    SoakRun {
        sim,
        history,
        op_cmds,
        submitted,
    }
}

/// Feeds the run's deliveries through the per-process invariants and the
/// linearizability oracle (with watermark excusals for state transfers).
fn check_run(run: &mut SoakRun, faulty: &BTreeSet<ProcessId>, label: &str) {
    let deliveries = run.sim.deliveries().to_vec();
    let partitioner = Partitioner::new(NUM_GROUPS as u32);
    let mut per_process: BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>> = BTreeMap::new();
    let mut replica_stores: BTreeMap<ProcessId, KvStore> = BTreeMap::new();
    for record in &deliveries {
        match record.group {
            None => run.history.complete(record.msg_id, record.time),
            Some(group) => {
                let gts = record
                    .global_ts
                    .unwrap_or_else(|| panic!("{label}: delivery without global timestamp"));
                per_process
                    .entry(record.process)
                    .or_default()
                    .push((record.msg_id, gts));
                let cmd = run
                    .op_cmds
                    .get(&record.msg_id)
                    .unwrap_or_else(|| panic!("{label}: delivered unknown {}", record.msg_id));
                let store = replica_stores
                    .entry(record.process)
                    .or_insert_with(|| KvStore::with_partitioner(group, partitioner));
                let read = store.apply_read(cmd);
                run.history
                    .applied(record.msg_id, record.process, group, gts, read);
            }
        }
    }
    check_total_order(&per_process)
        .unwrap_or_else(|v| panic!("{label}: total-order invariant violated: {v}"));
    let excusals = run.sim.transfer_excusals();
    let drop_excusals = run.sim.drop_excusals();
    run.history
        .check_excusing(faulty, false, &excusals, &drop_excusals)
        .unwrap_or_else(|v| panic!("{label}: linearizability violated: {v}"));
    // Every operation completed at its client.
    let incomplete = run
        .history
        .ops
        .iter()
        .filter(|o| o.completed_at.is_none())
        .count();
    assert_eq!(
        incomplete, 0,
        "{label}: {incomplete} of {} operations never completed",
        run.submitted
    );
}

fn soak(protocol: Protocol, messages: usize) {
    let mut run = drive_soak(protocol, messages, 0xC0FFEE);
    let label = protocol.label();
    assert_bounded(&run.sim, label, "at the end of the soak");
    // The bound is meaningful: far more was delivered than is resident.
    let metrics = run.sim.metrics();
    let max_live = metrics.gauge("live_records_max").expect("gauge attached");
    let pruned = metrics.gauge("pruned_total").expect("gauge attached");
    assert!(
        pruned > 0.0,
        "{label}: compaction never pruned anything (max live {max_live})"
    );
    assert!(
        (max_live as usize) <= live_bound(),
        "{label}: live-record gauge {max_live} exceeds bound {}",
        live_bound()
    );
    check_run(&mut run, &BTreeSet::new(), label);
}

#[test]
fn soak_whitebox_records_stay_bounded() {
    soak(Protocol::WhiteBox, 4_000);
}

#[test]
fn soak_ftskeen_records_stay_bounded() {
    soak(Protocol::FtSkeen, 3_000);
}

#[test]
fn soak_fastcast_records_stay_bounded() {
    soak(Protocol::FastCast, 3_000);
}

/// Full soak profile: ≥100k multicasts per protocol. Ignored in tier-1 (it
/// runs for minutes); `cargo test --release -- --ignored` covers it.
#[test]
#[ignore = "full soak profile: run with --release -- --ignored"]
fn soak_full_100k_all_protocols() {
    for protocol in Protocol::evaluated() {
        soak(protocol, 100_000);
    }
}

/// Crash a follower mid-soak, keep the traffic flowing until the group's
/// watermark passes everything it slept through, restart it, and verify it
/// recovers through checkpoint-based state transfer: its delivery progress
/// jumps over the pruned history (excused to the oracle, not missing) and it
/// resumes delivering new traffic.
fn restart_recovers_via_state_transfer(protocol: Protocol, messages: usize) {
    let spec = soak_spec(0xBEEF);
    let mut sim = ProtocolSim::build(protocol, &spec);
    let partitioner = Partitioner::new(NUM_GROUPS as u32);
    let mut history = KvHistory {
        partitions: NUM_GROUPS as u32,
        ..KvHistory::default()
    };
    let mut op_cmds = BTreeMap::new();
    let pace = Duration::from_micros(250);
    for idx in 0..messages {
        let cmd = command(idx);
        let at = pace * (idx as u32 / 2);
        let dest = partitioner
            .destination_of(cmd.keys())
            .expect("commands have keys");
        let payload = wbam::types::wire::to_json(&cmd).expect("commands encode");
        let id = sim.submit_with_payload(at, idx % 2, dest.groups(), payload.into_bytes());
        history.invoke(id, cmd.clone(), at);
        op_cmds.insert(id, cmd);
    }
    let total = pace * (messages as u32 / 2);
    // The victim: a follower of group 0. Down for the middle ~40% of the run
    // — long enough for the quorum's watermark to pass what it misses.
    let victim = sim.cluster().group(GroupId(0)).unwrap().members()[1];
    let down = total.mul_f64(0.3);
    let up = total.mul_f64(0.7);
    sim.crash(down, victim);
    sim.restart(up, victim);
    sim.run_until_quiescent(Duration::from_secs(3_600));

    let label = protocol.label();
    let excusals = sim.transfer_excusals();
    let (transfers, excused_below, final_delivered) = match protocol {
        Protocol::WhiteBox => {
            let r = sim.whitebox_replica(victim).unwrap();
            (
                r.transfer_recoveries(),
                r.transfer_excused_below(),
                r.max_delivered_gts(),
            )
        }
        _ => {
            let r = sim.baseline_replica(victim).unwrap();
            (
                r.transfer_recoveries(),
                r.transfer_excused_below(),
                r.max_delivered_gts(),
            )
        }
    };
    assert!(
        transfers > 0,
        "{label}: the restarted replica never recovered via state transfer"
    );
    assert!(
        excusals.contains_key(&victim),
        "{label}: no excusal watermark recorded for the restarted replica"
    );
    assert!(
        final_delivered > excused_below,
        "{label}: the restarted replica delivered nothing beyond its transfer point"
    );
    assert_bounded(&sim, label, "after the restart recovery");

    // Whole-run invariants + oracle, excusing the victim's installed history.
    let mut run = SoakRun {
        sim,
        history,
        op_cmds,
        submitted: messages,
    };
    let faulty: BTreeSet<ProcessId> = [victim].into_iter().collect();
    check_run(&mut run, &faulty, label);
}

#[test]
fn restart_after_soak_recovers_whitebox() {
    restart_recovers_via_state_transfer(Protocol::WhiteBox, 4_000);
}

#[test]
fn restart_after_soak_recovers_ftskeen() {
    restart_recovers_via_state_transfer(Protocol::FtSkeen, 3_000);
}

#[test]
fn restart_after_soak_recovers_fastcast() {
    restart_recovers_via_state_transfer(Protocol::FastCast, 3_000);
}
