//! Property tests for the compaction subsystem: checkpoint round-trips and
//! the compacted-vs-uncompacted twin-run equivalence.
//!
//! 1. A key-value store restored from its snapshot is observably equivalent
//!    to the original — and stays equivalent under further commands.
//! 2. A fresh replica that recovers from a peer's `checkpoint + suffix`
//!    through the real `NEW_LEADER`/`NEW_STATE` wire path ends up observably
//!    equivalent: same watermark, a delivery progress jumped to it, and a
//!    re-delivery of exactly the resident suffix in timestamp order.
//! 3. Running the same seeded workload with compaction on and off produces
//!    *identical* per-replica delivery sequences (message ids and global
//!    timestamps): compaction at any watermark cadence is invisible to the
//!    delivered order.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use wbam::core::{ReplicaConfig, WhiteBoxMsg, WhiteBoxReplica};
use wbam::harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam::kvstore::{KvCommand, KvStore};
use wbam::simnet::LatencyModel;
use wbam::types::{
    Action, AppMessage, Ballot, ClusterConfig, Destination, Event, GroupId, MsgId, Node, Payload,
    ProcessId, Timestamp,
};

fn arb_command() -> impl Strategy<Value = KvCommand> {
    let key = (0u32..5).prop_map(|k| format!("k{k}"));
    prop_oneof![
        (key.clone(), -100i64..100).prop_map(|(k, v)| KvCommand::put(&k, v)),
        (key.clone(), -10i64..10).prop_map(|(k, d)| KvCommand::add(&k, d)),
        key.clone().prop_map(|k| KvCommand::get(&k)),
        (key.clone(), key.clone(), 1i64..20).prop_map(|(a, b, v)| KvCommand::transfer(&a, &b, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// KV snapshot → restore yields an observably equivalent store, and the
    /// equivalence is preserved under further identical command streams.
    #[test]
    fn kv_snapshot_restore_is_observably_equivalent(
        before in proptest::collection::vec(arb_command(), 0..40),
        after in proptest::collection::vec(arb_command(), 0..20),
    ) {
        let mut original = KvStore::new(GroupId(0));
        for cmd in &before {
            original.apply(cmd);
        }
        let snap = original.to_snapshot();
        let bytes = snap.to_bytes().unwrap();
        let decoded = wbam::kvstore::KvSnapshot::from_bytes(&bytes).unwrap();
        let mut restored = KvStore::from_snapshot(decoded);
        prop_assert_eq!(restored.digest(), original.digest());
        prop_assert_eq!(restored.applied(), original.applied());
        for cmd in &after {
            let a = original.apply_read(cmd);
            let b = restored.apply_read(cmd);
            prop_assert_eq!(a, b, "divergence after restore on {:?}", cmd);
        }
        prop_assert_eq!(restored.digest(), original.digest());
    }
}

/// Builds a single-group (size 3) replica with compaction enabled.
fn standalone(id: u32, interval: u64, lag: usize) -> WhiteBoxReplica {
    let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
    let cfg = ReplicaConfig::new(ProcessId(id), GroupId(0), cluster)
        .without_auto_election()
        .without_sender_notification()
        .with_compaction(interval, lag);
    WhiteBoxReplica::new(cfg)
}

fn deliver_msg(seq: u64) -> WhiteBoxMsg {
    let m = AppMessage::new(
        MsgId::new(ProcessId(3), seq),
        Destination::single(GroupId(0)),
        Payload::from("op"),
    );
    WhiteBoxMsg::Deliver {
        msg: m,
        ballot: Ballot::new(1, ProcessId(0)),
        local_ts: Timestamp::new(seq + 1, GroupId(0)),
        global_ts: Timestamp::new(seq + 1, GroupId(0)),
    }
}

/// Routes messages between two live replicas (every other recipient is
/// treated as crashed) until quiescent; returns each replica's application
/// deliveries, in order. FIFO processing keeps the exchange deterministic.
fn exchange(
    a: &mut WhiteBoxReplica,
    b: &mut WhiteBoxReplica,
    initial: Vec<(ProcessId, ProcessId, WhiteBoxMsg)>,
) -> BTreeMap<ProcessId, Vec<Timestamp>> {
    let mut queue: std::collections::VecDeque<(ProcessId, ProcessId, WhiteBoxMsg)> = initial.into();
    let mut delivered: BTreeMap<ProcessId, Vec<Timestamp>> = BTreeMap::new();
    let mut steps = 0u32;
    while let Some((from, to, msg)) = queue.pop_front() {
        steps += 1;
        assert!(steps < 100_000, "exchange did not quiesce");
        let node: &mut WhiteBoxReplica = if to == a.id() {
            a
        } else if to == b.id() {
            b
        } else {
            continue; // crashed member
        };
        for action in node.on_event(Duration::ZERO, Event::message(from, msg.clone())) {
            match action {
                Action::Send { to: next, msg } => queue.push_back((to, next, msg)),
                Action::Deliver(d) => delivered
                    .entry(to)
                    .or_default()
                    .push(d.global_ts.expect("replica deliveries carry a timestamp")),
                _ => {}
            }
        }
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint + suffix restore through the real NEW_LEADER / NEW_STATE
    /// wire path: a fresh group member that recovers from a peer holding
    /// compacted history ends up with the peer's watermark, a delivery
    /// progress jumped to it (the pruned prefix is installed, not replayed),
    /// and a re-delivery of exactly the resident suffix in timestamp order.
    #[test]
    fn checkpoint_and_suffix_restore_an_equivalent_replica(
        delivered in 10u64..120,
        watermark in 1u64..100,
        lag in 0usize..8,
    ) {
        let watermark = watermark.min(delivered);
        // Peer A: a follower that delivered `delivered` messages and pruned
        // below `watermark` (driven by an explicit STABLE_ADVANCE).
        let mut a = standalone(1, 10, lag);
        for seq in 0..delivered {
            a.on_event(Duration::ZERO, Event::message(ProcessId(0), deliver_msg(seq)));
        }
        let mut watermarks = BTreeMap::new();
        watermarks.insert(GroupId(0), Timestamp::new(watermark, GroupId(0)));
        a.on_event(
            Duration::ZERO,
            Event::message(ProcessId(0), WhiteBoxMsg::StableAdvance { watermarks }),
        );
        prop_assert_eq!(a.watermark(), Timestamp::new(watermark, GroupId(0)));
        let expected_live = ((delivered - watermark) as usize).max(lag.min(delivered as usize));
        prop_assert_eq!(a.live_records(), expected_live);

        // B: a fresh member campaigning; its recovery quorum is {A, B} (the
        // third member stays crashed). B recovers through the real wire path:
        // NEW_LEADER → NEWLEADER_ACK (checkpoint + suffix) → NEW_STATE →
        // NEWSTATE_ACK → line-66 re-delivery.
        let mut b = standalone(2, 10, lag);
        let campaign = b.on_event(Duration::ZERO, Event::BecomeLeader);
        let initial: Vec<(ProcessId, ProcessId, WhiteBoxMsg)> = campaign
            .into_iter()
            .filter_map(|act| match act {
                Action::Send { to, msg } => Some((ProcessId(2), to, msg)),
                _ => None,
            })
            .collect();
        let deliveries = exchange(&mut a, &mut b, initial);
        let completion = deliveries.get(&ProcessId(2)).cloned().unwrap_or_default();
        prop_assert!(
            !deliveries.contains_key(&ProcessId(1)),
            "A must not re-deliver anything it already delivered"
        );

        // Observable equivalence.
        prop_assert_eq!(b.watermark(), a.watermark(), "watermarks agree");
        prop_assert!(b.transfer_recoveries() >= 1, "B recovered via state transfer");
        prop_assert_eq!(
            b.transfer_excused_below(),
            Timestamp::new(watermark, GroupId(0)),
            "B's installed history is exactly the pruned prefix"
        );
        prop_assert_eq!(
            b.max_delivered_gts(),
            a.max_delivered_gts(),
            "B's delivery progress catches up to A's"
        );
        // B re-delivered exactly the suffix above the watermark, in order.
        let expected: Vec<Timestamp> = ((watermark + 1)..=delivered)
            .map(|t| Timestamp::new(t, GroupId(0)))
            .collect();
        prop_assert_eq!(completion, expected, "suffix re-delivery matches");
    }
}

/// Runs a seeded workload and returns every replica's delivery sequence
/// (message id + global timestamp, in delivery order) plus completions.
type Sequences = BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>>;

fn run_twin(
    protocol: Protocol,
    seed: u64,
    messages: usize,
    compaction: Option<(u64, usize)>,
) -> (Sequences, usize) {
    let mut spec = ClusterSpec {
        num_groups: 3,
        group_size: 3,
        num_clients: 2,
        num_sites: 1,
        latency: LatencyModel::constant(Duration::from_millis(1)),
        service_time: Duration::ZERO,
        seed,
        max_batch: 1,
        batch_delay: Duration::ZERO,
        nemesis: wbam::types::NemesisPlan::quiet(),
        record_trace: false,
        auto_election: false,
        compaction_interval: 0,
        compaction_lag: 0,
    };
    if let Some((interval, lag)) = compaction {
        spec = spec.with_compaction(interval, lag);
    }
    let mut sim = ProtocolSim::build(protocol, &spec);
    // A deterministic function of (seed, i) picks destinations and times —
    // identical across the twin runs by construction.
    for i in 0..messages {
        let mix = (seed as usize).wrapping_add(i.wrapping_mul(2_654_435_761)) % 7;
        let dest: Vec<GroupId> = match mix {
            0..=2 => vec![GroupId((i % 3) as u32)],
            3 | 4 => vec![GroupId((i % 3) as u32), GroupId(((i + 1) % 3) as u32)],
            _ => vec![GroupId(0), GroupId(1), GroupId(2)],
        };
        let at = Duration::from_micros(200) * (i as u32);
        sim.submit(at, i % 2, &dest, 16);
    }
    sim.run_until_quiescent(Duration::from_secs(600));
    let mut sequences: Sequences = BTreeMap::new();
    let mut completions = 0usize;
    for rec in sim.deliveries() {
        match rec.group {
            None => completions += 1,
            Some(_) => sequences
                .entry(rec.process)
                .or_default()
                .push((rec.msg_id, rec.global_ts.unwrap_or(Timestamp::BOTTOM))),
        }
    }
    (sequences, completions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Compaction at random cadences never changes the delivered order: the
    /// compacted run's per-replica delivery sequences are byte-for-byte the
    /// uncompacted twin's on the same seed.
    #[test]
    fn compaction_never_changes_the_delivered_order(
        seed in 0u64..200,
        messages in 30usize..140,
        interval in 1u64..40,
        lag in 0usize..30,
        protocol_pick in 0usize..3,
    ) {
        let protocol = Protocol::evaluated()[protocol_pick];
        let (plain, plain_done) = run_twin(protocol, seed, messages, None);
        let (compacted, compacted_done) = run_twin(protocol, seed, messages, Some((interval, lag)));
        prop_assert_eq!(plain_done, compacted_done, "completions diverged");
        prop_assert_eq!(plain, compacted, "delivery sequences diverged");
    }
}
