//! Property tests of the wire framing (`wbam_types::wire`) over *every*
//! protocol message type the TCP runtime carries: each `WhiteBoxMsg`,
//! `BaselineMsg` and `PaxosMsg` variant — including `ACCEPT_BATCH`,
//! checkpoint-bearing `NEW_STATE` and `STATE_TRANSFER` — must survive
//! framing byte-for-byte under **both wire codecs** (compact binary, the
//! deployed default, and JSON, the `--wire json` compatibility codec), both
//! as a single frame and as concatenated frames fed to the decoder at
//! randomized split points (the way a TCP reader actually sees them). The
//! preamble handshake that keeps mixed-codec clusters from ever exchanging
//! frames is regression-tested at the bottom.

use std::collections::BTreeMap;

use bytes::BytesMut;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::de::DeserializeOwned;
use serde::Serialize;
use wbam_baselines::{BaselineMsg, Command};
use wbam_consensus::{PaxosMsg, Slot};
use wbam_core::{AcceptEntry, DeliverEntry, RecordSnapshot, StateSnapshot, WhiteBoxMsg};
use wbam_types::wire::{
    check_preamble, decode_frame_with, encode_frame_with, encode_preamble, WireCodec,
};
use wbam_types::{
    AppMessage, Ballot, Checkpoint, DeliveredFilter, Destination, GroupId, MsgId, Payload, Phase,
    ProcessId, Timestamp,
};

// --- random builders -------------------------------------------------------

fn arb_msg_id(rng: &mut StdRng) -> MsgId {
    MsgId::new(ProcessId(rng.gen_range(0..32)), rng.gen_range(0..10_000))
}

fn arb_timestamp(rng: &mut StdRng) -> Timestamp {
    if rng.gen_bool(0.1) {
        Timestamp::BOTTOM
    } else {
        Timestamp::new(rng.gen_range(0..100_000), GroupId(rng.gen_range(0..8)))
    }
}

fn arb_ballot(rng: &mut StdRng) -> Ballot {
    if rng.gen_bool(0.1) {
        Ballot::BOTTOM
    } else {
        Ballot::new(rng.gen_range(0..64), ProcessId(rng.gen_range(0..32)))
    }
}

fn arb_app_message(rng: &mut StdRng) -> AppMessage {
    let num_dest = rng.gen_range(1..=3);
    let mut dest: Vec<GroupId> = Vec::new();
    while dest.len() < num_dest {
        let g = GroupId(rng.gen_range(0..8));
        if !dest.contains(&g) {
            dest.push(g);
        }
    }
    let payload: Vec<u8> = (0..rng.gen_range(0..64))
        .map(|_| rng.gen_range(0..=255) as u8)
        .collect();
    AppMessage::new(
        arb_msg_id(rng),
        Destination::new(dest).expect("non-empty destination"),
        Payload::from(payload),
    )
}

fn arb_ballot_vector(rng: &mut StdRng) -> BTreeMap<GroupId, Ballot> {
    (0..rng.gen_range(1..4))
        .map(|_| (GroupId(rng.gen_range(0..8)), arb_ballot(rng)))
        .collect()
}

fn arb_watermarks(rng: &mut StdRng) -> BTreeMap<GroupId, Timestamp> {
    (0..rng.gen_range(0..4))
        .map(|_| (GroupId(rng.gen_range(0..8)), arb_timestamp(rng)))
        .collect()
}

fn arb_phase(rng: &mut StdRng) -> Phase {
    match rng.gen_range(0..4) {
        0 => Phase::Start,
        1 => Phase::Proposed,
        2 => Phase::Accepted,
        _ => Phase::Committed,
    }
}

fn arb_snapshot(rng: &mut StdRng) -> StateSnapshot {
    let mut snapshot = StateSnapshot::new();
    for _ in 0..rng.gen_range(0..4) {
        let msg = arb_app_message(rng);
        snapshot.records.insert(
            msg.id,
            RecordSnapshot {
                msg: msg.clone(),
                phase: arb_phase(rng),
                local_ts: arb_timestamp(rng),
                global_ts: arb_timestamp(rng),
            },
        );
    }
    snapshot
}

fn arb_checkpoint(rng: &mut StdRng) -> Checkpoint {
    let mut dedup = DeliveredFilter::new();
    for _ in 0..rng.gen_range(0..16) {
        dedup.insert(arb_msg_id(rng));
    }
    Checkpoint {
        group: GroupId(rng.gen_range(0..8)),
        ballot: arb_ballot(rng),
        clock: rng.gen_range(0..100_000),
        watermarks: arb_watermarks(rng),
        max_delivered_gts: arb_timestamp(rng),
        delivered_count: rng.gen_range(0..100_000),
        dedup,
        app_state: (0..rng.gen_range(0..32))
            .map(|_| rng.gen_range(0..=255) as u8)
            .collect(),
    }
}

fn arb_command(rng: &mut StdRng) -> Command {
    if rng.gen_bool(0.5) {
        Command::AssignLocal {
            msg: arb_app_message(rng),
            local_ts: arb_timestamp(rng),
        }
    } else {
        Command::CommitGlobal {
            msg_id: arb_msg_id(rng),
            global_ts: arb_timestamp(rng),
        }
    }
}

/// One random instance of the white-box wire variant with index `variant`
/// (0..16 covers the whole enum).
fn arb_whitebox(rng: &mut StdRng, variant: usize) -> WhiteBoxMsg {
    match variant {
        0 => WhiteBoxMsg::Multicast {
            msg: arb_app_message(rng),
        },
        1 => WhiteBoxMsg::Accept {
            msg: arb_app_message(rng),
            group: GroupId(rng.gen_range(0..8)),
            ballot: arb_ballot(rng),
            local_ts: arb_timestamp(rng),
        },
        2 => WhiteBoxMsg::AcceptAck {
            msg_id: arb_msg_id(rng),
            group: GroupId(rng.gen_range(0..8)),
            ballots: arb_ballot_vector(rng),
        },
        3 => WhiteBoxMsg::AcceptBatch {
            group: GroupId(rng.gen_range(0..8)),
            ballot: arb_ballot(rng),
            entries: (0..rng.gen_range(1..5))
                .map(|_| AcceptEntry {
                    msg: arb_app_message(rng),
                    local_ts: arb_timestamp(rng),
                })
                .collect(),
        },
        4 => WhiteBoxMsg::AcceptAckBatch {
            group: GroupId(rng.gen_range(0..8)),
            entries: (0..rng.gen_range(1..5))
                .map(|_| (arb_msg_id(rng), arb_ballot_vector(rng)))
                .collect(),
        },
        5 => WhiteBoxMsg::Deliver {
            msg: arb_app_message(rng),
            ballot: arb_ballot(rng),
            local_ts: arb_timestamp(rng),
            global_ts: arb_timestamp(rng),
        },
        6 => WhiteBoxMsg::DeliverBatch {
            ballot: arb_ballot(rng),
            entries: (0..rng.gen_range(1..5))
                .map(|_| DeliverEntry {
                    msg: arb_app_message(rng),
                    local_ts: arb_timestamp(rng),
                    global_ts: arb_timestamp(rng),
                })
                .collect(),
        },
        7 => WhiteBoxMsg::NewLeader {
            ballot: arb_ballot(rng),
        },
        8 => WhiteBoxMsg::NewLeaderAck {
            ballot: arb_ballot(rng),
            cballot: arb_ballot(rng),
            checkpoint: arb_checkpoint(rng),
            snapshot: arb_snapshot(rng),
        },
        9 => WhiteBoxMsg::NewState {
            ballot: arb_ballot(rng),
            checkpoint: arb_checkpoint(rng),
            snapshot: arb_snapshot(rng),
        },
        10 => WhiteBoxMsg::NewStateAck {
            ballot: arb_ballot(rng),
        },
        11 => WhiteBoxMsg::Heartbeat {
            ballot: arb_ballot(rng),
        },
        12 => WhiteBoxMsg::StableReport {
            group: GroupId(rng.gen_range(0..8)),
            delivered_gts: arb_timestamp(rng),
        },
        13 => WhiteBoxMsg::StableAdvance {
            watermarks: arb_watermarks(rng),
        },
        14 => WhiteBoxMsg::StablePruned {
            msg_id: arb_msg_id(rng),
            watermarks: arb_watermarks(rng),
        },
        _ => WhiteBoxMsg::ClientReply {
            msg_id: arb_msg_id(rng),
            group: GroupId(rng.gen_range(0..8)),
            global_ts: arb_timestamp(rng),
        },
    }
}

const WHITEBOX_VARIANTS: usize = 16;

/// One random instance of the Paxos wire variant with index `variant`
/// (0..8 covers the whole enum).
fn arb_paxos(rng: &mut StdRng, variant: usize) -> PaxosMsg<Command> {
    match variant {
        0 => PaxosMsg::Prepare {
            ballot: arb_ballot(rng),
        },
        1 => PaxosMsg::Promise {
            ballot: arb_ballot(rng),
            accepted: (0..rng.gen_range(0..4))
                .map(|_| {
                    (
                        rng.gen_range(0..1000) as Slot,
                        (arb_ballot(rng), arb_command(rng)),
                    )
                })
                .collect(),
        },
        2 => PaxosMsg::Accept {
            ballot: arb_ballot(rng),
            slot: rng.gen_range(0..1000),
            cmd: arb_command(rng),
        },
        3 => PaxosMsg::Accepted {
            ballot: arb_ballot(rng),
            slot: rng.gen_range(0..1000),
        },
        4 => PaxosMsg::Chosen {
            slot: rng.gen_range(0..1000),
            cmd: arb_command(rng),
        },
        5 => PaxosMsg::AcceptMany {
            ballot: arb_ballot(rng),
            start_slot: rng.gen_range(0..1000),
            cmds: (0..rng.gen_range(1..5)).map(|_| arb_command(rng)).collect(),
        },
        6 => PaxosMsg::AcceptedMany {
            ballot: arb_ballot(rng),
            start_slot: rng.gen_range(0..1000),
            count: rng.gen_range(1..16),
        },
        _ => PaxosMsg::ChosenMany {
            entries: (0..rng.gen_range(1..5))
                .map(|_| (rng.gen_range(0..1000) as Slot, arb_command(rng)))
                .collect(),
        },
    }
}

const PAXOS_VARIANTS: usize = 8;

/// One random instance of the baseline wire variant with index `variant`
/// (0..10 covers the whole enum; the `Paxos` variant nests a random
/// `PaxosMsg` variant).
fn arb_baseline(rng: &mut StdRng, variant: usize) -> BaselineMsg {
    match variant {
        0 => BaselineMsg::Multicast {
            msg: arb_app_message(rng),
        },
        1 => BaselineMsg::Propose {
            msg: arb_app_message(rng),
            group: GroupId(rng.gen_range(0..8)),
            local_ts: arb_timestamp(rng),
        },
        2 => BaselineMsg::Confirm {
            msg_id: arb_msg_id(rng),
            group: GroupId(rng.gen_range(0..8)),
        },
        3 => BaselineMsg::Deliver {
            msg_id: arb_msg_id(rng),
            global_ts: arb_timestamp(rng),
        },
        4 => {
            let inner = rng.gen_range(0..PAXOS_VARIANTS);
            BaselineMsg::Paxos(arb_paxos(rng, inner))
        }
        5 => BaselineMsg::StableReport {
            group: GroupId(rng.gen_range(0..8)),
            delivered_gts: arb_timestamp(rng),
        },
        6 => BaselineMsg::StableAdvance {
            watermarks: arb_watermarks(rng),
        },
        7 => BaselineMsg::CatchupRequest {
            group: GroupId(rng.gen_range(0..8)),
            delivered_gts: arb_timestamp(rng),
            next_slot: rng.gen_range(0..1000),
        },
        8 => BaselineMsg::StateTransfer {
            checkpoint: arb_checkpoint(rng),
            frontier: rng.gen_range(0..1000),
            log: (0..rng.gen_range(0..5))
                .map(|_| (rng.gen_range(0..1000) as Slot, arb_command(rng)))
                .collect(),
        },
        _ => BaselineMsg::ClientReply {
            msg_id: arb_msg_id(rng),
            group: GroupId(rng.gen_range(0..8)),
            global_ts: arb_timestamp(rng),
        },
    }
}

const BASELINE_VARIANTS: usize = 10;

// --- helpers ---------------------------------------------------------------

/// Both codecs the deployment runtime can speak; every round-trip property
/// below holds for each.
const CODECS: [WireCodec; 2] = [WireCodec::Binary, WireCodec::Json];

fn round_trip_one<M>(msg: &M)
where
    M: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug,
{
    for codec in CODECS {
        let frame = encode_frame_with(codec, msg).expect("encode");
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&frame);
        let back: M = decode_frame_with(codec, &mut buf)
            .unwrap_or_else(|e| panic!("{codec} decode: {e}"))
            .expect("full frame");
        assert_eq!(&back, msg);
        assert!(buf.is_empty(), "decoder left {} bytes behind", buf.len());
    }
}

/// Concatenates the frames of `msgs` into one byte stream, feeds the stream
/// to the decoder in chunks whose sizes are drawn from `rng` (1 byte up to
/// past-the-end), and asserts the decoded sequence equals the input. This is
/// exactly the shape of data a TCP reader sees: frames split and coalesced
/// arbitrarily by the stream.
fn round_trip_stream<M>(msgs: &[M], rng: &mut StdRng)
where
    M: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug,
{
    for codec in CODECS {
        let mut stream = Vec::new();
        for m in msgs {
            stream.extend_from_slice(&encode_frame_with(codec, m).expect("encode"));
        }
        let mut buf = BytesMut::new();
        let mut decoded: Vec<M> = Vec::new();
        let mut offset = 0;
        while offset < stream.len() {
            let chunk = rng.gen_range(1..=64.min(stream.len() - offset).max(1));
            let chunk = chunk.min(stream.len() - offset);
            buf.extend_from_slice(&stream[offset..offset + chunk]);
            offset += chunk;
            while let Some(msg) =
                decode_frame_with::<M>(codec, &mut buf).unwrap_or_else(|e| panic!("{codec}: {e}"))
            {
                decoded.push(msg);
            }
        }
        assert_eq!(decoded.len(), msgs.len());
        for (got, want) in decoded.iter().zip(msgs) {
            assert_eq!(got, want);
        }
        assert!(buf.is_empty());
    }
}

// --- properties ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every white-box variant round-trips through a single frame.
    #[test]
    fn whitebox_variants_round_trip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for variant in 0..WHITEBOX_VARIANTS {
            round_trip_one(&arb_whitebox(&mut rng, variant));
        }
    }

    /// Every baseline variant (including nested Paxos messages and
    /// STATE_TRANSFER) round-trips through a single frame.
    #[test]
    fn baseline_variants_round_trip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for variant in 0..BASELINE_VARIANTS {
            round_trip_one(&arb_baseline(&mut rng, variant));
        }
    }

    /// Every consensus variant round-trips through a single frame.
    #[test]
    fn paxos_variants_round_trip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for variant in 0..PAXOS_VARIANTS {
            round_trip_one(&arb_paxos(&mut rng, variant));
        }
    }

    /// A concatenated stream of random white-box frames decodes identically
    /// no matter where the stream is split.
    #[test]
    fn whitebox_streams_survive_random_split_points(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msgs: Vec<_> = (0..rng.gen_range(2..12))
            .map(|_| {
                let variant = rng.gen_range(0..WHITEBOX_VARIANTS);
                arb_whitebox(&mut rng, variant)
            })
            .collect();
        round_trip_stream(&msgs, &mut rng);
    }

    /// Same for baseline frames.
    #[test]
    fn baseline_streams_survive_random_split_points(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msgs: Vec<_> = (0..rng.gen_range(2..12))
            .map(|_| {
                let variant = rng.gen_range(0..BASELINE_VARIANTS);
                arb_baseline(&mut rng, variant)
            })
            .collect();
        round_trip_stream(&msgs, &mut rng);
    }
}

/// Deterministic sanity check that the generators really cover every variant
/// tag (so a future enum addition fails loudly here instead of silently
/// shrinking coverage).
#[test]
fn generators_cover_every_whitebox_kind() {
    let mut rng = StdRng::seed_from_u64(7);
    let kinds: std::collections::BTreeSet<&'static str> = (0..WHITEBOX_VARIANTS)
        .map(|v| arb_whitebox(&mut rng, v).kind())
        .collect();
    assert_eq!(kinds.len(), WHITEBOX_VARIANTS);
    for expected in [
        "MULTICAST",
        "ACCEPT",
        "ACCEPT_ACK",
        "ACCEPT_BATCH",
        "ACCEPT_ACK_BATCH",
        "DELIVER",
        "DELIVER_BATCH",
        "NEWLEADER",
        "NEWLEADER_ACK",
        "NEW_STATE",
        "NEWSTATE_ACK",
        "HEARTBEAT",
        "STABLE_REPORT",
        "STABLE_ADVANCE",
        "STABLE_PRUNED",
        "CLIENT_REPLY",
    ] {
        assert!(kinds.contains(expected), "generator misses {expected}");
    }
}

/// Regression: a JSON peer and a binary peer must fail the *handshake*, not
/// limp along exchanging frames. The 4-byte preamble disagrees in exactly the
/// codec byte, `check_preamble` names both codecs in its error, and — the
/// belt-and-braces layer behind the preamble — a frame encoded with one codec
/// never decodes as a frame of the other.
#[test]
fn json_and_binary_handshakes_reject_each_other() {
    let json = encode_preamble(WireCodec::Json);
    let binary = encode_preamble(WireCodec::Binary);
    assert_ne!(json, binary, "preambles must differ in the codec byte");
    assert_eq!(json[..3], binary[..3], "magic and version must agree");

    // Same-codec handshakes succeed, cross-codec ones fail with an error
    // naming both sides' codecs (the operator's hint to fix `--wire`).
    check_preamble(&json, WireCodec::Json).expect("json peers agree");
    check_preamble(&binary, WireCodec::Binary).expect("binary peers agree");
    for (theirs, ours) in [(json, WireCodec::Binary), (binary, WireCodec::Json)] {
        let err = check_preamble(&theirs, ours).expect_err("mixed codecs must be rejected");
        let text = err.to_string();
        assert!(
            text.contains("binary") && text.contains("json"),
            "error must name both codecs: {text}"
        );
    }

    // Frames of one codec are garbage to the other even if the preamble
    // check were bypassed: decoding fails instead of yielding a bogus value.
    let mut rng = StdRng::seed_from_u64(42);
    for variant in 0..WHITEBOX_VARIANTS {
        let msg = arb_whitebox(&mut rng, variant);
        for (enc, dec) in [
            (WireCodec::Binary, WireCodec::Json),
            (WireCodec::Json, WireCodec::Binary),
        ] {
            let frame = encode_frame_with(enc, &msg).expect("encode");
            let mut buf = BytesMut::new();
            buf.extend_from_slice(&frame);
            let result = decode_frame_with::<WhiteBoxMsg>(dec, &mut buf);
            assert!(
                !matches!(&result, Ok(Some(m)) if m == &msg),
                "{enc} frame of variant {variant} decoded identically under {dec}"
            );
        }
    }
}
