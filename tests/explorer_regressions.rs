//! Replays the explorer regression corpus (`tests/regressions/corpus.tokens`)
//! and checks the explorer's own determinism contract.
//!
//! Every token in the corpus once reproduced a real bug (see the comments in
//! the corpus file); replaying them on every test run keeps those bugs fixed.

use wbam_harness::explorer::{run_token, SeedToken};

/// Parses the corpus file, skipping comments and blank lines.
fn corpus() -> Vec<SeedToken> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/regressions/corpus.tokens"
    );
    let text = std::fs::read_to_string(path).expect("corpus file exists");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| SeedToken::parse(l).unwrap_or_else(|e| panic!("bad corpus token `{l}`: {e}")))
        .collect()
}

#[test]
fn regression_corpus_replays_clean() {
    let tokens = corpus();
    assert!(!tokens.is_empty(), "corpus must not be empty");
    let mut failures = Vec::new();
    for token in &tokens {
        let report = run_token(token);
        if let Some(violation) = report.violation {
            failures.push(format!("{token}: {violation}"));
        }
    }
    assert!(
        failures.is_empty(),
        "previously fixed bugs reappeared:\n{}",
        failures.join("\n")
    );
}

/// The acceptance contract of the seed tokens: re-running a token reproduces
/// the identical schedule byte for byte (equal digests over every delivery
/// record of the run).
#[test]
fn corpus_tokens_replay_byte_for_byte() {
    // One token per protocol is enough to pin the determinism contract; the
    // clean-replay test above already runs every schedule once.
    let mut seen = std::collections::BTreeSet::new();
    for token in corpus() {
        if !seen.insert(token.protocol.label()) {
            continue;
        }
        let first = run_token(&token);
        let second = run_token(&token);
        assert_eq!(
            first.digest, second.digest,
            "{token} did not replay deterministically"
        );
        assert_eq!(first.completed, second.completed);
        assert_eq!(first.deliveries, second.deliveries);
    }
}
