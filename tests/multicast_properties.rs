//! Cross-protocol integration tests of the atomic multicast correctness
//! properties from §II of the paper: Validity, Integrity, Ordering and
//! Termination, plus genuineness, checked on simulated runs of every
//! protocol in the workspace.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wbam::core::invariants::{check_delivery_order, check_total_order};
use wbam::harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam::simnet::LatencyModel;
use wbam::types::{GroupId, MsgId, ProcessId, Timestamp};

/// Per-process delivery sequences, tagged with global timestamps.
type DeliverySequences = BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>>;

/// Runs a random workload on a protocol and returns (per-process delivery
/// sequences with timestamps, per-message destinations, delivered set).
fn run_random_workload(
    protocol: Protocol,
    num_groups: usize,
    messages: usize,
    seed: u64,
) -> (
    DeliverySequences,
    BTreeMap<MsgId, Vec<GroupId>>,
    ProtocolSim,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = ClusterSpec {
        num_groups,
        group_size: if protocol == Protocol::Skeen { 1 } else { 3 },
        num_clients: 2,
        num_sites: 1,
        latency: LatencyModel::uniform(Duration::from_micros(500), Duration::from_millis(3)),
        service_time: Duration::ZERO,
        seed,
        max_batch: 1,
        batch_delay: Duration::ZERO,
        nemesis: wbam_types::NemesisPlan::quiet(),
        record_trace: false,
        auto_election: false,
        compaction_interval: 0,
        compaction_lag: 0,
    };
    let mut sim = ProtocolSim::build(protocol, &spec);
    let group_ids: Vec<GroupId> = (0..num_groups as u32).map(GroupId).collect();
    let mut destinations = BTreeMap::new();
    for i in 0..messages {
        let count = rng.gen_range(1..=num_groups.min(3));
        let mut dest = group_ids.clone();
        dest.shuffle(&mut rng);
        dest.truncate(count);
        let at = Duration::from_micros(rng.gen_range(0..20_000));
        let client = rng.gen_range(0..2);
        let id = sim.submit(at, client, &dest, 20);
        destinations.insert(id, dest);
        let _ = i;
    }
    sim.run_until_quiescent(Duration::from_secs(120));
    let metrics = sim.metrics();
    let mut sequences: DeliverySequences = BTreeMap::new();
    for rec in metrics.deliveries() {
        if rec.group.is_none() {
            continue; // client-side completion records
        }
        sequences
            .entry(rec.process)
            .or_default()
            .push((rec.msg_id, rec.global_ts.unwrap_or(Timestamp::BOTTOM)));
    }
    (sequences, destinations, sim)
}

fn assert_core_properties(
    sequences: &DeliverySequences,
    destinations: &BTreeMap<MsgId, Vec<GroupId>>,
    sim: &ProtocolSim,
    expect_all_delivered: bool,
) {
    let metrics = sim.metrics();
    let cluster = sim.cluster();

    // Validity: only multicast messages are delivered, and only at their
    // destination groups.
    for (process, seq) in sequences {
        let group = cluster.group_of(*process).expect("replica process");
        for (msg, _) in seq {
            let dest = destinations
                .get(msg)
                .expect("delivered message was multicast");
            assert!(
                dest.contains(&group),
                "{process} in {group} delivered {msg} not addressed to it"
            );
        }
    }

    // Integrity + per-process timestamp order.
    check_delivery_order(sequences).expect("integrity / order violated");

    // Ordering: one total order (by global timestamp), agreed across processes.
    check_total_order(sequences).expect("ordering violated");

    // Pairwise prefix consistency on common messages: for any two processes,
    // the messages they both delivered appear in the same relative order.
    let procs: Vec<&ProcessId> = sequences.keys().collect();
    for (i, p) in procs.iter().enumerate() {
        for q in procs.iter().skip(i + 1) {
            let seq_p: Vec<MsgId> = sequences[p].iter().map(|(m, _)| *m).collect();
            let seq_q: Vec<MsgId> = sequences[q].iter().map(|(m, _)| *m).collect();
            let common_p: Vec<MsgId> = seq_p
                .iter()
                .copied()
                .filter(|m| seq_q.contains(m))
                .collect();
            let common_q: Vec<MsgId> = seq_q
                .iter()
                .copied()
                .filter(|m| seq_p.contains(m))
                .collect();
            assert_eq!(
                common_p, common_q,
                "processes {p} and {q} deliver their common messages in different orders"
            );
        }
    }

    // Termination (failure-free runs): every multicast message is delivered in
    // every destination group.
    if expect_all_delivered {
        for msg in destinations.keys() {
            assert!(
                metrics.is_partially_delivered(*msg),
                "message {msg} was never (partially) delivered"
            );
        }
    }
}

/// Runs a workload of mutually conflicting multicasts (destinations drawn
/// from groups 0..3 of a 4-group cluster, 2–3 destinations each) under
/// batched ordering, leaving group 3 untouched as a genuineness control.
fn run_batched_conflicting_workload(
    max_batch: usize,
    messages: usize,
    seed: u64,
) -> (
    DeliverySequences,
    BTreeMap<MsgId, Vec<GroupId>>,
    ProtocolSim,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let batch_delay = if max_batch > 1 {
        Duration::from_micros(500)
    } else {
        Duration::ZERO
    };
    let spec = ClusterSpec {
        num_groups: 4,
        group_size: 3,
        num_clients: 2,
        num_sites: 1,
        latency: LatencyModel::uniform(Duration::from_micros(500), Duration::from_millis(3)),
        service_time: Duration::ZERO,
        seed,
        max_batch,
        batch_delay,
        nemesis: wbam_types::NemesisPlan::quiet(),
        record_trace: false,
        auto_election: false,
        compaction_interval: 0,
        compaction_lag: 0,
    };
    let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);
    // Conflicting destinations: always at least two of the first three groups.
    let conflict_groups: Vec<GroupId> = (0..3u32).map(GroupId).collect();
    let mut destinations = BTreeMap::new();
    for _ in 0..messages {
        let count = rng.gen_range(2..=3);
        let mut dest = conflict_groups.clone();
        dest.shuffle(&mut rng);
        dest.truncate(count);
        let at = Duration::from_micros(rng.gen_range(0..10_000));
        let client = rng.gen_range(0..2);
        let id = sim.submit(at, client, &dest, 20);
        destinations.insert(id, dest);
    }
    sim.run_until_quiescent(Duration::from_secs(120));
    let metrics = sim.metrics();
    let mut sequences: DeliverySequences = BTreeMap::new();
    for rec in metrics.deliveries() {
        if rec.group.is_none() {
            continue;
        }
        sequences
            .entry(rec.process)
            .or_default()
            .push((rec.msg_id, rec.global_ts.unwrap_or(Timestamp::BOTTOM)));
    }
    (sequences, destinations, sim)
}

#[test]
fn whitebox_satisfies_atomic_multicast_properties() {
    for seed in [1, 2, 3] {
        let (sequences, destinations, sim) = run_random_workload(Protocol::WhiteBox, 4, 30, seed);
        assert_core_properties(&sequences, &destinations, &sim, true);
    }
}

#[test]
fn ftskeen_satisfies_atomic_multicast_properties() {
    let (sequences, destinations, sim) = run_random_workload(Protocol::FtSkeen, 3, 20, 11);
    assert_core_properties(&sequences, &destinations, &sim, true);
}

#[test]
fn fastcast_satisfies_atomic_multicast_properties() {
    let (sequences, destinations, sim) = run_random_workload(Protocol::FastCast, 3, 20, 12);
    assert_core_properties(&sequences, &destinations, &sim, true);
}

#[test]
fn plain_skeen_satisfies_atomic_multicast_properties() {
    let (sequences, destinations, sim) = run_random_workload(Protocol::Skeen, 4, 30, 13);
    assert_core_properties(&sequences, &destinations, &sim, true);
}

#[test]
fn genuineness_disjoint_destinations_do_not_touch_other_groups() {
    // Messages addressed only to groups {0,1}; replicas of groups {2,3} must
    // neither deliver anything nor send any protocol messages beyond their
    // initial (empty) activity.
    let spec = ClusterSpec::constant_delta(4, 3, Duration::from_millis(1));
    let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);
    for i in 0..10u64 {
        sim.submit(Duration::from_millis(i), 0, &[GroupId(0), GroupId(1)], 20);
    }
    sim.run_until_quiescent(Duration::from_secs(10));
    let metrics = sim.metrics();
    let cluster = sim.cluster().clone();
    for gc in cluster.groups() {
        for member in gc.members() {
            let delivered = metrics.delivery_order_at(*member).len();
            if gc.id() == GroupId(2) || gc.id() == GroupId(3) {
                assert_eq!(delivered, 0, "{member} of uninvolved {} delivered", gc.id());
            } else {
                assert_eq!(delivered, 10, "{member} of {} missed messages", gc.id());
            }
        }
    }
}

#[test]
fn conflicting_and_disjoint_mix_keeps_projection_property() {
    // Half the messages go to {g0,g1}, half to {g2}; g2's order must simply be
    // the projection, unaffected by the conflicting traffic elsewhere.
    let spec = ClusterSpec::constant_delta(3, 3, Duration::from_millis(1));
    let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);
    let mut to_g2 = Vec::new();
    for i in 0..10u64 {
        sim.submit(
            Duration::from_micros(i * 300),
            0,
            &[GroupId(0), GroupId(1)],
            20,
        );
        let id = sim.submit(Duration::from_micros(i * 300 + 100), 0, &[GroupId(2)], 20);
        to_g2.push(id);
    }
    sim.run_until_quiescent(Duration::from_secs(10));
    let metrics = sim.metrics();
    // g2's replicas deliver exactly the g2 messages, in submission order is not
    // required — but all replicas of g2 agree and deliver all of them.
    let reference = metrics.delivery_order_at(ProcessId(6));
    assert_eq!(reference.len(), 10);
    assert_eq!(metrics.delivery_order_at(ProcessId(7)), reference);
    assert_eq!(metrics.delivery_order_at(ProcessId(8)), reference);
    for id in to_g2 {
        assert!(reference.contains(&id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched ordering must preserve the four atomic-multicast properties
    /// plus genuineness for every batch size, including the unbatched
    /// baseline, under conflicting destination sets. The workload leaves
    /// group 3 out of every destination set, so any delivery (or any
    /// protocol activity producing one) at its members is a genuineness
    /// violation introduced by batching.
    #[test]
    fn whitebox_batched_properties_hold_for_random_batch_sizes(
        seed in 0u64..500,
        max_batch in prop_oneof![Just(1usize), Just(4usize), Just(32usize)],
        messages in 8usize..32,
    ) {
        let (sequences, destinations, sim) =
            run_batched_conflicting_workload(max_batch, messages, seed);
        assert_core_properties(&sequences, &destinations, &sim, true);
        // Genuineness control: group 3 never appears in a destination set and
        // must deliver nothing, whatever the batch size.
        let metrics = sim.metrics();
        let cluster = sim.cluster();
        for member in cluster.group(GroupId(3)).unwrap().members() {
            prop_assert!(
                metrics.delivery_order_at(*member).is_empty(),
                "batching leaked a message to uninvolved group 3 (member {member})"
            );
        }
    }

    /// Property test: for random topologies, workloads and jittery delays the
    /// white-box protocol preserves the ordering / integrity / validity
    /// properties and delivers everything in failure-free runs.
    #[test]
    fn whitebox_properties_hold_for_random_workloads(
        seed in 0u64..1000,
        num_groups in 2usize..5,
        messages in 5usize..25,
    ) {
        let (sequences, destinations, sim) =
            run_random_workload(Protocol::WhiteBox, num_groups, messages, seed);
        assert_core_properties(&sequences, &destinations, &sim, true);
    }

    /// The baselines must agree with the same properties (differential check
    /// of the shared specification).
    #[test]
    fn baseline_properties_hold_for_random_workloads(
        seed in 0u64..500,
        fastcast in proptest::bool::ANY,
    ) {
        let protocol = if fastcast { Protocol::FastCast } else { Protocol::FtSkeen };
        let (sequences, destinations, sim) =
            run_random_workload(protocol, 3, 12, seed);
        assert_core_properties(&sequences, &destinations, &sim, true);
    }
}
