//! Property test for the key-value store linearizability oracle: on
//! fault-free runs (the generated schedule with its nemesis plan replaced by
//! a quiet one) every protocol must satisfy the Figure 6 invariants, the
//! oracle, and termination — i.e. the oracle accepts all fault-free runs.
//!
//! Known-violating and known-linearizable *histories* are unit-tested next to
//! the oracle itself in `wbam_kvstore::history`; this test covers the other
//! direction (no false positives on healthy end-to-end runs).

use proptest::prelude::*;
use wbam_harness::explorer::{generate_schedule, run_generated, SeedToken, TokenVersion};
use wbam_harness::Protocol;
use wbam_types::NemesisPlan;

fn run_fault_free(protocol: Protocol, seed: u64) {
    // V2 derivation: fault-free runs must stay clean with the seed-derived
    // compaction cadence active.
    let token = SeedToken {
        version: TokenVersion::V2,
        protocol,
        seed,
    };
    let mut schedule = generate_schedule(&token);
    // Strip the faults but keep the randomized topology and workload.
    schedule.spec.nemesis = NemesisPlan::quiet();
    let report = run_generated(&token, &schedule);
    assert!(
        report.violation.is_none(),
        "fault-free {token} violated: {:?}",
        report.violation
    );
    assert_eq!(
        report.completed, report.ops,
        "fault-free {token} left operations incomplete"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn oracle_accepts_all_fault_free_runs(seed in 0u64..100_000) {
        for protocol in Protocol::evaluated() {
            run_fault_free(protocol, seed);
        }
    }
}
