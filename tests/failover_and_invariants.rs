//! Fault-injection integration tests for the white-box protocol: leader
//! crashes and recoveries under load, checked against the paper's invariants
//! (Figure 6) using protocol-message traces recorded by the simulator.

use std::collections::BTreeMap;
use std::time::Duration;

use wbam::core::invariants::{
    check_deliver_agreement, check_deliver_local_ts_per_group, check_delivery_order,
    check_unique_proposals, SentMessage,
};
use wbam::core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxMsg, WhiteBoxReplica};
use wbam::simnet::{LatencyModel, SimConfig, Simulation};
use wbam::types::{
    AppMessage, ClusterConfig, Destination, GroupId, MsgId, Payload, ProcessId, Timestamp,
};

/// Builds a white-box cluster with trace recording enabled.
fn build_traced_sim(cluster: &ClusterConfig, auto_election: bool) -> Simulation<WhiteBoxMsg> {
    build_traced_sim_batched(cluster, auto_election, 1, Duration::ZERO)
}

/// Like [`build_traced_sim`], with the batching knob exposed.
fn build_traced_sim_batched(
    cluster: &ClusterConfig,
    auto_election: bool,
    max_batch: usize,
    batch_delay: Duration,
) -> Simulation<WhiteBoxMsg> {
    let mut sim = Simulation::new(SimConfig {
        latency: LatencyModel::constant(Duration::from_millis(2)),
        record_trace: true,
        seed: 9,
        ..SimConfig::default()
    });
    for gc in cluster.groups() {
        for member in gc.members() {
            let mut cfg = ReplicaConfig::new(*member, gc.id(), cluster.clone())
                .with_retry_timeout(Duration::from_millis(50))
                .with_batching(max_batch, batch_delay);
            if auto_election {
                cfg = cfg
                    .with_election_timeouts(Duration::from_millis(20), Duration::from_millis(60));
            } else {
                cfg = cfg.without_auto_election();
            }
            sim.add_replica(
                Box::new(WhiteBoxReplica::new(cfg)),
                gc.id(),
                cluster.site_of(*member),
            );
        }
    }
    for client in cluster.clients() {
        sim.add_client(Box::new(MulticastClient::new(
            ClientConfig::new(*client, cluster.clone())
                .with_retry_timeout(Duration::from_millis(200)),
        )));
    }
    sim
}

fn msg(cluster: &ClusterConfig, seq: u64, dest: &[u32]) -> AppMessage {
    AppMessage::new(
        MsgId::new(cluster.clients()[0], seq),
        Destination::new(dest.iter().map(|g| GroupId(*g))).unwrap(),
        Payload::zeros(20),
    )
}

fn check_all_invariants(sim: &Simulation<WhiteBoxMsg>, cluster: &ClusterConfig) {
    let trace: Vec<SentMessage> = sim
        .trace()
        .iter()
        .map(|t| SentMessage {
            from: t.from,
            to: t.to,
            msg: t.msg.clone(),
        })
        .collect();
    check_unique_proposals(&trace).expect("Invariant 1 violated");
    check_deliver_agreement(&trace).expect("Invariant 3b/4 violated");
    check_deliver_local_ts_per_group(&trace, |p| cluster.group_of(p))
        .expect("Invariant 3a violated");

    // Integrity and per-process global-timestamp order on actual deliveries.
    let mut sequences: BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>> = BTreeMap::new();
    for rec in sim.deliveries() {
        if rec.group.is_none() {
            continue;
        }
        sequences
            .entry(rec.process)
            .or_default()
            .push((rec.msg_id, rec.global_ts.unwrap_or(Timestamp::BOTTOM)));
    }
    check_delivery_order(&sequences).expect("delivery order violated");
}

#[test]
fn failure_free_run_preserves_all_figure6_invariants() {
    let cluster = ClusterConfig::builder().groups(3, 3).clients(1).build();
    let mut sim = build_traced_sim(&cluster, false);
    let client = cluster.clients()[0];
    for seq in 0..30u64 {
        let dest: Vec<u32> = match seq % 3 {
            0 => vec![0, 1],
            1 => vec![1, 2],
            _ => vec![0, 1, 2],
        };
        sim.schedule_multicast(
            Duration::from_micros(seq * 700),
            client,
            msg(&cluster, seq, &dest),
        );
    }
    sim.run_until_quiescent(Duration::from_secs(60));
    check_all_invariants(&sim, &cluster);
    // Termination: everything delivered everywhere it should be.
    let metrics = sim.metrics();
    for seq in 0..30u64 {
        assert!(metrics.is_partially_delivered(MsgId::new(cluster.clients()[0], seq)));
    }
}

#[test]
fn leader_crash_with_explicit_takeover_recovers_pending_messages() {
    let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
    let mut sim = build_traced_sim(&cluster, false);
    let client = cluster.clients()[0];
    // Submit messages right up to (and across) the crash point.
    for seq in 0..20u64 {
        sim.schedule_multicast(
            Duration::from_millis(seq),
            client,
            msg(&cluster, seq, &[0, 1]),
        );
    }
    // Crash group 0's leader mid-stream; its follower p1 takes over shortly
    // after (standing in for the leader-election oracle).
    sim.schedule_crash(Duration::from_millis(7), ProcessId(0));
    sim.schedule_become_leader(Duration::from_millis(30), ProcessId(1));
    sim.run_until_quiescent(Duration::from_secs(120));

    check_all_invariants(&sim, &cluster);
    let metrics = sim.metrics();
    // Termination for correct processes: every message is eventually delivered
    // by the surviving replicas of both destination groups.
    let mut delivered = 0;
    for seq in 0..20u64 {
        let id = MsgId::new(client, seq);
        let g0 = metrics.first_delivery_in_group(id, GroupId(0)).is_some();
        let g1 = metrics.first_delivery_in_group(id, GroupId(1)).is_some();
        if g0 && g1 {
            delivered += 1;
        }
    }
    assert_eq!(delivered, 20, "all messages must survive the leader crash");
    // The surviving members of group 0 agree on their order.
    let p1 = metrics.delivery_order_at(ProcessId(1));
    let p2 = metrics.delivery_order_at(ProcessId(2));
    let common = p1.len().min(p2.len());
    assert_eq!(&p1[..common], &p2[..common]);
}

#[test]
fn leader_crash_mid_batch_preserves_agreement_and_recovers_all_messages() {
    // Batching leader with max_batch = 3 and a 10 ms flush timer. Messages
    // are submitted at 1 ms intervals (arriving from t = 3 ms at the leader,
    // one network hop + client processing later), so by the crash at t = 7 ms
    // group 0's leader has flushed one full batch (in flight, possibly
    // ACCEPTED but not committed) and holds more proposals buffered — the
    // crash lands mid-batch on both kinds of in-flight state.
    let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
    let mut sim = build_traced_sim_batched(&cluster, false, 3, Duration::from_millis(10));
    let client = cluster.clients()[0];
    for seq in 0..10u64 {
        sim.schedule_multicast(
            Duration::from_millis(seq),
            client,
            msg(&cluster, seq, &[0, 1]),
        );
    }
    sim.schedule_crash(Duration::from_millis(7), ProcessId(0));
    sim.schedule_become_leader(Duration::from_millis(30), ProcessId(1));
    sim.run_until_quiescent(Duration::from_secs(120));

    // check_all_invariants includes check_deliver_agreement over the batched
    // trace: every DELIVER/DELIVER_BATCH entry for a message must carry the
    // same global timestamp, across the crash and the new leader's re-sends.
    check_all_invariants(&sim, &cluster);
    let metrics = sim.metrics();
    for seq in 0..10u64 {
        let id = MsgId::new(client, seq);
        assert!(
            metrics.first_delivery_in_group(id, GroupId(0)).is_some()
                && metrics.first_delivery_in_group(id, GroupId(1)).is_some(),
            "message {id} lost in the mid-batch crash"
        );
    }
    // The trace must actually contain batched traffic, or this test is not
    // exercising what it claims to.
    let saw_batch = sim.trace().iter().any(
        |t| matches!(t.msg, WhiteBoxMsg::AcceptBatch { ref entries, .. } if entries.len() > 1),
    );
    assert!(saw_batch, "expected at least one multi-entry ACCEPT_BATCH");
    // The surviving members of group 0 agree on their delivery order.
    let p1 = metrics.delivery_order_at(ProcessId(1));
    let p2 = metrics.delivery_order_at(ProcessId(2));
    let common = p1.len().min(p2.len());
    assert_eq!(&p1[..common], &p2[..common]);
}

#[test]
fn automatic_leader_election_recovers_without_external_trigger() {
    let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
    let mut sim = build_traced_sim(&cluster, true);
    let client = cluster.clients()[0];
    for seq in 0..5u64 {
        sim.schedule_multicast(
            Duration::from_millis(seq * 2),
            client,
            msg(&cluster, seq, &[0, 1]),
        );
    }
    // Crash g0's leader; the built-in heartbeat/timeout election should elect
    // a follower without any external BecomeLeader injection.
    sim.schedule_crash(Duration::from_millis(20), ProcessId(0));
    // Messages submitted after the crash.
    for seq in 5..10u64 {
        sim.schedule_multicast(
            Duration::from_millis(400 + seq * 2),
            client,
            msg(&cluster, seq, &[0, 1]),
        );
    }
    sim.run_until_quiescent(Duration::from_secs(120));
    check_all_invariants(&sim, &cluster);
    let metrics = sim.metrics();
    for seq in 5..10u64 {
        let id = MsgId::new(client, seq);
        assert!(
            metrics.is_partially_delivered(id),
            "post-crash message {id} must be delivered after automatic election"
        );
    }
}

#[test]
fn follower_crash_does_not_disturb_the_protocol() {
    let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
    let mut sim = build_traced_sim(&cluster, false);
    let client = cluster.clients()[0];
    // Crash one follower in each group up front; quorums of 2 remain.
    sim.schedule_crash(Duration::from_millis(1), ProcessId(2));
    sim.schedule_crash(Duration::from_millis(1), ProcessId(5));
    for seq in 0..15u64 {
        sim.schedule_multicast(
            Duration::from_millis(2 + seq),
            client,
            msg(&cluster, seq, &[0, 1]),
        );
    }
    sim.run_until_quiescent(Duration::from_secs(60));
    check_all_invariants(&sim, &cluster);
    let metrics = sim.metrics();
    for seq in 0..15u64 {
        assert!(metrics.is_partially_delivered(MsgId::new(client, seq)));
    }
}

#[test]
fn client_crash_after_partial_send_is_recovered_by_retry() {
    // The client sends MULTICAST to only one of the two destination groups and
    // then "crashes" (we simulate the partial send by injecting the multicast
    // directly at one leader). The leader's retry mechanism (Figure 4 line 32)
    // must complete the multicast.
    let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
    let mut sim = Simulation::new(SimConfig {
        latency: LatencyModel::constant(Duration::from_millis(2)),
        record_trace: true,
        ..SimConfig::default()
    });
    for gc in cluster.groups() {
        for member in gc.members() {
            let cfg = ReplicaConfig::new(*member, gc.id(), cluster.clone())
                .without_auto_election()
                .with_retry_timeout(Duration::from_millis(40));
            sim.add_replica(
                Box::new(WhiteBoxReplica::new(cfg)),
                gc.id(),
                cluster.site_of(*member),
            );
        }
    }
    let m = msg(&cluster, 0, &[0, 1]);
    // Only group 0's leader hears about the message.
    sim.send_external(
        Duration::ZERO,
        cluster.clients()[0],
        ProcessId(0),
        WhiteBoxMsg::Multicast { msg: m.clone() },
    );
    sim.run_until_quiescent(Duration::from_secs(30));
    let metrics = sim.metrics();
    assert!(
        metrics.first_delivery_in_group(m.id, GroupId(0)).is_some()
            && metrics.first_delivery_in_group(m.id, GroupId(1)).is_some(),
        "retry must complete the partially-sent multicast"
    );
    check_all_invariants(&sim, &cluster);
}
