//! Skeen's atomic multicast protocol for singleton, reliable groups
//! (Figure 1 of the paper).
//!
//! Skeen's protocol is the folklore basis of most genuine atomic multicast
//! protocols, including the white-box protocol of this workspace. It assumes
//! that every group consists of a single process that never fails. Messages
//! are ordered by logical timestamps computed as in Lamport clocks: each
//! destination proposes a local timestamp, the global timestamp of a message
//! is the maximum of the proposals, and messages are delivered in global
//! timestamp order.
//!
//! The crate exists for three reasons:
//!
//! * it documents the baseline the paper builds on (and the 2δ collision-free
//!   latency that fault tolerance has to preserve as much as possible);
//! * it exhibits the *convoy effect* of Figure 2 — a committed message can be
//!   blocked for up to an extra 2δ by a concurrently arriving conflicting
//!   message — which the `fig2_convoy` benchmark reproduces;
//! * its delivery order is used as a reference in differential tests.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use wbam_skeen::{SkeenMsg, SkeenProcess};
//! use wbam_types::{
//!     Action, AppMessage, Destination, Event, GroupId, MsgId, Node, Payload, ProcessId,
//! };
//!
//! // Two singleton groups: g0 = p0, g1 = p1.
//! let groups = vec![(GroupId(0), ProcessId(0)), (GroupId(1), ProcessId(1))];
//! let mut p0 = SkeenProcess::new(ProcessId(0), GroupId(0), groups.clone());
//! let msg = AppMessage::new(
//!     MsgId::new(ProcessId(9), 0),
//!     Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
//!     Payload::from("hi"),
//! );
//! // p0 receives the MULTICAST and proposes a local timestamp to both groups.
//! let actions = p0.on_event(
//!     Duration::ZERO,
//!     Event::message(ProcessId(9), SkeenMsg::Multicast { msg }),
//! );
//! assert_eq!(actions.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use wbam_types::{
    Action, AppMessage, DeliveredMessage, Event, GroupId, MsgId, Node, Phase, ProcessId, Timestamp,
};

/// Wire messages of Skeen's protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SkeenMsg {
    /// `MULTICAST(m)`: submit `m` to its destination processes (Figure 1, line 6).
    Multicast {
        /// The application message.
        msg: AppMessage,
    },
    /// `PROPOSE(m, g, lts)`: group `g` proposes local timestamp `lts` for `m`
    /// (Figure 1, line 12).
    Propose {
        /// The application message.
        msg: AppMessage,
        /// The proposing group.
        group: GroupId,
        /// The proposed local timestamp.
        local_ts: Timestamp,
    },
    /// Reply to the original sender once the message is delivered, used by
    /// closed-loop clients (not part of Figure 1).
    ClientReply {
        /// The delivered message.
        msg_id: MsgId,
        /// The group of the replying process.
        group: GroupId,
        /// The global timestamp the message was delivered with.
        global_ts: Timestamp,
    },
}

/// Per-message state at a Skeen process.
#[derive(Debug, Clone)]
struct SkeenRecord {
    msg: AppMessage,
    phase: Phase,
    local_ts: Timestamp,
    global_ts: Timestamp,
    delivered: bool,
    proposals: BTreeMap<GroupId, Timestamp>,
}

/// One process of Skeen's protocol, playing a whole (singleton) group.
///
/// The process is a sans-IO [`Node`]; drive it with a simulator or runtime.
pub struct SkeenProcess {
    id: ProcessId,
    group: GroupId,
    /// The single member of every group, in the system configuration.
    group_processes: BTreeMap<GroupId, ProcessId>,
    clock: u64,
    records: BTreeMap<MsgId, SkeenRecord>,
    delivered_count: u64,
    notify_sender: bool,
}

impl SkeenProcess {
    /// Creates a Skeen process playing group `group` under identity `id`.
    ///
    /// `groups` lists every singleton group in the system with its process.
    pub fn new<I>(id: ProcessId, group: GroupId, groups: I) -> Self
    where
        I: IntoIterator<Item = (GroupId, ProcessId)>,
    {
        SkeenProcess {
            id,
            group,
            group_processes: groups.into_iter().collect(),
            clock: 0,
            records: BTreeMap::new(),
            delivered_count: 0,
            notify_sender: true,
        }
    }

    /// Disables delivery replies to message senders.
    pub fn without_sender_notification(mut self) -> Self {
        self.notify_sender = false;
        self
    }

    /// The process's logical clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of application messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// The phase of a message at this process, if known.
    pub fn phase_of(&self, m: MsgId) -> Option<Phase> {
        self.records.get(&m).map(|r| r.phase)
    }

    /// The global timestamp assigned to a message, once committed.
    pub fn global_ts_of(&self, m: MsgId) -> Option<Timestamp> {
        self.records
            .get(&m)
            .filter(|r| r.phase.is_committed())
            .map(|r| r.global_ts)
    }

    fn record_entry(&mut self, msg: &AppMessage) -> &mut SkeenRecord {
        self.records.entry(msg.id).or_insert_with(|| SkeenRecord {
            msg: msg.clone(),
            phase: Phase::Start,
            local_ts: Timestamp::BOTTOM,
            global_ts: Timestamp::BOTTOM,
            delivered: false,
            proposals: BTreeMap::new(),
        })
    }

    /// Figure 1, lines 8–12: assign a local timestamp and send `PROPOSE` to
    /// all destinations.
    fn handle_multicast(&mut self, msg: AppMessage) -> Vec<Action<SkeenMsg>> {
        let mut actions = Vec::new();
        if !msg.dest.contains(self.group) {
            return actions;
        }
        let group = self.group;
        let clock = &mut self.clock;
        let record = self.records.entry(msg.id).or_insert_with(|| SkeenRecord {
            msg: msg.clone(),
            phase: Phase::Start,
            local_ts: Timestamp::BOTTOM,
            global_ts: Timestamp::BOTTOM,
            delivered: false,
            proposals: BTreeMap::new(),
        });
        if record.phase == Phase::Start {
            *clock += 1;
            record.local_ts = Timestamp::new(*clock, group);
            record.phase = Phase::Proposed;
        }
        let propose = SkeenMsg::Propose {
            msg: record.msg.clone(),
            group,
            local_ts: record.local_ts,
        };
        for g in msg.dest.iter() {
            if let Some(p) = self.group_processes.get(&g) {
                actions.push(Action::send(*p, propose.clone()));
            }
        }
        actions
    }

    /// Figure 1, lines 13–19: once proposals from all destination groups are
    /// known, commit the message and deliver everything that is unblocked.
    fn handle_propose(
        &mut self,
        msg: AppMessage,
        group: GroupId,
        local_ts: Timestamp,
    ) -> Vec<Action<SkeenMsg>> {
        let mut actions = Vec::new();
        if !msg.dest.contains(self.group) {
            return actions;
        }
        let record = self.record_entry(&msg);
        record.proposals.insert(group, local_ts);
        let complete = msg.dest.iter().all(|g| record.proposals.contains_key(&g));
        if !complete || record.phase == Phase::Committed {
            return actions;
        }
        // Lines 14–16.
        let gts = Timestamp::global_of(record.proposals.values().copied());
        record.global_ts = gts;
        record.phase = Phase::Committed;
        self.clock = self.clock.max(gts.time());
        // Line 17: deliver committed messages not blocked by pending proposals.
        actions.extend(self.try_deliver());
        actions
    }

    fn try_deliver(&mut self) -> Vec<Action<SkeenMsg>> {
        let mut actions = Vec::new();
        let min_pending = self
            .records
            .values()
            .filter(|r| r.phase == Phase::Proposed)
            .map(|r| r.local_ts)
            .min();
        let mut candidates: Vec<(Timestamp, MsgId)> = self
            .records
            .values()
            .filter(|r| r.phase == Phase::Committed && !r.delivered)
            .map(|r| (r.global_ts, r.msg.id))
            .collect();
        candidates.sort();
        for (gts, id) in candidates {
            if let Some(pending) = min_pending {
                if pending <= gts {
                    break;
                }
            }
            let notify = self.notify_sender;
            let group = self.group;
            let record = self.records.get_mut(&id).expect("candidate exists");
            record.delivered = true;
            self.delivered_count += 1;
            actions.push(Action::Deliver(DeliveredMessage::with_timestamp(
                record.msg.clone(),
                gts,
            )));
            if notify {
                let sender = record.msg.id.sender;
                if !self.group_processes.values().any(|p| *p == sender) {
                    actions.push(Action::send(
                        sender,
                        SkeenMsg::ClientReply {
                            msg_id: id,
                            group,
                            global_ts: gts,
                        },
                    ));
                }
            }
        }
        actions
    }
}

impl Node for SkeenProcess {
    type Msg = SkeenMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_event(&mut self, _now: Duration, event: Event<SkeenMsg>) -> Vec<Action<SkeenMsg>> {
        match event {
            Event::Multicast(msg) => self.handle_multicast(msg),
            Event::Message { msg, .. } => match msg {
                SkeenMsg::Multicast { msg } => self.handle_multicast(msg),
                SkeenMsg::Propose {
                    msg,
                    group,
                    local_ts,
                } => self.handle_propose(msg, group, local_ts),
                SkeenMsg::ClientReply { .. } => Vec::new(),
            },
            _ => Vec::new(),
        }
    }
}

/// A client for Skeen's protocol: sends `MULTICAST` to the (single) process of
/// every destination group and records replies. Skeen's setting assumes
/// reliable processes and channels, so the client does not retry.
pub struct SkeenClient {
    id: ProcessId,
    group_processes: BTreeMap<GroupId, ProcessId>,
    completed: Vec<(MsgId, Timestamp, Duration)>,
    pending: BTreeMap<MsgId, (AppMessage, Duration)>,
}

impl SkeenClient {
    /// Creates a client.
    pub fn new<I>(id: ProcessId, groups: I) -> Self
    where
        I: IntoIterator<Item = (GroupId, ProcessId)>,
    {
        SkeenClient {
            id,
            group_processes: groups.into_iter().collect(),
            completed: Vec::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Completed multicasts: message, global timestamp and client-side latency.
    pub fn completed(&self) -> &[(MsgId, Timestamp, Duration)] {
        &self.completed
    }

    /// Number of multicasts still awaiting their first reply.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

impl Node for SkeenClient {
    type Msg = SkeenMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_event(&mut self, now: Duration, event: Event<SkeenMsg>) -> Vec<Action<SkeenMsg>> {
        match event {
            Event::Multicast(msg) => {
                self.pending.insert(msg.id, (msg.clone(), now));
                msg.dest
                    .iter()
                    .filter_map(|g| self.group_processes.get(&g).copied())
                    .map(|p| Action::send(p, SkeenMsg::Multicast { msg: msg.clone() }))
                    .collect()
            }
            Event::Message {
                msg:
                    SkeenMsg::ClientReply {
                        msg_id, global_ts, ..
                    },
                ..
            } => {
                if let Some((msg, submitted)) = self.pending.remove(&msg_id) {
                    let latency = now.saturating_sub(submitted);
                    self.completed.push((msg_id, global_ts, latency));
                    // Surface completion to the application driving the client.
                    return vec![Action::Deliver(DeliveredMessage::with_timestamp(
                        msg, global_ts,
                    ))];
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_types::{Destination, Payload};

    fn groups() -> Vec<(GroupId, ProcessId)> {
        vec![
            (GroupId(0), ProcessId(0)),
            (GroupId(1), ProcessId(1)),
            (GroupId(2), ProcessId(2)),
        ]
    }

    fn msg(seq: u64, dest: &[u32]) -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(9), seq),
            Destination::new(dest.iter().map(|g| GroupId(*g))).unwrap(),
            Payload::from("x"),
        )
    }

    fn p(id: u32) -> SkeenProcess {
        SkeenProcess::new(ProcessId(id), GroupId(id), groups()).without_sender_notification()
    }

    fn deliver_msg(proc_: &mut SkeenProcess, from: u32, m: SkeenMsg) -> Vec<Action<SkeenMsg>> {
        proc_.on_event(Duration::ZERO, Event::message(ProcessId(from), m))
    }

    #[test]
    fn multicast_assigns_increasing_local_timestamps() {
        let mut p0 = p(0);
        deliver_msg(
            &mut p0,
            9,
            SkeenMsg::Multicast {
                msg: msg(0, &[0, 1]),
            },
        );
        deliver_msg(&mut p0, 9, SkeenMsg::Multicast { msg: msg(1, &[0]) });
        assert_eq!(p0.clock(), 2);
        assert_eq!(
            p0.phase_of(MsgId::new(ProcessId(9), 0)),
            Some(Phase::Proposed)
        );
        assert_eq!(
            p0.phase_of(MsgId::new(ProcessId(9), 1)),
            Some(Phase::Proposed)
        );
    }

    #[test]
    fn duplicate_multicast_keeps_same_timestamp() {
        let mut p0 = p(0);
        let m = msg(0, &[0, 1]);
        let first = deliver_msg(&mut p0, 9, SkeenMsg::Multicast { msg: m.clone() });
        let second = deliver_msg(&mut p0, 9, SkeenMsg::Multicast { msg: m });
        assert_eq!(p0.clock(), 1);
        let ts_of = |actions: &[Action<SkeenMsg>]| {
            actions.iter().find_map(|a| match a {
                Action::Send {
                    msg: SkeenMsg::Propose { local_ts, .. },
                    ..
                } => Some(*local_ts),
                _ => None,
            })
        };
        assert_eq!(ts_of(&first), ts_of(&second));
    }

    #[test]
    fn single_destination_message_commits_on_own_proposal() {
        let mut p0 = p(0);
        let m = msg(0, &[0]);
        let actions = deliver_msg(&mut p0, 9, SkeenMsg::Multicast { msg: m.clone() });
        // The propose goes to itself only.
        assert_eq!(actions.len(), 1);
        let propose = actions
            .into_iter()
            .find_map(|a| match a {
                Action::Send { msg, .. } => Some(msg),
                _ => None,
            })
            .unwrap();
        let actions = deliver_msg(&mut p0, 0, propose);
        assert!(actions.iter().any(Action::is_delivery));
        assert_eq!(p0.delivered_count(), 1);
        assert_eq!(p0.global_ts_of(m.id), Some(Timestamp::new(1, GroupId(0))));
    }

    #[test]
    fn global_timestamp_is_max_of_proposals() {
        let mut p0 = p(0);
        let m = msg(0, &[0, 1]);
        deliver_msg(&mut p0, 9, SkeenMsg::Multicast { msg: m.clone() });
        deliver_msg(
            &mut p0,
            0,
            SkeenMsg::Propose {
                msg: m.clone(),
                group: GroupId(0),
                local_ts: Timestamp::new(1, GroupId(0)),
            },
        );
        let actions = deliver_msg(
            &mut p0,
            1,
            SkeenMsg::Propose {
                msg: m.clone(),
                group: GroupId(1),
                local_ts: Timestamp::new(7, GroupId(1)),
            },
        );
        assert!(actions.iter().any(Action::is_delivery));
        assert_eq!(p0.global_ts_of(m.id), Some(Timestamp::new(7, GroupId(1))));
        // Line 15: the clock advances to the global timestamp.
        assert_eq!(p0.clock(), 7);
    }

    #[test]
    fn committed_message_blocked_by_pending_lower_timestamp() {
        let mut p0 = p(0);
        let blocked = msg(0, &[0, 1]);
        let blocker = msg(1, &[0, 1]);
        // The blocker keeps a *lower* local timestamp than the global
        // timestamp of the blocked message (the convoy effect of Figure 2).
        deliver_msg(
            &mut p0,
            9,
            SkeenMsg::Multicast {
                msg: blocker.clone(),
            },
        );
        deliver_msg(
            &mut p0,
            9,
            SkeenMsg::Multicast {
                msg: blocked.clone(),
            },
        );
        deliver_msg(
            &mut p0,
            0,
            SkeenMsg::Propose {
                msg: blocked.clone(),
                group: GroupId(0),
                local_ts: Timestamp::new(2, GroupId(0)),
            },
        );
        let actions = deliver_msg(
            &mut p0,
            1,
            SkeenMsg::Propose {
                msg: blocked.clone(),
                group: GroupId(1),
                local_ts: Timestamp::new(9, GroupId(1)),
            },
        );
        // Committed but not delivered: `blocker` is still pending with lts (1, g0).
        assert_eq!(p0.phase_of(blocked.id), Some(Phase::Committed));
        assert!(!actions.iter().any(Action::is_delivery));
        // Now complete the blocker; both deliver, in timestamp order.
        deliver_msg(
            &mut p0,
            0,
            SkeenMsg::Propose {
                msg: blocker.clone(),
                group: GroupId(0),
                local_ts: Timestamp::new(1, GroupId(0)),
            },
        );
        let actions = deliver_msg(
            &mut p0,
            1,
            SkeenMsg::Propose {
                msg: blocker.clone(),
                group: GroupId(1),
                local_ts: Timestamp::new(1, GroupId(1)),
            },
        );
        let delivered: Vec<MsgId> = actions
            .iter()
            .filter_map(|a| a.as_delivery().map(|d| d.msg.id))
            .collect();
        assert_eq!(delivered, vec![blocker.id, blocked.id]);
    }

    #[test]
    fn messages_not_addressed_to_us_are_ignored() {
        let mut p2 = p(2);
        let actions = deliver_msg(
            &mut p2,
            9,
            SkeenMsg::Multicast {
                msg: msg(0, &[0, 1]),
            },
        );
        assert!(actions.is_empty());
        assert_eq!(p2.clock(), 0);
    }

    #[test]
    fn client_tracks_latency() {
        let mut c = SkeenClient::new(ProcessId(9), groups());
        let m = msg(0, &[0, 1]);
        let actions = c.on_event(Duration::from_millis(10), Event::Multicast(m.clone()));
        assert_eq!(actions.len(), 2);
        assert_eq!(c.pending_count(), 1);
        let reply = SkeenMsg::ClientReply {
            msg_id: m.id,
            group: GroupId(0),
            global_ts: Timestamp::new(3, GroupId(1)),
        };
        let actions = c.on_event(
            Duration::from_millis(35),
            Event::message(ProcessId(0), reply),
        );
        assert!(actions.iter().any(Action::is_delivery));
        assert_eq!(c.completed().len(), 1);
        assert_eq!(c.completed()[0].2, Duration::from_millis(25));
        assert_eq!(c.pending_count(), 0);
    }

    #[test]
    fn duplicate_client_replies_are_ignored() {
        let mut c = SkeenClient::new(ProcessId(9), groups());
        let m = msg(0, &[0]);
        c.on_event(Duration::ZERO, Event::Multicast(m.clone()));
        let reply = SkeenMsg::ClientReply {
            msg_id: m.id,
            group: GroupId(0),
            global_ts: Timestamp::new(1, GroupId(0)),
        };
        c.on_event(
            Duration::from_millis(1),
            Event::message(ProcessId(0), reply.clone()),
        );
        let actions = c.on_event(
            Duration::from_millis(2),
            Event::message(ProcessId(1), reply),
        );
        assert!(actions.is_empty());
        assert_eq!(c.completed().len(), 1);
    }

    #[test]
    fn client_reply_notification_enabled_by_default() {
        let mut p0 = SkeenProcess::new(ProcessId(0), GroupId(0), groups());
        let m = msg(0, &[0]);
        deliver_msg(&mut p0, 9, SkeenMsg::Multicast { msg: m.clone() });
        let actions = deliver_msg(
            &mut p0,
            0,
            SkeenMsg::Propose {
                msg: m,
                group: GroupId(0),
                local_ts: Timestamp::new(1, GroupId(0)),
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to, msg: SkeenMsg::ClientReply { .. } } if *to == ProcessId(9)
        )));
    }
}
