//! Delivery records and latency / throughput statistics.
//!
//! The simulator records every `deliver(m)` event; the functions here compute
//! the metrics used in the paper's evaluation:
//!
//! * **Delivery latency** of a message with respect to a destination group:
//!   the time from `multicast(m)` to the *earliest* delivery of `m` by some
//!   process of the group (§II, "our latency metrics are computed based on the
//!   first delivery of a message in every destination group").
//! * **Throughput**: messages partially delivered per second of simulated time.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use wbam_types::{GroupId, MsgId, ProcessId, Timestamp};

/// One `deliver(m)` event observed by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Simulated time of the delivery.
    pub time: Duration,
    /// The process that delivered the message.
    pub process: ProcessId,
    /// The group of the delivering process, when it belongs to one.
    pub group: Option<GroupId>,
    /// The delivered application message.
    pub msg_id: MsgId,
    /// The message's global timestamp as reported by the protocol, if known.
    pub global_ts: Option<Timestamp>,
}

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median (50th percentile) latency.
    pub p50: Duration,
    /// 95th percentile latency.
    pub p95: Duration,
    /// 99th percentile latency.
    pub p99: Duration,
    /// Maximum latency.
    pub max: Duration,
    /// Minimum latency.
    pub min: Duration,
}

impl LatencyStats {
    /// Mean latency in fractional milliseconds (for machine-readable output).
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Median latency in fractional milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.p50.as_secs_f64() * 1e3
    }

    /// 99th-percentile latency in fractional milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99.as_secs_f64() * 1e3
    }

    /// Computes summary statistics from a set of samples.
    ///
    /// Returns a zeroed record when `samples` is empty.
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let total: Duration = samples.iter().sum();
        let pct = |p: f64| -> Duration {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            samples[idx.min(count - 1)]
        };
        LatencyStats {
            count,
            mean: total / count as u32,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *samples.last().unwrap(),
            min: samples[0],
        }
    }
}

/// Throughput summary for a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ThroughputStats {
    /// Number of messages that were partially delivered (delivered by at least
    /// one process in each destination group) during the run.
    pub delivered_messages: usize,
    /// Length of the measured interval (simulated time).
    pub duration: Duration,
    /// Delivered messages per second of simulated time.
    pub messages_per_second: f64,
}

/// A read-only view over a run's deliveries and multicast times, with helpers
/// to compute the paper's metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsView {
    deliveries: Vec<DeliveryRecord>,
    multicast_times: BTreeMap<MsgId, Duration>,
    /// Destination groups of each multicast message.
    destinations: BTreeMap<MsgId, Vec<GroupId>>,
    /// Earliest delivery time per `(message, group)`, precomputed so that the
    /// per-message latency queries cost a lookup instead of a scan over every
    /// delivery record (throughput runs produce hundreds of thousands).
    first_delivery: BTreeMap<(MsgId, GroupId), Duration>,
    /// Named point-in-time gauges attached by the harness (e.g. resident
    /// record counts under compaction), keyed by gauge name.
    gauges: BTreeMap<String, f64>,
}

impl MetricsView {
    /// Creates a view from raw run data.
    pub fn new(
        deliveries: Vec<DeliveryRecord>,
        multicast_times: BTreeMap<MsgId, Duration>,
        destinations: BTreeMap<MsgId, Vec<GroupId>>,
    ) -> Self {
        let mut first_delivery: BTreeMap<(MsgId, GroupId), Duration> = BTreeMap::new();
        for d in &deliveries {
            if let Some(g) = d.group {
                first_delivery
                    .entry((d.msg_id, g))
                    .and_modify(|t| *t = (*t).min(d.time))
                    .or_insert(d.time);
            }
        }
        MetricsView {
            deliveries,
            multicast_times,
            destinations,
            first_delivery,
            gauges: BTreeMap::new(),
        }
    }

    /// Attaches (or overwrites) a named gauge — a point-in-time measurement
    /// such as a replica's resident record count.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Reads a named gauge, if the harness attached it.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All attached gauges, by name.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All delivery records, in delivery order.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        &self.deliveries
    }

    /// The time at which a message was multicast, if known.
    pub fn multicast_time(&self, m: MsgId) -> Option<Duration> {
        self.multicast_times.get(&m).copied()
    }

    /// The earliest delivery of `m` by any process of group `g`.
    pub fn first_delivery_in_group(&self, m: MsgId, g: GroupId) -> Option<Duration> {
        self.first_delivery.get(&(m, g)).copied()
    }

    /// The delivery latency of `m` with respect to group `g`
    /// (first delivery in `g` minus multicast time), if both are known.
    pub fn latency_in_group(&self, m: MsgId, g: GroupId) -> Option<Duration> {
        let start = self.multicast_time(m)?;
        let first = self.first_delivery_in_group(m, g)?;
        first.checked_sub(start)
    }

    /// The worst delivery latency of `m` over all its destination groups:
    /// `max_g (first delivery in g) - multicast(m)`.
    pub fn latency(&self, m: MsgId) -> Option<Duration> {
        let start = self.multicast_time(m)?;
        let dests = self.destinations.get(&m)?;
        let mut worst = Duration::ZERO;
        for g in dests {
            let first = self.first_delivery_in_group(m, *g)?;
            worst = worst.max(first.checked_sub(start)?);
        }
        Some(worst)
    }

    /// Whether `m` was partially delivered: delivered by at least one process
    /// in each of its destination groups.
    pub fn is_partially_delivered(&self, m: MsgId) -> bool {
        match self.destinations.get(&m) {
            None => false,
            Some(dests) => dests
                .iter()
                .all(|g| self.first_delivery_in_group(m, *g).is_some()),
        }
    }

    /// The time at which `m` became partially delivered, if it did.
    pub fn partial_delivery_time(&self, m: MsgId) -> Option<Duration> {
        let dests = self.destinations.get(&m)?;
        let mut t = Duration::ZERO;
        for g in dests {
            t = t.max(self.first_delivery_in_group(m, *g)?);
        }
        Some(t)
    }

    /// Latency statistics over all partially delivered messages.
    pub fn latency_stats(&self) -> LatencyStats {
        let samples: Vec<Duration> = self
            .multicast_times
            .keys()
            .filter_map(|m| self.latency(*m))
            .collect();
        LatencyStats::from_samples(samples)
    }

    /// Latency statistics restricted to messages multicast within a window
    /// (useful to drop warm-up and cool-down phases of a run).
    pub fn latency_stats_in_window(&self, from: Duration, to: Duration) -> LatencyStats {
        let samples: Vec<Duration> = self
            .multicast_times
            .iter()
            .filter(|(_, t)| **t >= from && **t < to)
            .filter_map(|(m, _)| self.latency(*m))
            .collect();
        LatencyStats::from_samples(samples)
    }

    /// Throughput over the given measurement window: partially delivered
    /// messages whose *partial delivery* completed within the window, divided
    /// by the window length.
    pub fn throughput_in_window(&self, from: Duration, to: Duration) -> ThroughputStats {
        let delivered = self
            .multicast_times
            .keys()
            .filter_map(|m| self.partial_delivery_time(*m))
            .filter(|t| *t >= from && *t < to)
            .count();
        let duration = to.saturating_sub(from);
        let secs = duration.as_secs_f64();
        ThroughputStats {
            delivered_messages: delivered,
            duration,
            messages_per_second: if secs > 0.0 {
                delivered as f64 / secs
            } else {
                0.0
            },
        }
    }

    /// The sequence of message identifiers delivered by a given process, in
    /// delivery order. Used by the ordering-property checkers.
    pub fn delivery_order_at(&self, p: ProcessId) -> Vec<MsgId> {
        self.deliveries
            .iter()
            .filter(|d| d.process == p)
            .map(|d| d.msg_id)
            .collect()
    }

    /// All processes that delivered at least one message.
    pub fn delivering_processes(&self) -> Vec<ProcessId> {
        let mut v: Vec<ProcessId> = self.deliveries.iter().map(|d| d.process).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(seq: u64) -> MsgId {
        MsgId::new(ProcessId(99), seq)
    }

    fn record(time_ms: u64, p: u32, g: u32, m: MsgId) -> DeliveryRecord {
        DeliveryRecord {
            time: Duration::from_millis(time_ms),
            process: ProcessId(p),
            group: Some(GroupId(g)),
            msg_id: m,
            global_ts: None,
        }
    }

    fn sample_view() -> MetricsView {
        let deliveries = vec![
            record(10, 0, 0, mid(1)),
            record(12, 3, 1, mid(1)),
            record(14, 1, 0, mid(1)),
            record(30, 0, 0, mid(2)),
        ];
        let mut multicast_times = BTreeMap::new();
        multicast_times.insert(mid(1), Duration::from_millis(4));
        multicast_times.insert(mid(2), Duration::from_millis(20));
        multicast_times.insert(mid(3), Duration::from_millis(25));
        let mut destinations = BTreeMap::new();
        destinations.insert(mid(1), vec![GroupId(0), GroupId(1)]);
        destinations.insert(mid(2), vec![GroupId(0)]);
        destinations.insert(mid(3), vec![GroupId(0), GroupId(1)]);
        MetricsView::new(deliveries, multicast_times, destinations)
    }

    #[test]
    fn latency_uses_first_delivery_per_group() {
        let v = sample_view();
        assert_eq!(
            v.first_delivery_in_group(mid(1), GroupId(0)),
            Some(Duration::from_millis(10))
        );
        assert_eq!(
            v.latency_in_group(mid(1), GroupId(0)),
            Some(Duration::from_millis(6))
        );
        // Worst over both groups: group 1 delivered at 12, multicast at 4 → 8 ms.
        assert_eq!(v.latency(mid(1)), Some(Duration::from_millis(8)));
    }

    #[test]
    fn partial_delivery_detection() {
        let v = sample_view();
        assert!(v.is_partially_delivered(mid(1)));
        assert!(v.is_partially_delivered(mid(2)));
        // mid(3) addressed to both groups but never delivered.
        assert!(!v.is_partially_delivered(mid(3)));
        assert_eq!(v.latency(mid(3)), None);
        assert_eq!(
            v.partial_delivery_time(mid(1)),
            Some(Duration::from_millis(12))
        );
    }

    #[test]
    fn latency_stats_aggregates() {
        let v = sample_view();
        let stats = v.latency_stats();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.min, Duration::from_millis(8));
        assert_eq!(stats.max, Duration::from_millis(10));
        assert_eq!(stats.mean, Duration::from_millis(9));
    }

    #[test]
    fn latency_stats_window_filters_by_multicast_time() {
        let v = sample_view();
        let stats = v.latency_stats_in_window(Duration::ZERO, Duration::from_millis(10));
        assert_eq!(stats.count, 1);
        assert_eq!(stats.max, Duration::from_millis(8));
    }

    #[test]
    fn throughput_counts_partial_deliveries_in_window() {
        let v = sample_view();
        let t = v.throughput_in_window(Duration::ZERO, Duration::from_secs(1));
        assert_eq!(t.delivered_messages, 2);
        assert!((t.messages_per_second - 2.0).abs() < 1e-9);
        let t2 = v.throughput_in_window(Duration::from_millis(20), Duration::from_secs(1));
        assert_eq!(t2.delivered_messages, 1);
    }

    #[test]
    fn delivery_order_per_process() {
        let v = sample_view();
        assert_eq!(v.delivery_order_at(ProcessId(0)), vec![mid(1), mid(2)]);
        assert_eq!(v.delivery_order_at(ProcessId(3)), vec![mid(1)]);
        assert_eq!(
            v.delivering_processes(),
            vec![ProcessId(0), ProcessId(1), ProcessId(3)]
        );
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let stats = LatencyStats::from_samples(Vec::new());
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean, Duration::ZERO);
    }

    #[test]
    fn millisecond_helpers_convert_durations() {
        let stats = LatencyStats::from_samples(vec![
            Duration::from_micros(1500),
            Duration::from_micros(2500),
        ]);
        assert!((stats.mean_ms() - 2.0).abs() < 1e-9);
        assert!((stats.p50_ms() - 2.5).abs() < 1e-9);
        assert!((stats.p99_ms() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let stats = LatencyStats::from_samples(samples);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50, Duration::from_millis(51));
        assert_eq!(stats.p95, Duration::from_millis(95));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert_eq!(stats.max, Duration::from_millis(100));
        assert_eq!(stats.min, Duration::from_millis(1));
    }
}
