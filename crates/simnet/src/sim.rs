//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of sans-IO [`Node`]s (replicas and clients of a
//! single protocol, all sharing one wire message type `M`), a pending-event
//! queue ordered by simulated time, and the network/CPU model:
//!
//! * **Reliable FIFO channels** — a message sent from `p` to `q` is delivered
//!   after a delay drawn from the [`LatencyModel`]; delivery times on the same
//!   channel are clamped to be non-decreasing so the FIFO assumption of the
//!   paper's system model (§II) holds even with jittery delays.
//! * **Crashes** — a crashed process receives no further events and messages
//!   addressed to it are discarded at delivery time (crash-stop model). A
//!   scheduled *restart* resurrects the process with its in-memory state (the
//!   model of synchronously persisted durable state): it receives
//!   [`Event::Restart`] and every timer armed before the crash is fenced off
//!   so it can never fire after the restart. A message still in flight when
//!   the process restarts is delivered normally, like any delayed packet.
//! * **Nemesis faults** — an optional [`NemesisPlan`] injects seeded,
//!   deterministic message drops, duplication, reordering, network partitions
//!   (with scheduled heal), crash/restart schedules, leader nudges and timer
//!   jitter. All randomness comes from the simulation's own seeded RNG, so a
//!   `(seed, plan)` pair replays byte for byte.
//! * **GST** — before an optional global stabilisation time, message delays
//!   are inflated by a random extra delay, modelling the asynchronous period
//!   of the partial-synchrony model (§II).
//! * **CPU model** — each process takes a configurable service time to handle
//!   one protocol message; messages queue at a busy process. This is what
//!   produces throughput saturation in the Figure 7/8 experiments.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wbam_types::{
    Action, AppMessage, Event, GroupId, MsgId, NemesisPlan, Node, ProcessId, SiteId, TimerId,
};

use crate::latency::LatencyModel;
use crate::metrics::{DeliveryRecord, MetricsView};

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the simulation's random number generator; runs with the same
    /// seed and inputs are bit-for-bit identical.
    pub seed: u64,
    /// One-way message delay model.
    pub latency: LatencyModel,
    /// CPU time consumed by a replica to handle one protocol message.
    pub service_time: Duration,
    /// CPU time consumed by a client process to handle one message.
    pub client_service_time: Duration,
    /// Optional global stabilisation time: before it, message delays are
    /// inflated by up to `pre_gst_extra_delay`.
    pub gst: Option<Duration>,
    /// Maximum extra delay added to messages sent before GST.
    pub pre_gst_extra_delay: Duration,
    /// Record every sent protocol message in a trace (needed by the invariant
    /// checkers; costs memory on long runs).
    pub record_trace: bool,
    /// Fault schedule executed by the simulation: crashes/restarts and leader
    /// nudges are scheduled as events when the simulation is built;
    /// probabilistic link faults, partitions and timer jitter are applied to
    /// every send / timer while the plan's chaos window is open. Defaults to
    /// [`NemesisPlan::quiet`] (no faults).
    pub nemesis: NemesisPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: LatencyModel::default(),
            service_time: Duration::ZERO,
            client_service_time: Duration::ZERO,
            gst: None,
            pre_gst_extra_delay: Duration::ZERO,
            record_trace: false,
            nemesis: NemesisPlan::quiet(),
        }
    }
}

/// One protocol message captured in the simulation trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry<M> {
    /// Time at which the message was sent.
    pub time: Duration,
    /// Sender.
    pub from: ProcessId,
    /// Recipient.
    pub to: ProcessId,
    /// The message.
    pub msg: M,
}

/// Aggregate network statistics for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Total protocol messages sent.
    pub messages_sent: u64,
    /// Total protocol messages delivered to a live process.
    pub messages_received: u64,
    /// Total protocol messages dropped because the recipient had crashed.
    pub messages_dropped: u64,
    /// Total application-message deliveries.
    pub app_deliveries: u64,
    /// Messages the nemesis dropped (random loss or an active partition).
    pub nemesis_dropped: u64,
    /// Messages the nemesis duplicated.
    pub nemesis_duplicated: u64,
    /// Messages the nemesis reordered past the FIFO clamp.
    pub nemesis_reordered: u64,
}

/// What a single [`Simulation::step`] processed.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// A protocol message was handled by a node.
    MessageHandled {
        /// The handling process.
        process: ProcessId,
        /// Number of application messages the node delivered while handling it.
        deliveries: usize,
    },
    /// A timer fired at a node.
    TimerFired {
        /// The process whose timer fired.
        process: ProcessId,
        /// The timer.
        timer: TimerId,
    },
    /// An externally scheduled multicast request was handed to a node.
    MulticastInjected {
        /// The process that received the request.
        process: ProcessId,
        /// The application message identifier.
        msg_id: MsgId,
    },
    /// A node was told to start leader recovery.
    LeaderChangeInjected {
        /// The process that was told to become leader.
        process: ProcessId,
    },
    /// A process crashed.
    Crashed {
        /// The crashed process.
        process: ProcessId,
    },
    /// A crashed process restarted and received [`Event::Restart`].
    Restarted {
        /// The restarted process.
        process: ProcessId,
    },
    /// The event was dropped (its target had crashed, or a stale timer).
    Dropped,
}

#[derive(Debug)]
enum Payload<M> {
    Receive { from: ProcessId, msg: M },
    Timer { id: TimerId, generation: u64 },
    Multicast(AppMessage),
    BecomeLeader,
    Crash,
    Restart,
}

struct QueuedEvent<M> {
    time: Duration,
    seq: u64,
    target: ProcessId,
    payload: Payload<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct NodeSlot<M> {
    node: Box<dyn Node<Msg = M>>,
    busy_until: Duration,
    is_client: bool,
    group: Option<GroupId>,
    site: SiteId,
}

/// A deterministic discrete-event simulation of a set of protocol nodes.
pub struct Simulation<M> {
    config: SimConfig,
    nodes: BTreeMap<ProcessId, NodeSlot<M>>,
    queue: BinaryHeap<QueuedEvent<M>>,
    now: Duration,
    seq: u64,
    rng: StdRng,
    fifo_last: HashMap<(ProcessId, ProcessId), Duration>,
    timer_generations: HashMap<(ProcessId, TimerId), u64>,
    crashed: BTreeSet<ProcessId>,
    deliveries: Vec<DeliveryRecord>,
    multicast_times: BTreeMap<MsgId, Duration>,
    destinations: BTreeMap<MsgId, Vec<GroupId>>,
    stats: NetStats,
    trace: Vec<TraceEntry<M>>,
    sends_by_process: BTreeMap<ProcessId, u64>,
}

impl<M: Clone + 'static> Simulation<M> {
    /// Creates an empty simulation with the given configuration.
    ///
    /// The crash/restart schedule and leader nudges of the configuration's
    /// [`NemesisPlan`] are queued immediately; its link faults, partitions and
    /// timer jitter apply continuously as the simulation runs.
    pub fn new(config: SimConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let mut sim = Simulation {
            config,
            nodes: BTreeMap::new(),
            queue: BinaryHeap::new(),
            now: Duration::ZERO,
            seq: 0,
            rng,
            fifo_last: HashMap::new(),
            timer_generations: HashMap::new(),
            crashed: BTreeSet::new(),
            deliveries: Vec::new(),
            multicast_times: BTreeMap::new(),
            destinations: BTreeMap::new(),
            stats: NetStats::default(),
            trace: Vec::new(),
            sends_by_process: BTreeMap::new(),
        };
        for crash in sim.config.nemesis.crashes.clone() {
            sim.push(crash.at, crash.process, Payload::Crash);
            if let Some(restart_at) = crash.restart_at {
                sim.push(restart_at, crash.process, Payload::Restart);
            }
        }
        for nudge in sim.config.nemesis.leader_nudges.clone() {
            sim.push(nudge.at, nudge.process, Payload::BecomeLeader);
        }
        sim
    }

    /// Adds a replica node belonging to `group` at `site`.
    pub fn add_replica(
        &mut self,
        node: Box<dyn Node<Msg = M>>,
        group: GroupId,
        site: SiteId,
    ) -> ProcessId {
        self.add_slot(node, false, Some(group), site)
    }

    /// Adds a client node (not a member of any group) at site 0.
    pub fn add_client(&mut self, node: Box<dyn Node<Msg = M>>) -> ProcessId {
        self.add_slot(node, true, None, SiteId(0))
    }

    /// Adds a client node at a specific site.
    pub fn add_client_at(&mut self, node: Box<dyn Node<Msg = M>>, site: SiteId) -> ProcessId {
        self.add_slot(node, true, None, site)
    }

    /// Adds a node with default placement (no group, site 0). Mostly useful in
    /// unit tests and doctests.
    pub fn add_node(&mut self, node: Box<dyn Node<Msg = M>>) -> ProcessId {
        self.add_slot(node, false, None, SiteId(0))
    }

    fn add_slot(
        &mut self,
        node: Box<dyn Node<Msg = M>>,
        is_client: bool,
        group: Option<GroupId>,
        site: SiteId,
    ) -> ProcessId {
        let id = node.id();
        assert!(
            !self.nodes.contains_key(&id),
            "node {id} registered twice in the simulation"
        );
        self.nodes.insert(
            id,
            NodeSlot {
                node,
                busy_until: Duration::ZERO,
                is_client,
                group,
                site,
            },
        );
        // Deliver the Init event at time zero.
        self.push(
            Duration::ZERO,
            id,
            Payload::Timer {
                id: TimerId(u64::MAX),
                generation: u64::MAX,
            },
        );
        id
    }

    fn push(&mut self, time: Duration, target: ProcessId, payload: Payload<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Current simulated time.
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Aggregate network statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of protocol messages sent by each process.
    pub fn sends_by_process(&self) -> &BTreeMap<ProcessId, u64> {
        &self.sends_by_process
    }

    /// The recorded protocol-message trace (empty unless
    /// [`SimConfig::record_trace`] was set).
    pub fn trace(&self) -> &[TraceEntry<M>] {
        &self.trace
    }

    /// All deliveries recorded so far.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        &self.deliveries
    }

    /// Builds a [`MetricsView`] over the run so far.
    pub fn metrics(&self) -> MetricsView {
        MetricsView::new(
            self.deliveries.clone(),
            self.multicast_times.clone(),
            self.destinations.clone(),
        )
    }

    /// Schedules an application multicast: at time `at`, process `from` (a
    /// client or replica node) receives [`Event::Multicast`] for `msg`.
    pub fn schedule_multicast(&mut self, at: Duration, from: ProcessId, msg: AppMessage) {
        self.multicast_times.entry(msg.id).or_insert(at);
        self.destinations
            .entry(msg.id)
            .or_insert_with(|| msg.dest.groups().to_vec());
        self.push(at, from, Payload::Multicast(msg));
    }

    /// Schedules a crash of `process` at time `at`.
    pub fn schedule_crash(&mut self, at: Duration, process: ProcessId) {
        self.push(at, process, Payload::Crash);
    }

    /// Schedules a restart of `process` at time `at`: if the process is
    /// crashed at that moment it comes back up with its in-memory state,
    /// receives [`Event::Restart`], and every timer armed before the crash is
    /// invalidated. A restart of a live process is a no-op.
    pub fn schedule_restart(&mut self, at: Duration, process: ProcessId) {
        self.push(at, process, Payload::Restart);
    }

    /// Schedules a [`Event::BecomeLeader`] notification, modelling the group's
    /// leader-election oracle electing `process` at time `at`.
    pub fn schedule_become_leader(&mut self, at: Duration, process: ProcessId) {
        self.push(at, process, Payload::BecomeLeader);
    }

    /// Injects a raw protocol message from `from` to `to` at time `at`,
    /// bypassing the latency model. Useful in unit tests.
    pub fn send_external(&mut self, at: Duration, from: ProcessId, to: ProcessId, msg: M) {
        self.stats.messages_sent += 1;
        self.push(at, to, Payload::Receive { from, msg });
    }

    /// Whether the given process has crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed.contains(&p)
    }

    /// Read access to a node, for state inspection through
    /// [`Node::as_any`].
    pub fn node(&self, p: ProcessId) -> Option<&dyn Node<Msg = M>> {
        self.nodes.get(&p).map(|slot| &*slot.node)
    }

    /// Whether any events remain to be processed.
    pub fn has_pending_events(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Processes the next pending event, if any, and returns what happened.
    pub fn step(&mut self) -> Option<StepOutcome> {
        let ev = self.queue.pop()?;
        self.now = self.now.max(ev.time);
        let target = ev.target;

        if self.crashed.contains(&target) {
            if matches!(ev.payload, Payload::Restart) {
                self.crashed.remove(&target);
                // Fence off every timer armed before the crash: bump its
                // generation so the queued firing is recognised as stale. A
                // real process loses its in-memory timer wheel with the crash;
                // without the fence a pre-crash timer would fire into the
                // restarted process (the node re-arms what it needs from its
                // Restart handler).
                for ((process, _), generation) in self.timer_generations.iter_mut() {
                    if *process == target {
                        *generation += 1;
                    }
                }
                if let Some(slot) = self.nodes.get_mut(&target) {
                    // The CPU queue died with the process.
                    slot.busy_until = ev.time;
                }
                self.dispatch(target, ev.time, Event::Restart);
                return Some(StepOutcome::Restarted { process: target });
            }
            if matches!(ev.payload, Payload::Receive { .. }) {
                self.stats.messages_dropped += 1;
            }
            return Some(StepOutcome::Dropped);
        }

        match ev.payload {
            Payload::Crash => {
                self.crashed.insert(target);
                Some(StepOutcome::Crashed { process: target })
            }
            // A restart of a process that never crashed (or already
            // restarted) is a no-op.
            Payload::Restart => Some(StepOutcome::Dropped),
            Payload::Timer { id, generation } => {
                // The sentinel (u64::MAX, u64::MAX) timer is the Init event.
                if id == TimerId(u64::MAX) && generation == u64::MAX {
                    let deliveries = self.dispatch(target, ev.time, Event::Init);
                    return Some(StepOutcome::MessageHandled {
                        process: target,
                        deliveries,
                    });
                }
                let current = self
                    .timer_generations
                    .get(&(target, id))
                    .copied()
                    .unwrap_or(0);
                if generation != current {
                    return Some(StepOutcome::Dropped);
                }
                self.dispatch(target, ev.time, Event::Timer { id, now: ev.time });
                Some(StepOutcome::TimerFired {
                    process: target,
                    timer: id,
                })
            }
            Payload::Receive { from, msg } => {
                self.stats.messages_received += 1;
                let deliveries = self.dispatch(target, ev.time, Event::Message { from, msg });
                Some(StepOutcome::MessageHandled {
                    process: target,
                    deliveries,
                })
            }
            Payload::Multicast(msg) => {
                let msg_id = msg.id;
                self.dispatch(target, ev.time, Event::Multicast(msg));
                Some(StepOutcome::MulticastInjected {
                    process: target,
                    msg_id,
                })
            }
            Payload::BecomeLeader => {
                self.dispatch(target, ev.time, Event::BecomeLeader);
                Some(StepOutcome::LeaderChangeInjected { process: target })
            }
        }
    }

    /// Runs until the event queue is empty or simulated time exceeds `horizon`.
    ///
    /// Returns the number of events processed.
    pub fn run_until_quiescent(&mut self, horizon: Duration) -> usize {
        let mut processed = 0;
        while let Some(ev) = self.queue.peek() {
            if ev.time > horizon {
                break;
            }
            self.step();
            processed += 1;
        }
        processed
    }

    /// Runs until simulated time reaches `until` (events after it stay queued).
    pub fn run_until(&mut self, until: Duration) -> usize {
        self.run_until_quiescent(until)
    }

    /// Dispatches an event to a node, applying the CPU model, and executes the
    /// returned actions. Returns the number of application deliveries.
    fn dispatch(&mut self, target: ProcessId, arrival: Duration, event: Event<M>) -> usize {
        let (effective, actions, group, site) = {
            let Some(slot) = self.nodes.get_mut(&target) else {
                return 0;
            };
            let service = if slot.is_client {
                self.config.client_service_time
            } else {
                self.config.service_time
            };
            // The node starts handling the event when it is free, and its
            // effects take place after the service time.
            let start = arrival.max(slot.busy_until);
            let effective = start + service;
            slot.busy_until = effective;
            let actions = slot.node.on_event(effective, event);
            (effective, actions, slot.group, slot.site)
        };

        let mut deliveries = 0;
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    self.execute_send(target, site, to, msg, effective);
                }
                Action::Deliver(d) => {
                    deliveries += 1;
                    self.stats.app_deliveries += 1;
                    self.deliveries.push(DeliveryRecord {
                        time: effective,
                        process: target,
                        group,
                        msg_id: d.msg.id,
                        global_ts: d.global_ts,
                    });
                }
                Action::SetTimer { id, delay } => {
                    let gen = self
                        .timer_generations
                        .entry((target, id))
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                    let generation = *gen;
                    // Nemesis timer jitter: while the chaos window is open,
                    // timers may fire up to `timer_jitter` late.
                    let jitter = self.config.nemesis.timer_jitter;
                    let delay = if !jitter.is_zero() && self.config.nemesis.chaos_active(effective)
                    {
                        let extra_ns = self.rng.gen_range(0..=jitter.as_nanos() as u64);
                        delay + Duration::from_nanos(extra_ns)
                    } else {
                        delay
                    };
                    self.push(effective + delay, target, Payload::Timer { id, generation });
                }
                Action::CancelTimer(id) => {
                    self.timer_generations
                        .entry((target, id))
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                }
            }
        }
        deliveries
    }

    fn execute_send(
        &mut self,
        from: ProcessId,
        from_site: SiteId,
        to: ProcessId,
        msg: M,
        sent_at: Duration,
    ) {
        self.stats.messages_sent += 1;
        *self.sends_by_process.entry(from).or_insert(0) += 1;
        if self.config.record_trace {
            self.trace.push(TraceEntry {
                time: sent_at,
                from,
                to,
                msg: msg.clone(),
            });
        }
        let to_site = self
            .nodes
            .get(&to)
            .map(|slot| slot.site)
            .unwrap_or(SiteId(0));
        // Nemesis faults apply only to real network traffic between distinct
        // processes; a process's channel to itself is process-internal. The
        // send is recorded in the trace and the stats above even when the
        // nemesis eats it: a lost ACCEPT is still a proposal the invariant
        // checkers must account for.
        let network = from != to;
        if network && self.config.nemesis.partition_blocks(sent_at, from, to) {
            self.stats.nemesis_dropped += 1;
            return;
        }
        let chaos =
            network && self.config.nemesis.link.any() && self.config.nemesis.chaos_active(sent_at);
        if chaos && self.roll(self.config.nemesis.link.drop_per_mille) {
            self.stats.nemesis_dropped += 1;
            return;
        }
        // A process sending to itself does not traverse the network: protocols
        // routinely include themselves in broadcasts "for uniformity" (e.g.
        // Figure 4 line 9) and must not be charged a network delay for it.
        let mut delay = if from == to {
            Duration::ZERO
        } else {
            self.config
                .latency
                .sample(&mut self.rng, from_site, to_site)
        };
        if let Some(gst) = self.config.gst {
            if sent_at < gst && !self.config.pre_gst_extra_delay.is_zero() {
                let extra_ns = self.config.pre_gst_extra_delay.as_nanos() as u64;
                delay += Duration::from_nanos(self.rng.gen_range(0..=extra_ns));
            }
        }
        // Reordering: the message takes a detour (extra random delay) and
        // bypasses the FIFO clamp entirely, so it can overtake or be
        // overtaken. Deliberately outside the paper's channel model; see
        // `LinkFaults::reorder_per_mille`.
        if chaos && self.roll(self.config.nemesis.link.reorder_per_mille) {
            let extra = self.config.nemesis.link.reorder_extra.as_nanos() as u64;
            if extra > 0 {
                delay += Duration::from_nanos(self.rng.gen_range(0..=extra));
            }
            self.stats.nemesis_reordered += 1;
            self.push(sent_at + delay, to, Payload::Receive { from, msg });
            return;
        }
        let mut arrival = sent_at + delay;
        // Enforce FIFO per channel: arrival times never decrease.
        let last = self.fifo_last.entry((from, to)).or_insert(Duration::ZERO);
        if arrival < *last {
            arrival = *last;
        }
        *last = arrival;
        // Duplication: deliver a second copy with an independently sampled
        // delay. The duplicate respects the FIFO clamp (it arrives at or
        // after the original), modelling a retransmit-style stutter rather
        // than reordering.
        if chaos && self.roll(self.config.nemesis.link.duplicate_per_mille) {
            let mut dup_delay = self
                .config
                .latency
                .sample(&mut self.rng, from_site, to_site);
            if dup_delay < delay {
                dup_delay = delay;
            }
            let dup_arrival = (sent_at + dup_delay).max(arrival);
            let last = self.fifo_last.entry((from, to)).or_insert(Duration::ZERO);
            *last = (*last).max(dup_arrival);
            self.stats.nemesis_duplicated += 1;
            self.push(
                dup_arrival,
                to,
                Payload::Receive {
                    from,
                    msg: msg.clone(),
                },
            );
        }
        self.push(arrival, to, Payload::Receive { from, msg });
    }

    /// Draws a permille probability from the simulation RNG. Zero never
    /// consumes randomness, so a quiet plan leaves the RNG stream identical
    /// to a run without nemesis support.
    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.rng.gen_range(0..1000u32) < u32::from(per_mille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wbam_types::{Destination, Payload as AppPayload};

    /// Test node: replies to every received `u32` with `msg + 1` sent back to
    /// the sender, and records everything it receives.
    struct Pong {
        id: ProcessId,
        received: Vec<(ProcessId, u32, Duration)>,
        reply: bool,
    }

    impl Pong {
        fn new(id: u32, reply: bool) -> Self {
            Pong {
                id: ProcessId(id),
                received: Vec::new(),
                reply,
            }
        }
    }

    impl Node for Pong {
        type Msg = u32;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_event(&mut self, now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
            match event {
                Event::Message { from, msg } => {
                    self.received.push((from, msg, now));
                    if self.reply && msg < 100 {
                        vec![Action::send(from, msg + 1)]
                    } else {
                        Vec::new()
                    }
                }
                _ => Vec::new(),
            }
        }
    }

    fn two_node_sim(latency: LatencyModel) -> Simulation<u32> {
        let mut sim = Simulation::new(SimConfig {
            latency,
            ..SimConfig::default()
        });
        sim.add_node(Box::new(Pong::new(0, false)));
        sim.add_node(Box::new(Pong::new(1, false)));
        sim
    }

    #[test]
    fn constant_latency_delivers_after_delta() {
        let mut sim = two_node_sim(LatencyModel::constant(Duration::from_millis(5)));
        sim.send_external(Duration::ZERO, ProcessId(1), ProcessId(0), 7);
        // The externally injected message arrives at t = 0 (bypasses latency);
        // have node 0 reply so we can observe one real network hop.
        let events = sim.run_until_quiescent(Duration::from_secs(1));
        assert!(events > 0);
        assert_eq!(sim.stats().messages_received, 1);
    }

    #[test]
    fn ping_pong_round_trips_respect_latency() {
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::constant(Duration::from_millis(10)),
            ..SimConfig::default()
        });
        sim.add_node(Box::new(Pong::new(0, true)));
        sim.add_node(Box::new(Pong::new(1, true)));
        // Node 1 sends 0 to node 0 at t=0 (external, no delay), then they
        // bounce 0,1,2,...,100 back and forth with 10 ms per hop.
        sim.send_external(Duration::ZERO, ProcessId(1), ProcessId(0), 0);
        sim.run_until_quiescent(Duration::from_secs(10));
        // 0..=100 inclusive = 101 messages received in total.
        assert_eq!(sim.stats().messages_received, 101);
        // The last hop arrives at 100 * 10 ms = 1 s.
        assert_eq!(sim.now(), Duration::from_millis(1000));
    }

    #[test]
    fn fifo_order_is_preserved_under_jitter() {
        struct Burst {
            id: ProcessId,
        }
        impl Node for Burst {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                match event {
                    Event::Init => (0..50).map(|i| Action::send(ProcessId(1), i)).collect(),
                    _ => Vec::new(),
                }
            }
        }
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::uniform(Duration::from_millis(1), Duration::from_millis(50)),
            seed: 42,
            ..SimConfig::default()
        });
        sim.add_node(Box::new(Burst { id: ProcessId(0) }));
        let receiver = Pong::new(1, false);
        sim.add_node(Box::new(receiver));
        sim.run_until_quiescent(Duration::from_secs(10));
        assert_eq!(sim.stats().messages_received, 50);
        // We cannot reach into the boxed node, so check FIFO via the trace of
        // receive order: messages_received count plus the fact that the sim is
        // deterministic is covered elsewhere; here we re-run with a recording
        // node to check order.
        struct Recorder {
            id: ProcessId,
            seen: Vec<u32>,
            expect_sorted: bool,
        }
        impl Node for Recorder {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                if let Event::Message { msg, .. } = event {
                    self.seen.push(msg);
                    if self.expect_sorted {
                        let mut sorted = self.seen.clone();
                        sorted.sort_unstable();
                        assert_eq!(self.seen, sorted, "FIFO violated");
                    }
                }
                Vec::new()
            }
        }
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::uniform(Duration::from_millis(1), Duration::from_millis(50)),
            seed: 42,
            ..SimConfig::default()
        });
        sim.add_node(Box::new(Burst { id: ProcessId(0) }));
        sim.add_node(Box::new(Recorder {
            id: ProcessId(1),
            seen: Vec::new(),
            expect_sorted: true,
        }));
        sim.run_until_quiescent(Duration::from_secs(10));
        assert_eq!(sim.stats().messages_received, 50);
    }

    #[test]
    fn crashed_nodes_drop_messages() {
        let mut sim = two_node_sim(LatencyModel::constant(Duration::from_millis(1)));
        sim.schedule_crash(Duration::from_millis(5), ProcessId(0));
        sim.send_external(Duration::from_millis(10), ProcessId(1), ProcessId(0), 3);
        sim.run_until_quiescent(Duration::from_secs(1));
        assert!(sim.is_crashed(ProcessId(0)));
        assert_eq!(sim.stats().messages_received, 0);
        assert_eq!(sim.stats().messages_dropped, 1);
    }

    #[test]
    fn service_time_queues_messages() {
        // Two messages arrive at t=0; with a 10 ms service time the second is
        // handled at t=20 ms.
        struct Last {
            id: ProcessId,
            last_time: Duration,
        }
        impl Node for Last {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                if event.is_message() {
                    self.last_time = now;
                }
                Vec::new()
            }
        }
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::constant(Duration::ZERO),
            service_time: Duration::from_millis(10),
            ..SimConfig::default()
        });
        sim.add_node(Box::new(Last {
            id: ProcessId(0),
            last_time: Duration::ZERO,
        }));
        sim.send_external(Duration::ZERO, ProcessId(1), ProcessId(0), 1);
        sim.send_external(Duration::ZERO, ProcessId(1), ProcessId(0), 2);
        sim.run_until_quiescent(Duration::from_secs(1));
        // Both handled; the node's busy time advanced to 20 ms.
        assert_eq!(sim.stats().messages_received, 2);
        assert_eq!(sim.now(), Duration::ZERO); // events were both queued at t=0
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerNode {
            id: ProcessId,
            fired: Vec<TimerId>,
        }
        impl Node for TimerNode {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                match event {
                    Event::Init => vec![
                        Action::SetTimer {
                            id: TimerId(1),
                            delay: Duration::from_millis(10),
                        },
                        Action::SetTimer {
                            id: TimerId(2),
                            delay: Duration::from_millis(20),
                        },
                        Action::CancelTimer(TimerId(2)),
                    ],
                    Event::Timer { id, .. } => {
                        self.fired.push(id);
                        Vec::new()
                    }
                    _ => Vec::new(),
                }
            }
        }
        let mut sim: Simulation<u32> = Simulation::new(SimConfig::default());
        sim.add_node(Box::new(TimerNode {
            id: ProcessId(0),
            fired: Vec::new(),
        }));
        let mut timer_fired = 0;
        let mut dropped = 0;
        while let Some(outcome) = sim.step() {
            match outcome {
                StepOutcome::TimerFired { timer, .. } => {
                    timer_fired += 1;
                    assert_eq!(timer, TimerId(1));
                }
                StepOutcome::Dropped => dropped += 1,
                _ => {}
            }
        }
        assert_eq!(timer_fired, 1, "only the uncancelled timer fires");
        assert_eq!(dropped, 1, "the cancelled timer is dropped");
    }

    #[test]
    fn rearmed_timer_supersedes_previous() {
        struct Rearm {
            id: ProcessId,
            count: u32,
        }
        impl Node for Rearm {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                match event {
                    Event::Init => vec![
                        Action::SetTimer {
                            id: TimerId(1),
                            delay: Duration::from_millis(10),
                        },
                        // Re-arm immediately; only the second instance should fire.
                        Action::SetTimer {
                            id: TimerId(1),
                            delay: Duration::from_millis(30),
                        },
                    ],
                    Event::Timer { .. } => {
                        self.count += 1;
                        Vec::new()
                    }
                    _ => Vec::new(),
                }
            }
        }
        let mut sim: Simulation<u32> = Simulation::new(SimConfig::default());
        sim.add_node(Box::new(Rearm {
            id: ProcessId(0),
            count: 0,
        }));
        let mut fired = 0;
        while let Some(outcome) = sim.step() {
            if matches!(outcome, StepOutcome::TimerFired { .. }) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let run = |seed: u64| -> (NetStats, Duration) {
            let mut sim = Simulation::new(SimConfig {
                latency: LatencyModel::uniform(Duration::from_millis(1), Duration::from_millis(20)),
                seed,
                ..SimConfig::default()
            });
            sim.add_node(Box::new(Pong::new(0, true)));
            sim.add_node(Box::new(Pong::new(1, true)));
            sim.send_external(Duration::ZERO, ProcessId(1), ProcessId(0), 0);
            sim.run_until_quiescent(Duration::from_secs(60));
            (sim.stats(), sim.now())
        };
        let (s1, t1) = run(7);
        let (s2, t2) = run(7);
        let (s3, t3) = run(8);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
        // A different seed gives a different (but valid) schedule.
        assert_eq!(s1.messages_received, s3.messages_received);
        assert_ne!(t1, t3);
    }

    #[test]
    fn multicast_times_and_destinations_are_recorded() {
        let mut sim: Simulation<u32> = Simulation::new(SimConfig::default());
        sim.add_node(Box::new(Pong::new(0, false)));
        let msg = AppMessage::new(
            MsgId::new(ProcessId(0), 1),
            Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
            AppPayload::from("x"),
        );
        sim.schedule_multicast(Duration::from_millis(3), ProcessId(0), msg);
        sim.run_until_quiescent(Duration::from_secs(1));
        let metrics = sim.metrics();
        assert_eq!(
            metrics.multicast_time(MsgId::new(ProcessId(0), 1)),
            Some(Duration::from_millis(3))
        );
        assert!(!metrics.is_partially_delivered(MsgId::new(ProcessId(0), 1)));
    }

    #[test]
    fn trace_recording_captures_sends() {
        let mut sim = Simulation::new(SimConfig {
            record_trace: true,
            latency: LatencyModel::constant(Duration::from_millis(1)),
            ..SimConfig::default()
        });
        sim.add_node(Box::new(Pong::new(0, true)));
        sim.add_node(Box::new(Pong::new(1, true)));
        sim.send_external(Duration::ZERO, ProcessId(1), ProcessId(0), 98);
        sim.run_until_quiescent(Duration::from_secs(1));
        // 98 -> reply 99 -> reply 100 (no further replies, msg >= 100).
        assert_eq!(sim.trace().len(), 2);
        assert_eq!(sim.trace()[0].from, ProcessId(0));
        assert_eq!(sim.trace()[0].to, ProcessId(1));
        assert!(sim.sends_by_process()[&ProcessId(0)] >= 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_node_registration_panics() {
        let mut sim: Simulation<u32> = Simulation::new(SimConfig::default());
        sim.add_node(Box::new(Pong::new(0, false)));
        sim.add_node(Box::new(Pong::new(0, false)));
    }

    #[test]
    fn restart_resurrects_a_crashed_process() {
        struct Counter {
            id: ProcessId,
            received: u32,
            restarts: u32,
        }
        impl Node for Counter {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                match event {
                    Event::Message { .. } => {
                        self.received += 1;
                        Vec::new()
                    }
                    Event::Restart => {
                        self.restarts += 1;
                        // Announce the rejoin so the test can observe that the
                        // restarted node's actions are executed.
                        vec![Action::send(ProcessId(1), 99)]
                    }
                    _ => Vec::new(),
                }
            }
        }
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::constant(Duration::from_millis(1)),
            ..SimConfig::default()
        });
        sim.add_node(Box::new(Counter {
            id: ProcessId(0),
            received: 0,
            restarts: 0,
        }));
        sim.add_node(Box::new(Pong::new(1, false)));
        sim.schedule_crash(Duration::from_millis(5), ProcessId(0));
        sim.schedule_restart(Duration::from_millis(20), ProcessId(0));
        // Lost while down...
        sim.send_external(Duration::from_millis(10), ProcessId(1), ProcessId(0), 1);
        // ...received after the restart.
        sim.send_external(Duration::from_millis(30), ProcessId(1), ProcessId(0), 2);
        let mut restarted = 0;
        while let Some(outcome) = sim.step() {
            if matches!(outcome, StepOutcome::Restarted { .. }) {
                restarted += 1;
            }
        }
        assert_eq!(restarted, 1);
        assert!(!sim.is_crashed(ProcessId(0)));
        assert_eq!(sim.stats().messages_dropped, 1);
        // The message sent after the restart and the restart announcement
        // both went through.
        assert_eq!(sim.stats().messages_received, 2);
    }

    #[test]
    fn restart_of_a_live_process_is_a_no_op() {
        let mut sim = two_node_sim(LatencyModel::constant(Duration::from_millis(1)));
        sim.schedule_restart(Duration::from_millis(5), ProcessId(0));
        let mut restarted = 0;
        while let Some(outcome) = sim.step() {
            if matches!(outcome, StepOutcome::Restarted { .. }) {
                restarted += 1;
            }
        }
        assert_eq!(restarted, 0);
    }

    #[test]
    fn timers_armed_before_a_crash_never_fire_after_restart() {
        // The node arms a timer at Init that would fire at t = 50 ms. It
        // crashes at 10 ms and restarts at 20 ms: the pre-crash timer is
        // stale and must not fire; a timer re-armed from the Restart handler
        // must fire.
        struct TimerNode {
            id: ProcessId,
            fired: u32,
            fired_after_restart: u32,
            restarted: bool,
        }
        impl Node for TimerNode {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                match event {
                    Event::Init => vec![Action::SetTimer {
                        id: TimerId(1),
                        delay: Duration::from_millis(50),
                    }],
                    Event::Restart => {
                        self.restarted = true;
                        vec![Action::SetTimer {
                            id: TimerId(2),
                            delay: Duration::from_millis(5),
                        }]
                    }
                    Event::Timer { id, .. } => {
                        self.fired += 1;
                        if self.restarted {
                            self.fired_after_restart += 1;
                            assert_eq!(id, TimerId(2), "stale pre-crash timer fired after restart");
                        }
                        Vec::new()
                    }
                    _ => Vec::new(),
                }
            }
        }
        let mut sim: Simulation<u32> = Simulation::new(SimConfig::default());
        sim.add_node(Box::new(TimerNode {
            id: ProcessId(0),
            fired: 0,
            fired_after_restart: 0,
            restarted: false,
        }));
        sim.schedule_crash(Duration::from_millis(10), ProcessId(0));
        sim.schedule_restart(Duration::from_millis(20), ProcessId(0));
        let mut fired = 0;
        while let Some(outcome) = sim.step() {
            if matches!(outcome, StepOutcome::TimerFired { .. }) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "only the re-armed post-restart timer fires");
    }

    #[test]
    fn nemesis_drop_loses_messages_deterministically() {
        let run = |seed: u64| {
            let mut config = SimConfig {
                latency: LatencyModel::constant(Duration::from_millis(1)),
                seed,
                ..SimConfig::default()
            };
            config.nemesis.link.drop_per_mille = 500;
            let mut sim = Simulation::new(config);
            sim.add_node(Box::new(Pong::new(0, false)));
            sim.add_node(Box::new(Burst50 { id: ProcessId(1) }));
            sim.run_until_quiescent(Duration::from_secs(1));
            (sim.stats().nemesis_dropped, sim.stats().messages_received)
        };
        let (dropped_a, received_a) = run(11);
        let (dropped_b, received_b) = run(11);
        assert_eq!(dropped_a, dropped_b, "same seed, same losses");
        assert_eq!(received_a, received_b);
        assert!(dropped_a > 0, "50% loss over 50 messages drops some");
        assert!(received_a > 0, "and lets some through");
        assert_eq!(dropped_a + received_a, 50);
    }

    /// Sends 0..50 to process 0 at Init (used by the nemesis tests).
    struct Burst50 {
        id: ProcessId,
    }
    impl Node for Burst50 {
        type Msg = u32;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
            match event {
                Event::Init => (0..50).map(|i| Action::send(ProcessId(0), i)).collect(),
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn nemesis_duplicate_delivers_extra_copies_in_fifo_order() {
        let mut config = SimConfig {
            latency: LatencyModel::uniform(Duration::from_millis(1), Duration::from_millis(20)),
            seed: 5,
            ..SimConfig::default()
        };
        config.nemesis.link.duplicate_per_mille = 400;
        let mut sim = Simulation::new(config);
        // Reuse the FIFO recorder: duplicates must not break the
        // non-decreasing arrival order of the channel.
        struct Recorder {
            id: ProcessId,
            seen: Vec<u32>,
        }
        impl Node for Recorder {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                if let Event::Message { msg, .. } = event {
                    self.seen.push(msg);
                    let mut sorted = self.seen.clone();
                    sorted.sort_unstable();
                    assert_eq!(self.seen, sorted, "duplicates broke FIFO order");
                }
                Vec::new()
            }
        }
        sim.add_node(Box::new(Recorder {
            id: ProcessId(0),
            seen: Vec::new(),
        }));
        sim.add_node(Box::new(Burst50 { id: ProcessId(1) }));
        sim.run_until_quiescent(Duration::from_secs(5));
        let stats = sim.stats();
        assert!(stats.nemesis_duplicated > 0);
        assert_eq!(
            stats.messages_received,
            50 + stats.nemesis_duplicated,
            "every duplicate is an extra received copy"
        );
    }

    #[test]
    fn nemesis_partition_blocks_and_heals() {
        use wbam_types::PartitionSpec;
        let mut config = SimConfig {
            latency: LatencyModel::constant(Duration::from_millis(1)),
            ..SimConfig::default()
        };
        config.nemesis.partitions.push(PartitionSpec {
            start: Duration::from_millis(10),
            heal: Duration::from_millis(20),
            side_a: vec![ProcessId(1)],
            side_b: vec![ProcessId(0)],
            symmetric: false,
        });
        let mut sim = Simulation::new(config);
        sim.add_node(Box::new(Pong::new(0, false)));
        // A node that sends one message to p0 every 4 ms, driven by a timer.
        struct Ticker {
            id: ProcessId,
            sent: u32,
        }
        impl Node for Ticker {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _now: Duration, event: Event<u32>) -> Vec<Action<u32>> {
                match event {
                    Event::Init | Event::Timer { .. } => {
                        if self.sent >= 8 {
                            return Vec::new();
                        }
                        self.sent += 1;
                        vec![
                            Action::send(ProcessId(0), self.sent),
                            Action::SetTimer {
                                id: TimerId(1),
                                delay: Duration::from_millis(4),
                            },
                        ]
                    }
                    _ => Vec::new(),
                }
            }
        }
        sim.add_node(Box::new(Ticker {
            id: ProcessId(1),
            sent: 0,
        }));
        sim.run_until_quiescent(Duration::from_secs(1));
        // Sends at t = 0, 4, 8 pass; 12, 16 are inside the partition window;
        // 20, 24, 28 pass after the heal.
        assert_eq!(sim.stats().nemesis_dropped, 2);
        assert_eq!(sim.stats().messages_received, 6);
    }

    #[test]
    fn quiet_nemesis_leaves_the_rng_stream_untouched() {
        // A run with a default (quiet) nemesis must replay byte-for-byte like
        // any other seeded run: same stats, same final time.
        let run = || {
            let mut sim = Simulation::new(SimConfig {
                latency: LatencyModel::uniform(Duration::from_millis(1), Duration::from_millis(20)),
                seed: 7,
                ..SimConfig::default()
            });
            sim.add_node(Box::new(Pong::new(0, true)));
            sim.add_node(Box::new(Pong::new(1, true)));
            sim.send_external(Duration::ZERO, ProcessId(1), ProcessId(0), 0);
            sim.run_until_quiescent(Duration::from_secs(60));
            (sim.stats(), sim.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gst_extra_delay_applies_before_gst_only() {
        // Before GST messages take up to 1 ms + 100 ms extra; after GST they
        // take exactly 1 ms.
        struct Echo {
            id: ProcessId,
        }
        impl Node for Echo {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, _n: Duration, _e: Event<u32>) -> Vec<Action<u32>> {
                Vec::new()
            }
        }
        struct SendAt {
            id: ProcessId,
        }
        impl Node for SendAt {
            type Msg = u32;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_event(&mut self, now: Duration, e: Event<u32>) -> Vec<Action<u32>> {
                match e {
                    Event::Init => vec![Action::SetTimer {
                        id: TimerId(1),
                        delay: Duration::from_millis(500),
                    }],
                    Event::Timer { .. } if now >= Duration::from_millis(500) => {
                        vec![Action::send(ProcessId(1), 1)]
                    }
                    _ => Vec::new(),
                }
            }
        }
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::constant(Duration::from_millis(1)),
            gst: Some(Duration::from_millis(100)),
            pre_gst_extra_delay: Duration::from_millis(100),
            seed: 3,
            ..SimConfig::default()
        });
        sim.add_node(Box::new(SendAt { id: ProcessId(0) }));
        sim.add_node(Box::new(Echo { id: ProcessId(1) }));
        // Also send one message before GST.
        sim.send_external(Duration::ZERO, ProcessId(1), ProcessId(0), 9);
        sim.run_until_quiescent(Duration::from_secs(2));
        // The message sent at 500 ms (after GST) arrives exactly 1 ms later,
        // so the simulation's final time is 501 ms.
        assert_eq!(sim.now(), Duration::from_millis(501));
    }
}
