//! Network latency models.
//!
//! A latency model maps an ordered pair of *sites* to a one-way message delay.
//! Three models cover the paper's evaluation environments:
//!
//! * [`LatencyModel::Constant`] — a fixed one-way delay δ; used for the
//!   analytical latency experiments (delivery latency expressed in multiples
//!   of δ, §V) and as a first approximation of the LAN.
//! * [`LatencyModel::Uniform`] — a delay drawn uniformly from `[min, max]`;
//!   used to add realistic jitter.
//! * [`LatencyModel::SiteMatrix`] — a per-site-pair one-way delay matrix with
//!   optional relative jitter; used for the WAN experiments (§VI: Oregon /
//!   N. Virginia / England with round-trip times 60, 75 and 130 ms).

use std::time::Duration;

use rand::Rng;
use serde::{Deserialize, Serialize};
use wbam_types::SiteId;

/// A model of one-way message delays between sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly `delay` to arrive, irrespective of sites.
    Constant {
        /// The one-way delay δ.
        delay: Duration,
    },
    /// Delays are drawn uniformly at random from `[min, max]`.
    Uniform {
        /// Minimum one-way delay.
        min: Duration,
        /// Maximum one-way delay.
        max: Duration,
    },
    /// Per-site-pair one-way delays with multiplicative jitter.
    ///
    /// `matrix[i][j]` is the base one-way delay from site `i` to site `j`.
    /// A delay is perturbed by a factor drawn uniformly from
    /// `[1, 1 + jitter]`.
    SiteMatrix {
        /// Base one-way delays between sites.
        matrix: Vec<Vec<Duration>>,
        /// Relative jitter (0.0 disables jitter).
        jitter: f64,
    },
}

impl LatencyModel {
    /// A constant one-way delay.
    pub fn constant(delay: Duration) -> Self {
        LatencyModel::Constant { delay }
    }

    /// A uniformly distributed one-way delay in `[min, max]`.
    pub fn uniform(min: Duration, max: Duration) -> Self {
        assert!(min <= max, "uniform latency requires min <= max");
        LatencyModel::Uniform { min, max }
    }

    /// The LAN profile used for the Figure 7 experiments: 0.05 ms one-way
    /// delay (0.1 ms round-trip, as reported for the CloudLab testbed) with
    /// ±20 % jitter.
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            min: Duration::from_micros(40),
            max: Duration::from_micros(60),
        }
    }

    /// The WAN profile used for the Figure 8 experiments: three sites with
    /// round-trip times 60 ms (0↔1), 75 ms (1↔2) and 130 ms (0↔2), i.e.
    /// one-way delays of 30, 37.5 and 65 ms, intra-site delay 0.25 ms, and 2 %
    /// jitter. Site 0 is Oregon, site 1 North Virginia, site 2 England.
    pub fn wan_three_sites() -> Self {
        let ms = Duration::from_micros;
        let intra = ms(250);
        LatencyModel::SiteMatrix {
            matrix: vec![
                vec![intra, ms(30_000), ms(65_000)],
                vec![ms(30_000), intra, ms(37_500)],
                vec![ms(65_000), ms(37_500), intra],
            ],
            jitter: 0.02,
        }
    }

    /// Samples a one-way delay for a message sent from `from` to `to`.
    ///
    /// The model is consulted with the *sites* of the endpoints; process
    /// placement is the responsibility of the cluster configuration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, from: SiteId, to: SiteId) -> Duration {
        match self {
            LatencyModel::Constant { delay } => *delay,
            LatencyModel::Uniform { min, max } => {
                if min == max {
                    *min
                } else {
                    let lo = min.as_nanos() as u64;
                    let hi = max.as_nanos() as u64;
                    Duration::from_nanos(rng.gen_range(lo..=hi))
                }
            }
            LatencyModel::SiteMatrix { matrix, jitter } => {
                let base = matrix
                    .get(from.0 as usize)
                    .and_then(|row| row.get(to.0 as usize))
                    .copied()
                    .unwrap_or_else(|| {
                        // Unknown sites fall back to the largest configured delay,
                        // which is conservative.
                        matrix
                            .iter()
                            .flat_map(|r| r.iter())
                            .copied()
                            .max()
                            .unwrap_or(Duration::ZERO)
                    });
                if *jitter <= 0.0 {
                    base
                } else {
                    let factor = 1.0 + rng.gen_range(0.0..=*jitter);
                    base.mul_f64(factor)
                }
            }
        }
    }

    /// An upper bound on the delay the model can produce (the paper's δ after
    /// GST). Used by protocols to size retry and election timeouts.
    pub fn upper_bound(&self) -> Duration {
        match self {
            LatencyModel::Constant { delay } => *delay,
            LatencyModel::Uniform { max, .. } => *max,
            LatencyModel::SiteMatrix { matrix, jitter } => {
                let base = matrix
                    .iter()
                    .flat_map(|r| r.iter())
                    .copied()
                    .max()
                    .unwrap_or(Duration::ZERO);
                base.mul_f64(1.0 + jitter.max(0.0))
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::constant(Duration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_model_is_constant() {
        let m = LatencyModel::constant(Duration::from_millis(7));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(
                m.sample(&mut rng, SiteId(0), SiteId(1)),
                Duration::from_millis(7)
            );
        }
        assert_eq!(m.upper_bound(), Duration::from_millis(7));
    }

    #[test]
    fn uniform_model_respects_bounds() {
        let lo = Duration::from_micros(100);
        let hi = Duration::from_micros(200);
        let m = LatencyModel::uniform(lo, hi);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let d = m.sample(&mut rng, SiteId(0), SiteId(0));
            assert!(d >= lo && d <= hi, "delay {d:?} out of bounds");
        }
        assert_eq!(m.upper_bound(), hi);
    }

    #[test]
    fn uniform_degenerate_range() {
        let d = Duration::from_micros(5);
        let m = LatencyModel::uniform(d, d);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(m.sample(&mut rng, SiteId(0), SiteId(0)), d);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_rejects_inverted_range() {
        let _ = LatencyModel::uniform(Duration::from_millis(2), Duration::from_millis(1));
    }

    #[test]
    fn wan_matrix_matches_paper_rtts() {
        let m = LatencyModel::wan_three_sites();
        let mut rng = StdRng::seed_from_u64(4);
        // One-way Oregon <-> N. Virginia is ~30 ms (60 ms RTT).
        let d01 = m.sample(&mut rng, SiteId(0), SiteId(1));
        assert!(d01 >= Duration::from_millis(30) && d01 <= Duration::from_millis(31));
        // One-way Oregon <-> England is ~65 ms (130 ms RTT).
        let d02 = m.sample(&mut rng, SiteId(0), SiteId(2));
        assert!(d02 >= Duration::from_millis(65) && d02 <= Duration::from_millis(67));
        // Intra-site delay is sub-millisecond.
        let d00 = m.sample(&mut rng, SiteId(0), SiteId(0));
        assert!(d00 < Duration::from_millis(1));
    }

    #[test]
    fn site_matrix_unknown_site_falls_back_to_max() {
        let m = LatencyModel::SiteMatrix {
            matrix: vec![vec![Duration::from_millis(1), Duration::from_millis(9)]],
            jitter: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            m.sample(&mut rng, SiteId(7), SiteId(8)),
            Duration::from_millis(9)
        );
    }

    #[test]
    fn lan_profile_is_sub_millisecond() {
        let m = LatencyModel::lan();
        assert!(m.upper_bound() < Duration::from_millis(1));
    }

    #[test]
    fn upper_bound_of_matrix_includes_jitter() {
        let m = LatencyModel::SiteMatrix {
            matrix: vec![vec![Duration::from_millis(100)]],
            jitter: 0.1,
        };
        assert_eq!(m.upper_bound(), Duration::from_millis(110));
    }

    #[test]
    fn default_model_is_one_millisecond_constant() {
        assert_eq!(
            LatencyModel::default(),
            LatencyModel::constant(Duration::from_millis(1))
        );
    }
}
