//! Deterministic discrete-event network simulator for WBAM protocols.
//!
//! The simulator plays the role of the paper's experimental testbeds
//! (CloudLab LAN and a three-region Google Cloud WAN, §VI): it runs any set of
//! sans-IO [`Node`](wbam_types::Node)s over reliable FIFO channels with a
//! configurable latency model, crash injection, an optional global
//! stabilisation time (GST) before which message delays are inflated, and a
//! simple CPU model (a per-process service time per handled message) that
//! produces realistic throughput saturation under load.
//!
//! The simulation is fully deterministic given a seed, which makes protocol
//! runs reproducible and property-testable.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use wbam_simnet::{LatencyModel, SimConfig, Simulation};
//! use wbam_types::{Action, Event, Node, ProcessId};
//!
//! /// A node that forwards every received number, incremented, to itself.
//! struct Relay(ProcessId);
//! impl Node for Relay {
//!     type Msg = u64;
//!     fn id(&self) -> ProcessId { self.0 }
//!     fn on_event(&mut self, _now: Duration, e: Event<u64>) -> Vec<Action<u64>> {
//!         match e {
//!             Event::Message { msg, .. } if msg < 3 => vec![Action::send(self.0, msg + 1)],
//!             _ => Vec::new(),
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig {
//!     latency: LatencyModel::constant(Duration::from_millis(10)),
//!     ..SimConfig::default()
//! });
//! sim.add_node(Box::new(Relay(ProcessId(0))));
//! sim.send_external(Duration::ZERO, ProcessId(0), ProcessId(0), 0u64);
//! sim.run_until_quiescent(Duration::from_secs(1));
//! // One external injection plus the three relayed messages.
//! assert_eq!(sim.stats().messages_sent, 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod latency;
pub mod metrics;
pub mod sim;

pub use latency::LatencyModel;
pub use metrics::{DeliveryRecord, LatencyStats, MetricsView, ThroughputStats};
pub use sim::{NetStats, SimConfig, Simulation, StepOutcome, TraceEntry};
