//! End-to-end deployment smoke test: a real cluster of separate `wbamd` OS
//! processes over loopback TCP.
//!
//! A 2-group × 3-replica white-box cluster is launched as six replica
//! processes plus closed-loop client invocations. The test multicasts across
//! both groups, SIGKILLs one replica mid-run, keeps multicasting on the
//! surviving quorum, restarts the victim with `--restart` (a fresh process on
//! the same address, like a redeployment), and asserts that every replica —
//! including the rejoined one — delivered every message in the identical
//! order. The scenario runs once per wire codec (binary and JSON), so both
//! framing paths stay deployable. This is the CI `net-smoke` job and the
//! paper-gap closer for "simulated, not deployed".

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use wbam_harness::{ChildGuard, ClientSummary, DeliveryLine, DeploySpec, Protocol};
use wbam_types::wire::{from_json, WireCodec};
use wbam_types::MsgId;

/// The running cluster: every replica child is wrapped in a [`ChildGuard`],
/// so a failing assertion cannot leak orphan processes into the test runner.
struct Cluster {
    dir: PathBuf,
    spec_path: PathBuf,
    replicas: BTreeMap<u32, ChildGuard>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.replicas.clear(); // guards kill + reap
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn wbamd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wbamd"))
}

fn deliveries_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.jsonl"))
}

fn spawn_replica(cluster: &mut Cluster, id: u32, restart: bool, log_name: &str) {
    let mut cmd = wbamd();
    cmd.arg("--spec")
        .arg(&cluster.spec_path)
        .arg("--id")
        .arg(id.to_string())
        .arg("--deliveries")
        .arg(deliveries_path(&cluster.dir, log_name))
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if restart {
        cmd.arg("--restart");
    }
    let child = cmd.spawn().expect("spawn wbamd replica");
    cluster.replicas.insert(id, ChildGuard(child));
}

fn run_client(cluster: &Cluster, id: u32, count: u64, first_seq: u64) -> ClientSummary {
    let summary_path = cluster.dir.join(format!("summary-{first_seq}.json"));
    let status = wbamd()
        .arg("--spec")
        .arg(&cluster.spec_path)
        .arg("--id")
        .arg(id.to_string())
        .arg("--multicast")
        .arg(count.to_string())
        .arg("--outstanding")
        .arg("4")
        .arg("--dest")
        .arg("0,1")
        .arg("--first-seq")
        .arg(first_seq.to_string())
        .arg("--summary")
        .arg(&summary_path)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .expect("run wbamd client");
    assert!(status.success(), "client exited with {status}");
    let json = std::fs::read_to_string(&summary_path).expect("client summary");
    from_json(&json).expect("parse client summary")
}

fn read_delivery_order(path: &Path) -> Vec<MsgId> {
    let Ok(content) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    content
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            from_json::<DeliveryLine>(l)
                .expect("parse delivery line")
                .msg_id()
        })
        .collect()
}

fn wait_for_lines(path: &Path, count: usize, timeout: Duration) -> Vec<MsgId> {
    let deadline = Instant::now() + timeout;
    loop {
        let order = read_delivery_order(path);
        if order.len() >= count || Instant::now() >= deadline {
            return order;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn kill_and_restart_scenario(codec: WireCodec) {
    let dir = std::env::temp_dir().join(format!(
        "wbam-net-smoke-{}-{}",
        codec.name(),
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut spec = DeploySpec::loopback_free_ports(Protocol::WhiteBox, 2, 3, 1)
        .expect("reserve loopback ports");
    spec.wire = Some(codec.name().to_string());
    // Generous failure-detector timing: CI runners schedule seven processes'
    // worth of threads, and a spurious election would only slow the test.
    spec.heartbeat_ms = 100;
    spec.election_timeout_ms = 1500;
    let spec_path = dir.join("cluster.json");
    std::fs::write(&spec_path, spec.to_json().expect("serialise spec")).expect("write spec");

    let mut cluster = Cluster {
        dir: dir.clone(),
        spec_path,
        replicas: BTreeMap::new(),
    };
    for id in 0..6u32 {
        spawn_replica(&mut cluster, id, false, &format!("p{id}"));
    }

    // Phase 1: 20 cross-group multicasts against the full cluster. With
    // every peer up, the client's transport must not drop a single frame at
    // the output-buffer cap — a non-zero count here means frames are being
    // lost (and recovered by retry timers) in a fault-free run.
    let s1 = run_client(&cluster, 6, 20, 0);
    assert_eq!(s1.completed, 20);
    assert_eq!(s1.dropped_frames, 0, "fault-free phase dropped frames");

    // The client completing does not mean every *follower* has delivered:
    // completions come from the destination leaders, and the trailing
    // COMMITs race the kill below. Wait for the victim to log all of phase 1
    // first — the final assertion relies on its pre-kill log being a
    // 20-message prefix.
    let pre = wait_for_lines(&deliveries_path(&dir, "p1"), 20, Duration::from_secs(60));
    assert_eq!(pre.len(), 20, "victim logged {} of phase 1", pre.len());

    // SIGKILL a follower of group 0 (dropping its guard kills and reaps the
    // process). The remaining 2-of-3 quorum (and all of group 1) must keep
    // delivering.
    drop(cluster.replicas.remove(&1).expect("victim child"));

    // Phase 2: 10 more multicasts without the victim. One dead *replica*
    // peer cannot make the client drop either: 10 small messages come
    // nowhere near filling an 8 MiB per-peer buffer.
    let s2 = run_client(&cluster, 6, 10, 20);
    assert_eq!(s2.completed, 10);
    assert_eq!(s2.dropped_frames, 0, "client dropped frames in phase 2");

    // Redeploy the victim: a fresh OS process on the same address, with
    // --restart so it rejoins through the protocol's recovery path. Having
    // lost its delivery state with the kill, it re-delivers the complete
    // history in global-timestamp order.
    spawn_replica(&mut cluster, 1, true, "p1-restarted");

    // Phase 3: 5 more multicasts with the rejoined replica back in.
    let s3 = run_client(&cluster, 6, 5, 30);
    assert_eq!(s3.completed, 5);
    assert_eq!(s3.dropped_frames, 0, "client dropped frames in phase 3");

    // Every replica of both groups delivers all 35 messages...
    let reference = wait_for_lines(&deliveries_path(&dir, "p0"), 35, Duration::from_secs(60));
    assert_eq!(reference.len(), 35, "p0 delivered {}", reference.len());
    for name in ["p2", "p3", "p4", "p5"] {
        let order = wait_for_lines(&deliveries_path(&dir, name), 35, Duration::from_secs(60));
        assert_eq!(order, reference, "replica {name} order differs");
    }
    // ...and so does the restarted process, in the identical order.
    let rejoined = wait_for_lines(
        &deliveries_path(&dir, "p1-restarted"),
        35,
        Duration::from_secs(60),
    );
    assert_eq!(rejoined, reference, "rejoined replica order differs");

    // The victim's pre-kill log is a prefix of the reference order.
    let pre_kill = read_delivery_order(&deliveries_path(&dir, "p1"));
    assert!(
        pre_kill.len() >= 20,
        "victim delivered {} before the kill",
        pre_kill.len()
    );
    assert_eq!(pre_kill[..], reference[..pre_kill.len()]);
}

#[test]
fn tcp_process_cluster_survives_kill_and_restart() {
    kill_and_restart_scenario(WireCodec::Binary);
}

#[test]
fn tcp_process_cluster_survives_kill_and_restart_json_wire() {
    kill_and_restart_scenario(WireCodec::Json);
}
