//! Deployed lifecycle regressions for `wbamd`: graceful stop and startup
//! robustness.
//!
//! A chaos orchestrator needs to tell a *clean* stop from a crash: `SIGTERM`
//! (and stdin-EOF with `--stdin-stop`) must drain the delivery log, write a
//! `graceful stop` stats line and exit 0, while a replica whose listener
//! bind races an ephemeral-port squatter must retry instead of dying with an
//! empty log (both were found by the seeded net-chaos sweep).

#![cfg(unix)]

use std::io::Read as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use wbam_harness::{ChildGuard, ClientSummary, DeliveryLine, DeploySpec, Protocol};
use wbam_types::wire::from_json;

fn wbamd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wbamd"))
}

/// A 1-group × 1-replica spec (plus one client id) in a fresh temp dir.
struct Rig {
    dir: PathBuf,
    spec: DeploySpec,
    spec_path: PathBuf,
}

impl Rig {
    fn new(tag: &str) -> Rig {
        let dir = std::env::temp_dir().join(format!("wbam-stop-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let spec =
            DeploySpec::loopback_free_ports(Protocol::WhiteBox, 1, 1, 1).expect("reserve ports");
        let spec_path = dir.join("cluster.json");
        std::fs::write(&spec_path, spec.to_json().expect("serialise spec")).expect("write spec");
        Rig {
            dir,
            spec,
            spec_path,
        }
    }

    fn spawn_replica(&self, extra: &[&str]) -> ChildGuard {
        let mut cmd = wbamd();
        cmd.arg("--spec")
            .arg(&self.spec_path)
            .arg("--id")
            .arg("0")
            .arg("--deliveries")
            .arg(self.dir.join("p0.jsonl"))
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        ChildGuard(cmd.spawn().expect("spawn wbamd replica"))
    }

    fn run_client(&self, count: u64) -> ClientSummary {
        let summary_path = self.dir.join("summary.json");
        let status = wbamd()
            .arg("--spec")
            .arg(&self.spec_path)
            .arg("--id")
            .arg("1")
            .arg("--multicast")
            .arg(count.to_string())
            .arg("--dest")
            .arg("0")
            .arg("--summary")
            .arg(&summary_path)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .status()
            .expect("run wbamd client");
        assert!(status.success(), "client exited with {status}");
        let json = std::fs::read_to_string(&summary_path).expect("client summary");
        from_json(&json).expect("parse client summary")
    }

    fn log_lines(&self) -> Vec<DeliveryLine> {
        std::fs::read_to_string(self.dir.join("p0.jsonl"))
            .unwrap_or_default()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| from_json(l).expect("parse delivery line"))
            .collect()
    }

    fn wait_for_lines(&self, count: usize, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        while self.log_lines().len() < count && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Waits for the child to exit on its own (no kill) and returns its status
/// plus everything it wrote to stderr.
fn wait_exit(child: &mut Child, timeout: Duration) -> (std::process::ExitStatus, String) {
    let deadline = Instant::now() + timeout;
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            None => panic!("wbamd still running {timeout:?} after the stop request"),
        }
    };
    let mut stderr = String::new();
    if let Some(mut pipe) = child.stderr.take() {
        let _ = pipe.read_to_string(&mut stderr);
    }
    (status, stderr)
}

/// Regression: SIGTERM must stop a replica *gracefully* — drain the delivery
/// log, write the `graceful stop` stats line and exit 0 — so orchestrators
/// can tell a clean stop from a SIGKILL.
#[test]
fn sigterm_drains_the_delivery_log_and_exits_zero() {
    let rig = Rig::new("sigterm");
    let mut guard = rig.spawn_replica(&[]);

    let summary = rig.run_client(5);
    assert_eq!(summary.completed, 5);
    rig.wait_for_lines(5, Duration::from_secs(30));

    netpoll::send_signal(guard.0.id(), netpoll::Signal::Term).expect("send SIGTERM");
    let (status, stderr) = wait_exit(&mut guard.0, Duration::from_secs(10));
    assert!(status.success(), "SIGTERM stop exited with {status}");
    assert!(
        stderr.contains("graceful stop (SIGTERM)"),
        "missing graceful-stop line in stderr: {stderr:?}"
    );
    assert!(
        stderr.contains("delivered=5"),
        "stats line does not report the drained count: {stderr:?}"
    );
    assert_eq!(rig.log_lines().len(), 5, "delivery log not fully drained");
}

/// Regression: with `--stdin-stop`, stdin reaching EOF stops the replica as
/// gracefully as SIGTERM does (the no-signals orchestration path).
#[test]
fn stdin_eof_stops_a_replica_gracefully() {
    let rig = Rig::new("stdin-eof");
    let mut cmd = wbamd();
    cmd.arg("--spec")
        .arg(&rig.spec_path)
        .arg("--id")
        .arg("0")
        .arg("--deliveries")
        .arg(rig.dir.join("p0.jsonl"))
        .arg("--stdin-stop")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut guard = ChildGuard(cmd.spawn().expect("spawn wbamd replica"));

    let summary = rig.run_client(3);
    assert_eq!(summary.completed, 3);
    rig.wait_for_lines(3, Duration::from_secs(30));

    drop(guard.0.stdin.take()); // EOF
    let (status, stderr) = wait_exit(&mut guard.0, Duration::from_secs(10));
    assert!(status.success(), "stdin-EOF stop exited with {status}");
    assert!(
        stderr.contains("graceful stop (stdin EOF)"),
        "missing graceful-stop line in stderr: {stderr:?}"
    );
    assert_eq!(rig.log_lines().len(), 3, "delivery log not fully drained");
}

/// Regression for the startup bind race the net-chaos sweep caught (seed
/// `n1:WbCast:405da438a39e8064`, json wire): a connection elsewhere in the
/// deployment can squat a replica's reserved listen port as its *ephemeral
/// source port*, and `wbamd` used to die on the resulting `EADDRINUSE` with
/// an empty delivery log. Startup must retry the bind until the squatter
/// clears, then serve normally.
#[test]
fn startup_bind_retry_survives_a_squatted_port() {
    let rig = Rig::new("bind-retry");
    // Squat the replica's listen address before the daemon starts.
    let squatter = TcpListener::bind(listen_addr(&rig.spec)).expect("squat listen port");

    let mut guard = rig.spawn_replica(&[]);
    std::thread::sleep(Duration::from_millis(500));
    assert!(
        guard.0.try_wait().expect("try_wait").is_none(),
        "wbamd gave up on the squatted port instead of retrying the bind"
    );
    drop(squatter);

    // With the port free the daemon finishes starting and serves traffic.
    let summary = rig.run_client(3);
    assert_eq!(summary.completed, 3);
    rig.wait_for_lines(3, Duration::from_secs(30));

    netpoll::send_signal(guard.0.id(), netpoll::Signal::Term).expect("send SIGTERM");
    let (status, stderr) = wait_exit(&mut guard.0, Duration::from_secs(10));
    assert!(status.success(), "post-retry stop exited with {status}");
    assert!(
        stderr.contains("listener bind failed"),
        "the bind-retry path never engaged: {stderr:?}"
    );
    assert!(
        stderr.contains("graceful stop (SIGTERM)"),
        "missing graceful-stop line in stderr: {stderr:?}"
    );
    assert_eq!(rig.log_lines().len(), 3, "delivery log not fully drained");
}

fn listen_addr(spec: &DeploySpec) -> &str {
    spec.addrs[0].as_str()
}
