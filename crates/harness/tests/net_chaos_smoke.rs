//! Bounded seeded chaos smoke: one full `run_net_token` pass — a live
//! 2-group × 3-replica `wbamd` cluster behind the nemesis proxy, with link
//! drops, a partition/heal, a SIGKILL/redeploy and a small workload — must
//! come out clean: Figure 6 agreement and the linearizability oracle over
//! the drained delivery logs, graceful SIGTERM stop of every replica, and a
//! plan digest that replays byte-for-byte. The CI `net-chaos` job runs wider
//! sweeps; this keeps the driver itself inside tier-1.

#![cfg(unix)]

use std::path::PathBuf;

use wbam_harness::chaos::generate_net_plan;
use wbam_harness::{run_net_token, NetChaosConfig, NetSeedToken};

#[test]
fn seeded_chaos_run_passes_all_checks_and_replays_its_plan() {
    let token = NetSeedToken::parse("WBAM_NET_SEED=n1:WbCast:000000000000002a").expect("token");
    let config = NetChaosConfig {
        messages: Some(10),
        wbamd: Some(PathBuf::from(env!("CARGO_BIN_EXE_wbamd"))),
        ..NetChaosConfig::default()
    };
    let report = run_net_token(&token, &config).expect("cluster came up");
    assert_eq!(
        report.violation,
        None,
        "chaos run failed (logs kept in {}): {:?}",
        report.log_dir.display(),
        report.violation
    );
    assert_eq!(report.completed, report.ops, "not every op completed");
    assert!(report.delivery_lines > 0, "no deliveries drained");
    assert!(
        report.proxy.dropped > 0,
        "the plan's link drops never fired"
    );

    // Replayability: the derived plan is a pure function of the token.
    assert_eq!(
        generate_net_plan(&token, config.messages).digest(),
        report.plan_digest,
        "plan derivation is not deterministic"
    );
}
