//! The deployed chaos driver: seeded fault plans against a *live* `wbamd`
//! cluster.
//!
//! This is the deployment-side counterpart of the [`explorer`](crate::explorer):
//! one 64-bit seed derives a complete experiment — a [`NemesisPlan`] of link
//! drops/duplicates/delays and a partition window, process-level faults
//! (SIGKILL with `--restart` redeploy, SIGSTOP/SIGCONT pauses) and a
//! key-value workload — which [`run_net_token`] then executes against six
//! real `wbamd` OS processes whose every TCP link runs through a
//! [`NemesisProxy`]. When the dust settles the driver
//! stops the cluster gracefully (SIGTERM — exercising the daemons' drain
//! path), parses the drained delivery logs, and checks:
//!
//! * global-timestamp **agreement** per message and the Figure 6 **total
//!   order** over every observer's delivery log
//!   (`wbam_core::invariants::check_total_order`),
//! * the key-value store **linearizability oracle**
//!   ([`KvHistory::check_excusing`]) over replayed per-replica applies and
//!   the client's invocations/completions, with the PR 3/4 excusals: crash
//!   victims are `faulty`, drop-bearing plans are `lossy`, and a restarted
//!   incarnation gets a state-transfer watermark excusal at its first logged
//!   timestamp, and
//! * **termination** — the white-box protocol's retry machinery must
//!   complete every submitted operation despite the chaos.
//!
//! # Replayability
//!
//! The *plan* is replayable byte for byte: the same token always derives the
//! same nemesis knobs, partition window, crash/pause schedule and workload
//! ([`NetChaosPlan::digest`] is equal), and the proxy's per-link fate
//! streams are the same function of the seed. What a live cluster *does*
//! under that plan — thread scheduling, packet timing, which retry wins — is
//! real-world nondeterminism; that is the point of running deployed. A
//! failing seed therefore reproduces the same attack, not necessarily the
//! same interleaving, which is the standard Jepsen trade-off.
//!
//! # Incarnations
//!
//! A SIGKILLed replica is redeployed with `--restart` and a *fresh* delivery
//! log (`pN-restarted.jsonl`). For the checkers the two incarnations are
//! separate observers (the restarted one gets a synthetic observer id
//! [`RESTART_OBSERVER_BASE`]` + N`): the original's log is an honest prefix
//! that simply stops, and the restarted one's log begins wherever checkpoint
//! state transfer put it — which is exactly what the watermark excusal
//! expresses.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use wbam_core::invariants::check_total_order;
use wbam_core::WhiteBoxMsg;
use wbam_kvstore::{KvCommand, KvHistory, KvStore, Partitioner};
use wbam_runtime::{BoxedNode, TcpNode};
use wbam_types::wire::{from_json, WireCodec};
use wbam_types::{
    AppMessage, CrashSpec, GroupId, LinkFaults, MsgId, NemesisPlan, PartitionSpec, Payload,
    ProcessId, Timestamp, WbamError,
};

use crate::cluster::Protocol;
use crate::deploy::{ChildGuard, DeliveryLine, DeploySpec};
use crate::explorer::splitmix64;
use crate::proxy::{NemesisProxy, ProxyStats};

/// Groups in the chaos topology.
const NUM_GROUPS: usize = 2;
/// Replicas per group (`2f + 1` with `f = 1`).
const GROUP_SIZE: usize = 3;
/// Replica process count; the driver's in-process client is the next id.
const REPLICAS: u32 = (NUM_GROUPS * GROUP_SIZE) as u32;
/// Keys the workload touches (small space maximises conflicts).
const KEY_SPACE: u32 = 6;
/// End of the probabilistic-fault window; scheduled faults all land inside.
const CHAOS_END: Duration = Duration::from_secs(4);
/// Gap between successive workload submissions.
const SUBMIT_PACE: Duration = Duration::from_millis(40);
/// Wall-clock ceiling for one run; hitting it is a termination violation.
const RUN_DEADLINE: Duration = Duration::from_secs(60);
/// Ceiling on the post-workload wait for the delivery logs to quiesce.
const DRAIN_DEADLINE: Duration = Duration::from_secs(20);
/// Grace for a SIGTERMed `wbamd` to drain and exit 0.
const STOP_DEADLINE: Duration = Duration::from_secs(5);
/// Synthetic observer-id offset for restarted incarnations in the checkers.
pub const RESTART_OBSERVER_BASE: u32 = 1000;

/// Salt for the plan/workload RNG, keeping it independent of the proxy's
/// per-link streams (which hash the raw seed).
const NET_PLAN_SALT: u64 = 0x0DD5_EED5_0FCA_A051;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// A replayable deployed-chaos identifier, printed as
/// `WBAM_NET_SEED=n1:<protocol>:<seed-hex>`. The `n` version namespace is
/// deliberately distinct from the simulator's `v` tokens: the derivations
/// share nothing, so neither corpus can be replayed under the wrong engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetSeedToken {
    /// The protocol under test (currently always the white-box protocol —
    /// the baselines assume reliable channels and simply stall under loss).
    pub protocol: Protocol,
    /// The seed every part of the plan and workload derives from.
    pub seed: u64,
}

impl fmt::Display for NetSeedToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WBAM_NET_SEED=n1:{}:{:016x}",
            self.protocol.label(),
            self.seed
        )
    }
}

impl NetSeedToken {
    /// Parses a token previously printed by [`fmt::Display`] (the
    /// `WBAM_NET_SEED=` prefix is optional on input).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for malformed tokens.
    pub fn parse(s: &str) -> Result<NetSeedToken, String> {
        let body = s.trim().strip_prefix("WBAM_NET_SEED=").unwrap_or(s.trim());
        let parts: Vec<&str> = body.split(':').collect();
        let [version, label, seed_hex] = parts[..] else {
            return Err(format!("expected n1:<protocol>:<seed>, got `{body}`"));
        };
        if version != "n1" {
            return Err(format!("net token version `{version}` not supported (n1)"));
        }
        let protocol = match label {
            "WbCast" => Protocol::WhiteBox,
            other => {
                return Err(format!(
                    "protocol `{other}` is not net-chaos capable (WbCast only: the \
                     baselines assume reliable channels)"
                ))
            }
        };
        let seed =
            u64::from_str_radix(seed_hex, 16).map_err(|e| format!("bad seed `{seed_hex}`: {e}"))?;
        Ok(NetSeedToken { protocol, seed })
    }
}

/// The token of plan `index` in a sweep starting at `base_seed` — the same
/// golden-ratio splitmix derivation the simulator explorer uses.
pub fn net_schedule_token(base_seed: u64, index: usize) -> NetSeedToken {
    NetSeedToken {
        protocol: Protocol::WhiteBox,
        seed: splitmix64(base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    }
}

/// A scheduled SIGSTOP/SIGCONT pause of one replica process — the deployed
/// fault the simulator cannot express (a *frozen* process keeps its sockets
/// open, so peers see silence rather than resets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseSpec {
    /// When the process is stopped.
    pub at: Duration,
    /// The paused replica.
    pub process: ProcessId,
    /// When it is resumed.
    pub resume: Duration,
}

/// Everything one net-chaos run does, derived purely from a token: the wire
/// faults (executed by the proxy), the process faults, and the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaosPlan {
    /// Link faults, the partition window and the SIGKILL/redeploy schedule,
    /// in the same [`NemesisPlan`] type the simulator executes.
    pub nemesis: NemesisPlan,
    /// SIGSTOP/SIGCONT pauses (deployed-only; no simulator equivalent).
    pub pauses: Vec<PauseSpec>,
    /// The key-value commands the driver's client submits, paced 40 ms
    /// apart in index order.
    pub ops: Vec<KvCommand>,
}

impl NetChaosPlan {
    /// FNV-1a digest over every derived decision; equal digests mean the
    /// token derived byte-for-byte identical plans (the replayability
    /// contract — see the module docs for what live runs add on top).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut write = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        let link = self.nemesis.link;
        write(&u64::from(link.drop_per_mille).to_le_bytes());
        write(&u64::from(link.duplicate_per_mille).to_le_bytes());
        write(&u64::from(link.reorder_per_mille).to_le_bytes());
        write(&(link.reorder_extra.as_nanos() as u64).to_le_bytes());
        for p in &self.nemesis.partitions {
            write(&(p.start.as_nanos() as u64).to_le_bytes());
            write(&(p.heal.as_nanos() as u64).to_le_bytes());
            write(&[u8::from(p.symmetric)]);
            for side in [&p.side_a, &p.side_b] {
                for proc in side {
                    write(&proc.0.to_le_bytes());
                }
            }
        }
        for c in &self.nemesis.crashes {
            write(&(c.at.as_nanos() as u64).to_le_bytes());
            write(&c.process.0.to_le_bytes());
            let r = c.restart_at.map(|r| r.as_nanos() as u64 + 1).unwrap_or(0);
            write(&r.to_le_bytes());
        }
        for p in &self.pauses {
            write(&(p.at.as_nanos() as u64).to_le_bytes());
            write(&p.process.0.to_le_bytes());
            write(&(p.resume.as_nanos() as u64).to_le_bytes());
        }
        for op in &self.ops {
            let enc = serde_json::to_vec(op).expect("commands encode");
            write(&enc);
        }
        h
    }
}

/// Derives the complete chaos plan of a token. Pure: the same token (and
/// `messages` override) always produces the same plan. Every plan carries
/// the acceptance trifecta — link drops, one partition with heal, one
/// SIGKILL with `--restart` redeploy — plus optional duplicates, delays and
/// a SIGSTOP pause.
pub fn generate_net_plan(token: &NetSeedToken, messages: Option<usize>) -> NetChaosPlan {
    let mut rng = StdRng::seed_from_u64(token.seed ^ NET_PLAN_SALT);
    let mut nemesis = NemesisPlan {
        chaos_end: Some(CHAOS_END),
        ..NemesisPlan::quiet()
    };
    nemesis.link = LinkFaults {
        drop_per_mille: rng.gen_range(10..=80u16),
        duplicate_per_mille: if rng.gen_bool(0.6) {
            rng.gen_range(10..=60u16)
        } else {
            0
        },
        ..LinkFaults::default()
    };
    if rng.gen_bool(0.6) {
        nemesis.link.reorder_per_mille = rng.gen_range(20..=120u16);
        nemesis.link.reorder_extra = ms(rng.gen_range(5..=40));
    }

    // One partition isolating one replica from everyone (client included),
    // healed well inside the chaos window.
    let isolated = ProcessId(rng.gen_range(0..REPLICAS));
    let start = ms(rng.gen_range(500..=1200));
    let heal = start + ms(rng.gen_range(400..=1000));
    let side_b: Vec<ProcessId> = (0..=REPLICAS)
        .map(ProcessId)
        .filter(|p| *p != isolated)
        .collect();
    nemesis.partitions.push(PartitionSpec {
        start,
        heal,
        side_a: vec![isolated],
        side_b,
        symmetric: rng.gen_bool(0.7),
    });

    // One SIGKILL, always redeployed with --restart: permanent crashes bound
    // what the oracle can assert, and the restart path (state transfer into
    // a live chaotic cluster) is the interesting one.
    let victim = ProcessId(rng.gen_range(0..REPLICAS));
    let at = ms(rng.gen_range(700..=1800));
    nemesis.crashes.push(CrashSpec {
        at,
        process: victim,
        restart_at: Some(at + ms(rng.gen_range(600..=1500))),
    });

    // Sometimes freeze a replica with SIGSTOP/SIGCONT. The pause is kept
    // under the election timeout often enough to exercise both "nobody
    // noticed" and "group re-elected around a zombie that then wakes up".
    let mut pauses = Vec::new();
    if rng.gen_bool(0.5) {
        let frozen = ProcessId(rng.gen_range(0..REPLICAS));
        let at = ms(rng.gen_range(400..=2500));
        pauses.push(PauseSpec {
            at,
            process: frozen,
            resume: at + ms(rng.gen_range(300..=800)),
        });
    }

    // Workload: same command mix and key space as the simulator explorer.
    let count = {
        let derived = rng.gen_range(24..=40usize);
        messages.unwrap_or(derived) // the draw happens either way: the op
                                    // stream must not shift with the override
    };
    let key = |rng: &mut StdRng| format!("k{}", rng.gen_range(0..KEY_SPACE));
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let cmd = match rng.gen_range(0..100u32) {
            0..=29 => KvCommand::put(&key(&mut rng), rng.gen_range(0..1000i64)),
            30..=54 => KvCommand::add(&key(&mut rng), rng.gen_range(-50..50i64)),
            55..=74 => {
                let from = key(&mut rng);
                let mut to = key(&mut rng);
                while to == from {
                    to = key(&mut rng);
                }
                KvCommand::transfer(&from, &to, rng.gen_range(1..100i64))
            }
            _ => KvCommand::get(&key(&mut rng)),
        };
        ops.push(cmd);
    }

    NetChaosPlan {
        nemesis,
        pauses,
        ops,
    }
}

/// Knobs of one [`run_net_token`] invocation.
#[derive(Debug, Clone, Default)]
pub struct NetChaosConfig {
    /// Override the derived workload size (smaller for CI smokes). The same
    /// token + the same override is the replay unit.
    pub messages: Option<usize>,
    /// Wire codec for the whole cluster (`None` → the deployed default,
    /// binary).
    pub wire: Option<WireCodec>,
    /// Where to put the spec and delivery logs. `None` uses a fresh temp
    /// directory that is removed again when the run passes and kept (and
    /// named in the report) when it fails.
    pub log_dir: Option<PathBuf>,
    /// Path to the `wbamd` binary. `None` looks next to the current
    /// executable (and in its parent, covering test binaries under
    /// `target/*/deps/`), then at the `WBAMD_BIN` environment variable.
    pub wbamd: Option<PathBuf>,
}

/// The outcome of one deployed chaos run.
#[derive(Debug, Clone)]
pub struct NetChaosReport {
    /// The replay token.
    pub token: NetSeedToken,
    /// Digest of the derived plan+workload ([`NetChaosPlan::digest`]).
    pub plan_digest: u64,
    /// Operations submitted.
    pub ops: usize,
    /// Operations the client saw complete.
    pub completed: usize,
    /// Delivery-log lines drained across all incarnations.
    pub delivery_lines: usize,
    /// Reads the linearizability oracle actually checked (0 until the
    /// oracle runs).
    pub checked_reads: usize,
    /// What the proxy did to the wire.
    pub proxy: ProxyStats,
    /// The first violation found, if any (prefixed with its category:
    /// `invariant:`, `linearizability:`, `termination:`, `graceful-stop:`,
    /// `log:` or `run:`).
    pub violation: Option<String>,
    /// Where the spec and delivery logs live (kept on violation).
    pub log_dir: PathBuf,
}

/// Process-fault timeline entries, executed by the driver loop.
#[derive(Debug, Clone, Copy)]
enum NetEvent {
    Kill(u32),
    Restart(u32),
    Stop(u32),
    Cont(u32),
}

/// Signals the driver sends; a thin portability wrapper so non-Unix builds
/// degrade to SIGKILL-only semantics instead of failing to compile.
#[derive(Debug, Clone, Copy)]
enum Sig {
    Term,
    Stop,
    Cont,
}

/// Sends `sig` to `pid`; returns whether the signal was actually delivered
/// (always `false` off-Unix, where callers fall back to hard kills).
fn send(pid: u32, sig: Sig) -> bool {
    #[cfg(unix)]
    {
        let sig = match sig {
            Sig::Term => netpoll::Signal::Term,
            Sig::Stop => netpoll::Signal::Stop,
            Sig::Cont => netpoll::Signal::Cont,
        };
        netpoll::send_signal(pid, sig).is_ok()
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
        false
    }
}

fn build_events(plan: &NetChaosPlan) -> Vec<(Duration, NetEvent)> {
    let mut events = Vec::new();
    for c in &plan.nemesis.crashes {
        events.push((c.at, NetEvent::Kill(c.process.0)));
        if let Some(at) = c.restart_at {
            events.push((at, NetEvent::Restart(c.process.0)));
        }
    }
    for p in &plan.pauses {
        events.push((p.at, NetEvent::Stop(p.process.0)));
        events.push((p.resume, NetEvent::Cont(p.process.0)));
    }
    events.sort_by_key(|(at, _)| *at);
    events
}

fn resolve_wbamd(config: &NetChaosConfig) -> Result<PathBuf, WbamError> {
    if let Some(p) = &config.wbamd {
        return Ok(p.clone());
    }
    if let Ok(p) = std::env::var("WBAMD_BIN") {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe().map_err(WbamError::from)?;
    for dir in exe.ancestors().skip(1).take(3) {
        let candidate = dir.join("wbamd");
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(WbamError::NotReady {
        process: ProcessId(0),
        reason: "cannot locate the wbamd binary; build it with `cargo build --release \
                 -p wbam-harness --bin wbamd` or point WBAMD_BIN at it"
            .to_string(),
    })
}

fn log_name(id: u32, restarted: bool) -> String {
    if restarted {
        format!("p{id}-restarted.jsonl")
    } else {
        format!("p{id}.jsonl")
    }
}

fn spawn_replica(
    wbamd: &Path,
    spec_path: &Path,
    log_dir: &Path,
    id: u32,
    restarted: bool,
) -> Result<ChildGuard, WbamError> {
    let child = std::process::Command::new(wbamd)
        .arg("--spec")
        .arg(spec_path)
        .arg("--id")
        .arg(id.to_string())
        .arg("--deliveries")
        .arg(log_dir.join(log_name(id, restarted)))
        .args(restarted.then_some("--restart"))
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .spawn()
        .map_err(WbamError::from)?;
    Ok(ChildGuard(child))
}

/// Parses one delivery log. A SIGKILL can tear the final line mid-write, so
/// killed incarnations pass `tolerate_torn_tail`; anywhere else a malformed
/// line is a real bug in the daemon's log discipline.
fn parse_log(path: &Path, tolerate_torn_tail: bool) -> Result<Vec<DeliveryLine>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("log: {}: {e}", path.display())),
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match from_json::<DeliveryLine>(line) {
            Ok(parsed) => out.push(parsed),
            Err(e) if tolerate_torn_tail && i + 1 == lines.len() => {
                let _ = e; // torn tail of a killed process: at most one line
            }
            Err(e) => return Err(format!("log: {} line {}: {e}", path.display(), i + 1)),
        }
    }
    Ok(out)
}

fn count_log_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0)
}

fn group_of(id: u32) -> GroupId {
    GroupId(id / GROUP_SIZE as u32)
}

/// Runs the complete chaos schedule of a token against a live cluster. See
/// the module docs for the pipeline; this returns `Err` only for *setup*
/// failures (spawn, bind, I/O) — protocol misbehaviour lands in
/// [`NetChaosReport::violation`] so a sweep can keep going and report every
/// failing seed.
///
/// # Errors
///
/// Returns [`WbamError`] when the cluster cannot be brought up at all.
pub fn run_net_token(
    token: &NetSeedToken,
    config: &NetChaosConfig,
) -> Result<NetChaosReport, WbamError> {
    let plan = generate_net_plan(token, config.messages);
    let wire = config.wire.unwrap_or_default();
    let (log_dir, ephemeral) = match &config.log_dir {
        Some(d) => (d.clone(), false),
        None => {
            // One directory per *run*, not per seed: `wbamd` appends to its
            // delivery log, so two runs of the same seed (one per wire
            // codec, say) sharing a directory interleave their logs — a
            // sweep once mis-reported exactly that as a duplicate delivery.
            static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            (
                std::env::temp_dir().join(format!(
                    "wbam-net-chaos-{}-{:016x}-{}-r{run}",
                    std::process::id(),
                    token.seed,
                    wire.name()
                )),
                true,
            )
        }
    };
    if ephemeral {
        // A kept directory from a crashed earlier process could collide
        // after pid reuse; never append into stale logs.
        let _ = std::fs::remove_dir_all(&log_dir);
    }
    std::fs::create_dir_all(&log_dir).map_err(WbamError::from)?;
    let mut report = NetChaosReport {
        token: *token,
        plan_digest: plan.digest(),
        ops: plan.ops.len(),
        completed: 0,
        delivery_lines: 0,
        checked_reads: 0,
        proxy: ProxyStats {
            forwarded: 0,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            severed: 0,
        },
        violation: None,
        log_dir: log_dir.clone(),
    };

    // --- Bring the cluster up, every link proxied -----------------------
    let mut spec = DeploySpec::loopback_free_ports(Protocol::WhiteBox, NUM_GROUPS, GROUP_SIZE, 1)?;
    spec.wire = Some(wire.name().to_string());
    spec.heartbeat_ms = 100;
    spec.election_timeout_ms = 1500;
    let epoch = Instant::now();
    let proxy = NemesisProxy::start(&spec, &plan.nemesis, token.seed, epoch)?;
    let routed = proxy.routed_spec().clone();
    let spec_path = log_dir.join("cluster.json");
    std::fs::write(&spec_path, routed.to_json()?).map_err(WbamError::from)?;

    let wbamd = resolve_wbamd(config)?;
    let mut children: BTreeMap<u32, ChildGuard> = BTreeMap::new();
    for id in 0..REPLICAS {
        children.insert(id, spawn_replica(&wbamd, &spec_path, &log_dir, id, false)?);
    }
    let client_id = ProcessId(REPLICAS);
    let node: BoxedNode<WhiteBoxMsg> = Box::new(spec.whitebox_client(client_id)?);
    let client = TcpNode::spawn_with_codec(node, &routed.dial_map(client_id)?, false, wire)?;

    // --- Drive workload + process faults on one timeline ----------------
    let partitioner = Partitioner::new(NUM_GROUPS as u32);
    let mut history = KvHistory {
        partitions: NUM_GROUPS as u32,
        ..KvHistory::default()
    };
    let events = build_events(&plan);
    let mut next_event = 0usize;
    let mut restarted: BTreeSet<u32> = BTreeSet::new();
    let mut submitted = 0usize;
    let mut completed: BTreeSet<MsgId> = BTreeSet::new();
    let mut seen = 0u64;
    loop {
        let now = epoch.elapsed();
        while next_event < events.len() && events[next_event].0 <= now {
            match events[next_event].1 {
                NetEvent::Kill(id) => {
                    // ChildGuard::drop is kill(SIGKILL) + reap.
                    children.remove(&id);
                }
                NetEvent::Restart(id) => {
                    children.insert(id, spawn_replica(&wbamd, &spec_path, &log_dir, id, true)?);
                    restarted.insert(id);
                }
                NetEvent::Stop(id) => {
                    if let Some(child) = children.get(&id) {
                        send(child.0.id(), Sig::Stop);
                    }
                }
                NetEvent::Cont(id) => {
                    if let Some(child) = children.get(&id) {
                        send(child.0.id(), Sig::Cont);
                    }
                }
            }
            next_event += 1;
        }
        // Supervise: scheduled kills remove their child from the map first,
        // so any child observed exited here died *outside* the fault plan —
        // a real bug (a startup failure, a crash), reported as such instead
        // of surfacing later as a confusing graceful-stop failure.
        let mut died: Option<(u32, std::process::ExitStatus)> = None;
        for (id, child) in children.iter_mut() {
            if let Ok(Some(status)) = child.0.try_wait() {
                died = Some((*id, status));
                break;
            }
        }
        if let Some((id, status)) = died {
            children.remove(&id);
            report.violation = Some(format!("run: p{id} exited unexpectedly ({status}) mid-run"));
            break;
        }
        while submitted < plan.ops.len() && now >= SUBMIT_PACE * submitted as u32 {
            let cmd = &plan.ops[submitted];
            let id = MsgId::new(client_id, submitted as u64);
            let dest = partitioner.destination_of(cmd.keys())?;
            history.invoke(id, cmd.clone(), now);
            client.submit(AppMessage::new(
                id,
                dest,
                Payload::from(
                    serde_json::to_vec(cmd).map_err(|e| WbamError::Codec(e.to_string()))?,
                ),
            ))?;
            submitted += 1;
        }
        client.wait_for_total(seen + 1, Duration::from_millis(25))?;
        let at = epoch.elapsed();
        for d in client.drain_deliveries()? {
            seen += 1;
            if completed.insert(d.delivery.msg.id) {
                history.complete(d.delivery.msg.id, at);
            }
        }
        if submitted == plan.ops.len()
            && completed.len() == plan.ops.len()
            && next_event == events.len()
        {
            break;
        }
        if epoch.elapsed() > RUN_DEADLINE {
            report.violation = Some(format!(
                "termination: {} of {} operations never completed within {RUN_DEADLINE:?}",
                plan.ops.len() - completed.len(),
                plan.ops.len()
            ));
            break;
        }
    }
    report.completed = completed.len();

    // --- Let the replica logs quiesce, then stop the cluster gracefully --
    //
    // There is no exact line count to wait for: the protocol assumes
    // quasi-reliable channels, so under deliberate frame loss a follower
    // that misses a CHOSEN stays behind until a leader change or restart
    // state transfer repairs it — a gap, not a bug, and exactly what the
    // oracle's loss excusals are for. Client completions already proved
    // protocol-level termination; this wait just lets in-flight deliveries
    // land before the SIGTERM drain.
    if report.violation.is_none() {
        let drain_start = Instant::now();
        let mut last: BTreeMap<(u32, bool), usize> = BTreeMap::new();
        let mut stable_since = Instant::now();
        while drain_start.elapsed() < DRAIN_DEADLINE {
            let mut counts: BTreeMap<(u32, bool), usize> = BTreeMap::new();
            for id in 0..REPLICAS {
                counts.insert(
                    (id, false),
                    count_log_lines(&log_dir.join(log_name(id, false))),
                );
                if restarted.contains(&id) {
                    counts.insert(
                        (id, true),
                        count_log_lines(&log_dir.join(log_name(id, true))),
                    );
                }
            }
            if counts != last {
                last = counts;
                stable_since = Instant::now();
            } else if stable_since.elapsed() > Duration::from_millis(750) {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    // SIGTERM every live replica and require a clean drain + exit 0: the
    // graceful-stop path is part of every chaos run's contract.
    let mut stop_violation: Option<String> = None;
    for child in children.values() {
        send(child.0.id(), Sig::Term);
    }
    for (id, child) in children.iter_mut() {
        let begin = Instant::now();
        loop {
            match child.0.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() && stop_violation.is_none() {
                        stop_violation =
                            Some(format!("graceful-stop: p{id} exited {status} on SIGTERM"));
                    }
                    break;
                }
                Ok(None) if begin.elapsed() < STOP_DEADLINE => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Ok(None) => {
                    if stop_violation.is_none() {
                        stop_violation = Some(format!(
                            "graceful-stop: p{id} still running {STOP_DEADLINE:?} after SIGTERM"
                        ));
                    }
                    break;
                }
                Err(e) => {
                    if stop_violation.is_none() {
                        stop_violation = Some(format!("graceful-stop: p{id}: {e}"));
                    }
                    break;
                }
            }
        }
    }
    children.clear(); // reaps anything the graceful stop left behind
    report.proxy = proxy.stats();
    client.shutdown();
    proxy.shutdown();
    if report.violation.is_none() {
        report.violation = stop_violation;
    }

    // --- Drained-log checks ---------------------------------------------
    if report.violation.is_none() {
        report.violation = check_drained_logs(
            &plan,
            &log_dir,
            &restarted,
            &completed,
            &mut history,
            &mut report,
        );
    }

    if report.violation.is_none() && ephemeral {
        let _ = std::fs::remove_dir_all(&log_dir);
    }
    Ok(report)
}

/// Parses every incarnation's delivery log and runs the Figure 6 agreement
/// checks plus the linearizability oracle. Returns the first violation.
fn check_drained_logs(
    plan: &NetChaosPlan,
    log_dir: &Path,
    restarted: &BTreeSet<u32>,
    completed: &BTreeSet<MsgId>,
    history: &mut KvHistory,
    report: &mut NetChaosReport,
) -> Option<String> {
    let client_id = ProcessId(REPLICAS);
    let faulty_ids: BTreeSet<u32> = plan.nemesis.crashes.iter().map(|c| c.process.0).collect();

    // Observers: every original incarnation, plus a synthetic observer per
    // restarted incarnation.
    let mut observers: Vec<(ProcessId, GroupId, Vec<DeliveryLine>)> = Vec::new();
    for id in 0..REPLICAS {
        let torn_ok = faulty_ids.contains(&id); // SIGKILL may tear the tail
        match parse_log(&log_dir.join(log_name(id, false)), torn_ok) {
            Ok(lines) => observers.push((ProcessId(id), group_of(id), lines)),
            Err(e) => return Some(e),
        }
        if restarted.contains(&id) {
            match parse_log(&log_dir.join(log_name(id, true)), false) {
                Ok(lines) => {
                    observers.push((ProcessId(RESTART_OBSERVER_BASE + id), group_of(id), lines))
                }
                Err(e) => return Some(e),
            }
        }
    }
    report.delivery_lines = observers.iter().map(|(_, _, l)| l.len()).sum();

    // Figure 6 agreement: every delivery carries a global timestamp, all
    // observers agree on each message's timestamp, and the per-observer
    // delivery orders embed into one total order.
    let mut gts_of: BTreeMap<MsgId, Timestamp> = BTreeMap::new();
    let mut per_observer: BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>> = BTreeMap::new();
    for (observer, _, lines) in &observers {
        for line in lines {
            let msg_id = line.msg_id();
            if msg_id.sender != client_id || (msg_id.seq as usize) >= plan.ops.len() {
                return Some(format!(
                    "invariant: {observer} delivered {msg_id} which was never submitted"
                ));
            }
            if line.gts_group == u32::MAX {
                return Some(format!(
                    "invariant: {observer} delivered {msg_id} without a global timestamp"
                ));
            }
            let gts = Timestamp::new(line.gts_time, GroupId(line.gts_group));
            if let Some(prev) = gts_of.insert(msg_id, gts) {
                if prev != gts {
                    return Some(format!(
                        "invariant: observers disagree on the global timestamp of {msg_id} \
                         ({prev} vs {gts})"
                    ));
                }
            }
            per_observer
                .entry(*observer)
                .or_default()
                .push((msg_id, gts));
        }
    }
    if let Err(v) = check_total_order(&per_observer) {
        return Some(format!("invariant: {v}"));
    }

    // Individual replicas may carry loss-excused gaps, but an operation the
    // client saw *complete* was by definition delivered somewhere: a
    // completed op absent from every drained log means a delivery was lost
    // outright, which no excusal covers.
    for id in completed {
        if !gts_of.contains_key(id) {
            return Some(format!(
                "invariant: op {id} completed at the client but appears in no delivery log"
            ));
        }
    }

    // Linearizability oracle: replay every observer's log against a fresh
    // partitioned store, in log (= apply) order.
    let partitioner = Partitioner::new(NUM_GROUPS as u32);
    for (observer, group, lines) in &observers {
        let mut store = KvStore::with_partitioner(*group, partitioner);
        for line in lines {
            let msg_id = line.msg_id();
            let cmd = &plan.ops[msg_id.seq as usize];
            let gts = Timestamp::new(line.gts_time, GroupId(line.gts_group));
            let read = store.apply_read(cmd);
            history.applied(msg_id, *observer, *group, gts, read);
        }
    }
    let faulty: BTreeSet<ProcessId> = faulty_ids.iter().map(|id| ProcessId(*id)).collect();
    // A restarted incarnation's history begins wherever checkpoint state
    // transfer put it: excuse everything below its first logged timestamp.
    let mut excusals: BTreeMap<ProcessId, Timestamp> = BTreeMap::new();
    for (observer, _, lines) in &observers {
        if observer.0 >= RESTART_OBSERVER_BASE {
            if let Some(first) = lines.first() {
                excusals.insert(
                    *observer,
                    Timestamp::new(first.gts_time, GroupId(first.gts_group)),
                );
            }
        }
    }
    match history.check_excusing(&faulty, plan.nemesis.lossy(), &excusals, &BTreeMap::new()) {
        Ok(oracle) => report.checked_reads = oracle.checked_reads,
        Err(v) => return Some(format!("linearizability: {v}")),
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_tokens_round_trip_and_reject_foreign_formats() {
        let token = NetSeedToken {
            protocol: Protocol::WhiteBox,
            seed: 0xfeed_f00d_dead_beef,
        };
        let s = token.to_string();
        assert!(s.starts_with("WBAM_NET_SEED=n1:WbCast:"));
        assert_eq!(NetSeedToken::parse(&s).unwrap(), token);
        let bare = s.strip_prefix("WBAM_NET_SEED=").unwrap();
        assert_eq!(NetSeedToken::parse(bare).unwrap(), token);
        // Simulator tokens and baseline protocols are refused outright.
        assert!(NetSeedToken::parse("v2:WbCast:1").is_err());
        assert!(NetSeedToken::parse("n1:FastCast:1").is_err());
        assert!(NetSeedToken::parse("n1:WbCast:zz").is_err());
    }

    /// The replayability contract: the same token always derives the same
    /// plan (digest-equal), the message override changes only the op count,
    /// and different seeds diverge.
    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let token = net_schedule_token(42, 3);
        let a = generate_net_plan(&token, None);
        let b = generate_net_plan(&token, None);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let small = generate_net_plan(&token, Some(5));
        assert_eq!(small.ops.len(), 5);
        assert_eq!(small.nemesis, a.nemesis, "override must not shift faults");
        assert_eq!(
            small.ops[..],
            a.ops[..5],
            "override must not shift the op stream"
        );
        let other = generate_net_plan(&net_schedule_token(42, 4), None);
        assert_ne!(a.digest(), other.digest());
    }

    /// Every derived plan carries the acceptance trifecta: link drops, one
    /// healed partition inside the chaos window, one SIGKILL with restart.
    #[test]
    fn every_plan_has_drops_partition_heal_and_restarting_crash() {
        for index in 0..32 {
            let plan = generate_net_plan(&net_schedule_token(7, index), None);
            assert!(plan.nemesis.link.drop_per_mille > 0);
            assert!(plan.nemesis.lossy());
            assert_eq!(plan.nemesis.partitions.len(), 1);
            let p = &plan.nemesis.partitions[0];
            assert!(p.start < p.heal && p.heal <= CHAOS_END);
            assert_eq!(p.side_a.len(), 1);
            assert!(p.side_a[0].0 < REPLICAS, "only replicas are isolated");
            assert_eq!(plan.nemesis.crashes.len(), 1);
            let c = &plan.nemesis.crashes[0];
            assert!(c.restart_at.is_some(), "chaos crashes always redeploy");
            assert!(c.restart_at.unwrap() <= CHAOS_END);
            for pause in &plan.pauses {
                assert!(pause.at < pause.resume);
                assert!(pause.process.0 < REPLICAS);
            }
            assert!(!plan.ops.is_empty());
        }
    }

    /// The fault timeline is sorted and pairs every kill with its restart.
    #[test]
    fn event_timelines_are_ordered() {
        let plan = generate_net_plan(&net_schedule_token(11, 0), None);
        let events = build_events(&plan);
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        let kills = events
            .iter()
            .filter(|(_, e)| matches!(e, NetEvent::Kill(_)))
            .count();
        let restarts = events
            .iter()
            .filter(|(_, e)| matches!(e, NetEvent::Restart(_)))
            .count();
        assert_eq!(kills, restarts);
    }

    /// Torn-tail tolerance applies to exactly the final line of a killed
    /// incarnation's log.
    #[test]
    fn parse_log_tolerates_only_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!("wbam-chaos-parse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let line = serde_json::to_string(&DeliveryLine {
            process: 0,
            sender: 6,
            seq: 0,
            gts_time: 3,
            gts_group: 1,
            elapsed_ms: 1.0,
        })
        .unwrap();
        std::fs::write(&path, format!("{line}\n{{\"process\":0,\"sen")).unwrap();
        assert_eq!(parse_log(&path, true).unwrap().len(), 1);
        assert!(parse_log(&path, false).is_err());
        // A torn line in the *middle* is never excusable.
        std::fs::write(&path, format!("{{\"process\":0,\"sen\n{line}")).unwrap();
        assert!(parse_log(&path, true).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
