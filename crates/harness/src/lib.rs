//! Experiment harness: builds simulated clusters for every protocol in the
//! workspace, drives client workloads over them and aggregates the metrics the
//! paper reports.
//!
//! The harness is what the figure-reproduction benchmarks (`wbam-bench`), the
//! examples and the cross-protocol integration tests share:
//!
//! * [`cluster`] — [`ProtocolSim`], a protocol-agnostic façade over a
//!   [`Simulation`](wbam_simnet::Simulation) populated with replicas and
//!   clients of one protocol ([`Protocol`]); plus [`ClusterSpec`], the
//!   topology/latency description of an experiment.
//! * [`workload`] — closed-loop client workloads (every client keeps one
//!   multicast outstanding, as in the paper's evaluation) and their results.
//! * [`probe`] — single-message latency probes used for the latency table and
//!   the message-flow/convoy figures.
//! * [`mod@sweep`] — parameter sweeps over client counts and destination-group
//!   counts, producing the rows of Figures 7 and 8.
//! * [`explorer`] — the seeded schedule explorer: randomized workloads and
//!   nemesis fault plans, checked against the Figure 6 invariants and the
//!   key-value store linearizability oracle, with replayable failure seeds.
//! * [`deploy`] — topology specs for *deployed* clusters (one OS process per
//!   replica or client over the TCP transport of `wbam-runtime`), consumed
//!   by the `wbamd` binary, plus the JSONL log formats it emits.
//! * [`proxy`] — [`NemesisProxy`], a fault-injecting TCP man-in-the-middle
//!   that executes seeded [`NemesisPlan`](wbam_types::nemesis::NemesisPlan)s
//!   (drops, duplicates, delays, asymmetric partitions with heal) on every
//!   link of a deployed cluster.
//! * [`chaos`] — the deployed chaos driver behind the `net_chaos` binary:
//!   seeded plan + workload generation, live-cluster orchestration with
//!   process faults (SIGKILL/redeploy, SIGSTOP/SIGCONT), delivery-log
//!   draining, and the Figure 6 / linearizability checks over the result.
//! * [`rt`] — the deterministic-runtime explorer behind the `rt_explorer`
//!   binary: seeded interleavings of the *deployed* node loop
//!   ([`DeterministicRuntime`](wbam_runtime::DeterministicRuntime) under a
//!   virtual clock), with replayable `rt1` tokens, the same Figure 6 /
//!   linearizability checks, and greedy crash-schedule minimization.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod cluster;
pub mod deploy;
pub mod explorer;
pub mod probe;
pub mod proxy;
pub mod rt;
pub mod sweep;
pub mod workload;

pub use chaos::{run_net_token, NetChaosConfig, NetChaosReport, NetSeedToken};
pub use cluster::{ClusterSpec, Protocol, ProtocolSim};
pub use deploy::{ChildGuard, ClientSummary, DeliveryLine, DeployRole, DeploySpec, LatencyStats};
pub use explorer::{
    explore, generate_schedule, minimize, run_token, ExplorationReport, ExplorerConfig, Finding,
    ScheduleReport, SeedToken, TokenVersion,
};
pub use probe::{convoy_probe, latency_probe, LatencyProbeResult};
pub use proxy::{FrameFate, LinkScheduler, NemesisProxy, ProxyStats};
pub use rt::{
    explore_rt, generate_rt_plan, minimize_rt, run_rt_token, RtExplorationReport, RtExplorerConfig,
    RtFinding, RtPlan, RtReport, RtSeedToken,
};
pub use sweep::{sweep, BenchRecord, SweepPoint, SweepResult, SweepSpec};
pub use workload::{run_closed_loop, ClosedLoopWorkload, WorkloadResult};
