//! Parameter sweeps over client counts and destination-group counts.
//!
//! A sweep runs the closed-loop workload of [`crate::workload`] for every
//! combination of protocol, client count and destination-group count in a
//! [`SweepSpec`], producing one [`SweepPoint`] per combination — exactly the
//! data series plotted in Figures 7 (LAN) and 8 (WAN) of the paper.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::cluster::{ClusterSpec, Protocol, ProtocolSim};
use crate::workload::{run_closed_loop, ClosedLoopWorkload, WorkloadResult};

/// Description of a sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Base cluster (latency model, group count, service time); the client
    /// count is overridden per point.
    pub base: ClusterSpec,
    /// Protocols to compare.
    pub protocols: Vec<Protocol>,
    /// Client counts to evaluate.
    pub client_counts: Vec<usize>,
    /// Destination-group counts to evaluate.
    pub dest_group_counts: Vec<usize>,
    /// Workload template (duration, warm-up, payload size).
    pub workload: ClosedLoopWorkload,
}

impl SweepSpec {
    /// The Figure 7 sweep (LAN), scaled down by default to keep simulation
    /// times reasonable; the benchmark binaries pass larger client counts.
    pub fn lan(client_counts: Vec<usize>, dest_group_counts: Vec<usize>) -> Self {
        SweepSpec {
            base: ClusterSpec::lan(0),
            protocols: Protocol::evaluated().to_vec(),
            client_counts,
            dest_group_counts,
            workload: ClosedLoopWorkload {
                duration: Duration::from_millis(500),
                warmup: Duration::from_millis(100),
                ..ClosedLoopWorkload::default()
            },
        }
    }

    /// The Figure 8 sweep (WAN).
    pub fn wan(client_counts: Vec<usize>, dest_group_counts: Vec<usize>) -> Self {
        SweepSpec {
            base: ClusterSpec::wan(0),
            protocols: Protocol::evaluated().to_vec(),
            client_counts,
            dest_group_counts,
            workload: ClosedLoopWorkload {
                duration: Duration::from_secs(4),
                warmup: Duration::from_secs(1),
                ..ClosedLoopWorkload::default()
            },
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Protocol label (as used in the paper's plots).
    pub protocol: String,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Number of destination groups per multicast.
    pub dest_groups: usize,
    /// Workload results.
    pub result: WorkloadResult,
}

impl SweepPoint {
    /// Mean latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.result.latency.mean.as_secs_f64() * 1e3
    }

    /// Throughput in messages per second.
    pub fn throughput(&self) -> f64 {
        self.result.throughput.messages_per_second
    }
}

/// The complete result of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct SweepResult {
    /// All measured points.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Points for a given protocol and destination-group count, ordered by
    /// client count — one plotted curve of Figure 7/8.
    pub fn series(&self, protocol: &str, dest_groups: usize) -> Vec<&SweepPoint> {
        let mut v: Vec<&SweepPoint> = self
            .points
            .iter()
            .filter(|p| p.protocol == protocol && p.dest_groups == dest_groups)
            .collect();
        v.sort_by_key(|p| p.clients);
        v
    }

    /// Renders the result as an aligned text table (one row per point).
    pub fn to_table(&self) -> String {
        let mut out = String::from("protocol   groups  clients    latency_ms   throughput_msg_s\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:<10} {:<7} {:<10} {:<12.3} {:<12.1}\n",
                p.protocol,
                p.dest_groups,
                p.clients,
                p.latency_ms(),
                p.throughput()
            ));
        }
        out
    }
}

/// Runs a sweep, one simulation per (protocol, clients, destination groups).
pub fn sweep(spec: &SweepSpec) -> SweepResult {
    let mut result = SweepResult::default();
    for protocol in &spec.protocols {
        for &clients in &spec.client_counts {
            for &dest_groups in &spec.dest_group_counts {
                let mut cluster_spec = spec.base.clone();
                cluster_spec.num_clients = clients;
                let mut sim = ProtocolSim::build(*protocol, &cluster_spec);
                let workload = ClosedLoopWorkload {
                    dest_groups,
                    ..spec.workload.clone()
                };
                let run = run_closed_loop(&mut sim, &workload);
                result.points.push(SweepPoint {
                    protocol: protocol.label().to_string(),
                    clients,
                    dest_groups,
                    result: run,
                });
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_simnet::LatencyModel;

    #[test]
    fn small_lan_sweep_orders_protocols_correctly() {
        // A deliberately tiny sweep so the test stays fast: 3 groups, few
        // clients, short run. The qualitative result of Figure 7 — WbCast has
        // lower latency than FastCast and FT-Skeen — must already show.
        let mut spec = SweepSpec::lan(vec![4], vec![2]);
        spec.base.num_groups = 3;
        spec.base.latency = LatencyModel::constant(Duration::from_millis(1));
        spec.workload.duration = Duration::from_millis(300);
        spec.workload.warmup = Duration::from_millis(50);
        let result = sweep(&spec);
        assert_eq!(result.points.len(), 3);
        let latency_of = |label: &str| {
            result
                .series(label, 2)
                .first()
                .map(|p| p.latency_ms())
                .unwrap()
        };
        let wb = latency_of("WbCast");
        let fc = latency_of("FastCast");
        let fts = latency_of("Skeen");
        assert!(
            wb < fc,
            "WbCast ({wb:.2} ms) must beat FastCast ({fc:.2} ms)"
        );
        assert!(
            fc < fts,
            "FastCast ({fc:.2} ms) must beat FT-Skeen ({fts:.2} ms)"
        );
        let table = result.to_table();
        assert!(table.contains("WbCast"));
        assert!(table.lines().count() >= 4);
    }
}
