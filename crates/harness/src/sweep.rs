//! Parameter sweeps over client counts and destination-group counts.
//!
//! A sweep runs the closed-loop workload of [`crate::workload`] for every
//! combination of protocol, client count and destination-group count in a
//! [`SweepSpec`], producing one [`SweepPoint`] per combination — exactly the
//! data series plotted in Figures 7 (LAN) and 8 (WAN) of the paper.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::cluster::{ClusterSpec, Protocol, ProtocolSim};
use crate::workload::{run_closed_loop, ClosedLoopWorkload, WorkloadResult};

/// Description of a sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Base cluster (latency model, group count, service time); the client
    /// count is overridden per point.
    pub base: ClusterSpec,
    /// Protocols to compare.
    pub protocols: Vec<Protocol>,
    /// Client counts to evaluate.
    pub client_counts: Vec<usize>,
    /// Destination-group counts to evaluate.
    pub dest_group_counts: Vec<usize>,
    /// Workload template (duration, warm-up, payload size).
    pub workload: ClosedLoopWorkload,
}

impl SweepSpec {
    /// The Figure 7 sweep (LAN), scaled down by default to keep simulation
    /// times reasonable; the benchmark binaries pass larger client counts.
    pub fn lan(client_counts: Vec<usize>, dest_group_counts: Vec<usize>) -> Self {
        SweepSpec {
            base: ClusterSpec::lan(0),
            protocols: Protocol::evaluated().to_vec(),
            client_counts,
            dest_group_counts,
            workload: ClosedLoopWorkload {
                duration: Duration::from_millis(500),
                warmup: Duration::from_millis(100),
                ..ClosedLoopWorkload::default()
            },
        }
    }

    /// The Figure 8 sweep (WAN).
    pub fn wan(client_counts: Vec<usize>, dest_group_counts: Vec<usize>) -> Self {
        SweepSpec {
            base: ClusterSpec::wan(0),
            protocols: Protocol::evaluated().to_vec(),
            client_counts,
            dest_group_counts,
            workload: ClosedLoopWorkload {
                duration: Duration::from_secs(4),
                warmup: Duration::from_secs(1),
                ..ClosedLoopWorkload::default()
            },
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Protocol label (as used in the paper's plots).
    pub protocol: String,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Number of destination groups per multicast.
    pub dest_groups: usize,
    /// Batch-size knob the cluster ran with (1 = unbatched).
    pub max_batch: usize,
    /// Workload results.
    pub result: WorkloadResult,
}

impl SweepPoint {
    /// Mean latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.result.latency.mean.as_secs_f64() * 1e3
    }

    /// Throughput in messages per second.
    pub fn throughput(&self) -> f64 {
        self.result.throughput.messages_per_second
    }

    /// The machine-readable benchmark record for this point, tagged with the
    /// emitting benchmark's name and environment label (e.g. `lan`, `wan`).
    pub fn bench_record(&self, bench: &str, environment: &str) -> BenchRecord {
        BenchRecord {
            bench: bench.to_string(),
            environment: environment.to_string(),
            wire: None,
            protocol: self.protocol.clone(),
            max_batch: self.max_batch,
            clients: self.clients,
            dest_groups: self.dest_groups,
            throughput_msg_s: self.throughput(),
            latency_p50_ms: self.result.latency.p50_ms(),
            latency_p99_ms: self.result.latency.p99_ms(),
            latency_mean_ms: self.result.latency.mean_ms(),
        }
    }
}

/// One machine-readable benchmark result, serialised as a single JSON object
/// per line of `BENCH_throughput.json` so that successive runs (and CI jobs)
/// can append without parsing the file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Name of the emitting benchmark binary.
    pub bench: String,
    /// Environment label (`lan`, `wan`, ...).
    pub environment: String,
    /// Wire codec the cluster ran with (`"binary"` or `"json"`). `None` for
    /// simulated benches, which exchange in-memory values and never hit a
    /// serialiser. Old records without the field parse as `None`.
    pub wire: Option<String>,
    /// Protocol label.
    pub protocol: String,
    /// Batch-size knob (1 = unbatched).
    pub max_batch: usize,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Destination groups per multicast.
    pub dest_groups: usize,
    /// Delivered messages per second of simulated time.
    pub throughput_msg_s: f64,
    /// Median delivery latency in milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile delivery latency in milliseconds.
    pub latency_p99_ms: f64,
    /// Mean delivery latency in milliseconds.
    pub latency_mean_ms: f64,
}

/// The complete result of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct SweepResult {
    /// All measured points.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The distinct protocol labels present in the result.
    pub fn known_labels(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.points.iter().map(|p| p.protocol.as_str()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Points for a given protocol and destination-group count, ordered by
    /// client count — one plotted curve of Figure 7/8.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` matches no point at all, or if `dest_groups` was
    /// never swept: either means the calling benchmark queries a curve that
    /// was never measured (a typo or a dropped sweep dimension), and silently
    /// returning an empty series would let it print empty tables.
    pub fn series(&self, protocol: &str, dest_groups: usize) -> Vec<&SweepPoint> {
        assert!(
            self.points.iter().any(|p| p.protocol == protocol),
            "unknown protocol label {protocol:?}: this sweep only measured {:?}",
            self.known_labels()
        );
        assert!(
            self.points.iter().any(|p| p.dest_groups == dest_groups),
            "destination-group count {dest_groups} was never swept: this sweep only measured {:?}",
            {
                let mut v: Vec<usize> = self.points.iter().map(|p| p.dest_groups).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        );
        let mut v: Vec<&SweepPoint> = self
            .points
            .iter()
            .filter(|p| p.protocol == protocol && p.dest_groups == dest_groups)
            .collect();
        v.sort_by_key(|p| p.clients);
        v
    }

    /// Renders the result as an aligned text table (one row per point).
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("protocol   groups  clients    batch  latency_ms   throughput_msg_s\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:<10} {:<7} {:<10} {:<6} {:<12.3} {:<12.1}\n",
                p.protocol,
                p.dest_groups,
                p.clients,
                p.max_batch,
                p.latency_ms(),
                p.throughput()
            ));
        }
        out
    }

    /// Appends one JSON record per point (JSON-lines format) to `path` —
    /// by convention `BENCH_throughput.json` at the repository root. Returns
    /// the number of records written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures opening or writing the file.
    pub fn append_json_records(
        &self,
        path: impl AsRef<std::path::Path>,
        bench: &str,
        environment: &str,
    ) -> std::io::Result<usize> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        for p in &self.points {
            let record = p.bench_record(bench, environment);
            let line =
                serde_json::to_string(&record).map_err(|e| std::io::Error::other(e.to_string()))?;
            writeln!(file, "{line}")?;
        }
        Ok(self.points.len())
    }
}

/// Runs a sweep, one simulation per (protocol, clients, destination groups).
pub fn sweep(spec: &SweepSpec) -> SweepResult {
    let mut result = SweepResult::default();
    for protocol in &spec.protocols {
        for &clients in &spec.client_counts {
            for &dest_groups in &spec.dest_group_counts {
                let mut cluster_spec = spec.base.clone();
                cluster_spec.num_clients = clients;
                let mut sim = ProtocolSim::build(*protocol, &cluster_spec);
                let workload = ClosedLoopWorkload {
                    dest_groups,
                    ..spec.workload.clone()
                };
                let run = run_closed_loop(&mut sim, &workload);
                result.points.push(SweepPoint {
                    protocol: protocol.label().to_string(),
                    clients,
                    dest_groups,
                    max_batch: spec.base.max_batch,
                    result: run,
                });
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_simnet::LatencyModel;

    #[test]
    fn small_lan_sweep_orders_protocols_correctly() {
        // A deliberately tiny sweep so the test stays fast: 3 groups, few
        // clients, short run. The qualitative result of Figure 7 — WbCast has
        // lower latency than FastCast and FT-Skeen — must already show.
        let mut spec = SweepSpec::lan(vec![4], vec![2]);
        spec.base.num_groups = 3;
        spec.base.latency = LatencyModel::constant(Duration::from_millis(1));
        spec.workload.duration = Duration::from_millis(300);
        spec.workload.warmup = Duration::from_millis(50);
        let result = sweep(&spec);
        assert_eq!(result.points.len(), 3);
        let latency_of = |label: &str| {
            result
                .series(label, 2)
                .first()
                .map(|p| p.latency_ms())
                .unwrap()
        };
        let wb = latency_of("WbCast");
        let fc = latency_of("FastCast");
        let fts = latency_of("Skeen");
        assert!(
            wb < fc,
            "WbCast ({wb:.2} ms) must beat FastCast ({fc:.2} ms)"
        );
        assert!(
            fc < fts,
            "FastCast ({fc:.2} ms) must beat FT-Skeen ({fts:.2} ms)"
        );
        let table = result.to_table();
        assert!(table.contains("WbCast"));
        assert!(table.lines().count() >= 4);
    }

    fn tiny_result() -> SweepResult {
        let mut spec = SweepSpec::lan(vec![2], vec![1]);
        spec.base.num_groups = 2;
        spec.base.latency = LatencyModel::constant(Duration::from_millis(1));
        spec.protocols = vec![crate::cluster::Protocol::WhiteBox];
        spec.workload.duration = Duration::from_millis(100);
        spec.workload.warmup = Duration::from_millis(20);
        sweep(&spec)
    }

    #[test]
    #[should_panic(expected = "unknown protocol label")]
    fn series_rejects_unknown_protocol_labels() {
        // Guards against bench binaries printing empty tables because of a
        // typo'd or never-swept label.
        let result = tiny_result();
        let _ = result.series("WbCsat", 1);
    }

    #[test]
    #[should_panic(expected = "never swept")]
    fn series_rejects_unswept_destination_group_counts() {
        let result = tiny_result();
        let _ = result.series("WbCast", 3);
    }

    #[test]
    fn json_records_round_trip_and_append() {
        let result = tiny_result();
        assert_eq!(result.points.len(), 1);
        let record = result.points[0].bench_record("unit_test", "lan");
        assert_eq!(record.protocol, "WbCast");
        assert_eq!(record.max_batch, 1);
        assert!(record.throughput_msg_s > 0.0);
        let json = serde_json::to_string(&record).unwrap();
        let back: BenchRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);

        // Records written before the `wire` field existed must keep parsing
        // (the field is absent in BENCH_*.json lines from earlier runs).
        let legacy = json.replacen("\"wire\":null,", "", 1);
        assert_ne!(legacy, json, "expected to strip the wire field");
        let old: BenchRecord = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old.wire, None);
        assert_eq!(old, record);

        let path =
            std::env::temp_dir().join(format!("wbam_bench_test_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            result
                .append_json_records(&path, "unit_test", "lan")
                .unwrap(),
            1
        );
        assert_eq!(
            result
                .append_json_records(&path, "unit_test", "lan")
                .unwrap(),
            1
        );
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            contents.lines().count(),
            2,
            "records must append, not overwrite"
        );
        for line in contents.lines() {
            let rec: BenchRecord = serde_json::from_str(line).unwrap();
            assert_eq!(rec.bench, "unit_test");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batched_sweep_points_carry_the_knob() {
        let mut spec = SweepSpec::lan(vec![4], vec![1]);
        spec.base.num_groups = 2;
        spec.base = spec.base.with_batching(8, Duration::from_micros(200));
        spec.base.latency = LatencyModel::constant(Duration::from_millis(1));
        spec.protocols = vec![crate::cluster::Protocol::WhiteBox];
        spec.workload.duration = Duration::from_millis(200);
        spec.workload.warmup = Duration::from_millis(40);
        let result = sweep(&spec);
        assert_eq!(result.points[0].max_batch, 8);
        assert!(
            result.points[0].result.latency.count > 0,
            "batched runs must still deliver"
        );
    }
}
