//! Protocol-agnostic simulated clusters.

use std::time::Duration;

use wbam_baselines::common::{BaselineClient, BaselineMsg, BaselineReplica, Mode};
use wbam_core::invariants::SentMessage;
use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxReplica};
use wbam_simnet::{DeliveryRecord, LatencyModel, MetricsView, NetStats, SimConfig, Simulation};
use wbam_skeen::{SkeenClient, SkeenProcess};
use wbam_types::{
    AppMessage, ClusterConfig, ConfigError, Destination, GroupId, MsgId, NemesisPlan, Payload,
    ProcessId, SiteId,
};

/// The protocols the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// The paper's white-box atomic multicast (3δ / 5δ).
    WhiteBox,
    /// FastCast, Coelho et al. DSN 2017 (4δ / 8δ).
    FastCast,
    /// Fault-tolerant Skeen over consensus (6δ / 12δ).
    FtSkeen,
    /// Plain Skeen's protocol with singleton reliable groups (2δ / 4δ);
    /// only valid when `group_size == 1`.
    Skeen,
}

impl Protocol {
    /// Short name used in experiment output, matching the paper's labels.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::WhiteBox => "WbCast",
            Protocol::FastCast => "FastCast",
            Protocol::FtSkeen => "Skeen",
            Protocol::Skeen => "Skeen1",
        }
    }

    /// All fault-tolerant protocols compared in Figures 7 and 8.
    pub fn evaluated() -> [Protocol; 3] {
        [Protocol::WhiteBox, Protocol::FastCast, Protocol::FtSkeen]
    }
}

/// Topology and environment of a simulated experiment.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of multicast groups.
    pub num_groups: usize,
    /// Replicas per group (`2f + 1`).
    pub group_size: usize,
    /// Number of client processes generating load.
    pub num_clients: usize,
    /// Number of sites replicas are spread over (1 = LAN; 3 = the paper's WAN).
    pub num_sites: u32,
    /// One-way message delay model.
    pub latency: LatencyModel,
    /// CPU time a replica spends handling one protocol message.
    pub service_time: Duration,
    /// Random seed.
    pub seed: u64,
    /// Maximum number of multicasts a leader accumulates per batched ordering
    /// round (white-box `ACCEPT_BATCH` / baseline batched Paxos proposals).
    /// Only meaningful when [`batch_delay`](Self::batch_delay) is non-zero.
    pub max_batch: usize,
    /// How long a partial batch waits before being flushed. Zero (the
    /// default of every constructor) disables batching — the paper's
    /// per-message behaviour.
    pub batch_delay: Duration,
    /// Fault schedule injected into the run (crashes/restarts, partitions,
    /// probabilistic link faults, timer jitter). Quiet by default.
    pub nemesis: NemesisPlan,
    /// Record the protocol-message trace, as required by the Figure 6
    /// invariant checkers. Off by default (costs memory on long runs).
    pub record_trace: bool,
    /// Run white-box replicas with their built-in heartbeat/election oracle
    /// (150 ms heartbeats, 750 ms rank-staggered election timeout) instead of
    /// externally injected leader changes. Off by default: the figure
    /// benchmarks drive failovers explicitly and should not pay for
    /// heartbeat traffic. The schedule explorer turns it on — under random
    /// crashes and restarts only the protocol's own failure detector
    /// reliably re-elects and re-synchronises groups.
    pub auto_election: bool,
    /// Record compaction: deliveries between `STABLE` watermark exchanges.
    /// Zero (every constructor's default) disables compaction — the paper's
    /// unbounded behaviour. Applies to the white-box protocol and both
    /// consensus baselines (which additionally trim their Paxos logs).
    pub compaction_interval: u64,
    /// Most recently delivered records retained below the watermark (the
    /// duplicate-service window); only meaningful with a non-zero interval.
    pub compaction_lag: usize,
}

impl ClusterSpec {
    /// The LAN environment of Figure 7: 10 groups × 3 replicas, ~0.05 ms
    /// one-way delay, 10 µs per-message CPU time.
    pub fn lan(num_clients: usize) -> Self {
        ClusterSpec {
            num_groups: 10,
            group_size: 3,
            num_clients,
            num_sites: 1,
            latency: LatencyModel::lan(),
            service_time: Duration::from_micros(10),
            seed: 42,
            max_batch: 1,
            batch_delay: Duration::ZERO,
            nemesis: NemesisPlan::quiet(),
            record_trace: false,
            auto_election: false,
            compaction_interval: 0,
            compaction_lag: 0,
        }
    }

    /// The WAN environment of Figure 8: 10 groups × 3 replicas spread over
    /// three sites with the paper's inter-region delays.
    pub fn wan(num_clients: usize) -> Self {
        ClusterSpec {
            num_groups: 10,
            group_size: 3,
            num_clients,
            num_sites: 3,
            latency: LatencyModel::wan_three_sites(),
            service_time: Duration::from_micros(10),
            seed: 42,
            max_batch: 1,
            batch_delay: Duration::ZERO,
            nemesis: NemesisPlan::quiet(),
            record_trace: false,
            auto_election: false,
            compaction_interval: 0,
            compaction_lag: 0,
        }
    }

    /// A small cluster with a constant one-way delay δ, used by the latency
    /// probes and the analytical experiments.
    pub fn constant_delta(num_groups: usize, group_size: usize, delta: Duration) -> Self {
        ClusterSpec {
            num_groups,
            group_size,
            num_clients: 1,
            num_sites: 1,
            latency: LatencyModel::constant(delta),
            service_time: Duration::ZERO,
            seed: 7,
            max_batch: 1,
            batch_delay: Duration::ZERO,
            nemesis: NemesisPlan::quiet(),
            record_trace: false,
            auto_election: false,
            compaction_interval: 0,
            compaction_lag: 0,
        }
    }

    /// Returns the spec with record compaction enabled: replicas exchange
    /// delivery watermarks every `interval` deliveries and prune records
    /// (and, for the baselines, the consensus-log prefix) below the watermark
    /// of every destination group, keeping the `lag` most recent delivered
    /// records resident. This is what bounds replica memory on long runs;
    /// recovery of a restarted or lagging replica becomes checkpoint-based
    /// state transfer instead of per-message replay.
    pub fn with_compaction(mut self, interval: u64, lag: usize) -> Self {
        self.compaction_interval = interval;
        self.compaction_lag = lag;
        self
    }

    /// Returns the spec with batched ordering enabled: leaders accumulate up
    /// to `max_batch` multicasts (flushing earlier after `batch_delay`) and
    /// run one ordering round per batch. Applies to the white-box protocol
    /// and, via batched Paxos proposals, to the consensus-based baselines.
    pub fn with_batching(mut self, max_batch: usize, batch_delay: Duration) -> Self {
        self.max_batch = max_batch.max(1);
        self.batch_delay = batch_delay;
        self
    }

    /// Returns the spec with a fault schedule: the simulation executes the
    /// plan's crashes/restarts and leader nudges and applies its link faults,
    /// partitions and timer jitter throughout the run.
    pub fn with_nemesis(mut self, nemesis: NemesisPlan) -> Self {
        self.nemesis = nemesis;
        self
    }

    /// Returns the spec with protocol-trace recording enabled (required by
    /// the Figure 6 invariant checkers; see [`ProtocolSim::whitebox_trace`]).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Returns the spec with the white-box replicas' built-in
    /// heartbeat/election oracle enabled (see
    /// [`auto_election`](Self::auto_election)).
    pub fn with_auto_election(mut self) -> Self {
        self.auto_election = true;
        self
    }

    /// Builds the corresponding static cluster configuration.
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut b = ClusterConfig::builder()
            .groups(self.num_groups, self.group_size)
            .clients(self.num_clients);
        if self.num_sites > 1 {
            b = b
                .spread_over_sites(self.num_sites)
                .clients_at_site(SiteId(0));
        }
        b.build()
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            latency: self.latency.clone(),
            service_time: self.service_time,
            client_service_time: Duration::ZERO,
            gst: None,
            pre_gst_extra_delay: Duration::ZERO,
            record_trace: self.record_trace,
            nemesis: self.nemesis.clone(),
        }
    }
}

enum SimInner {
    WhiteBox(Simulation<wbam_core::WhiteBoxMsg>),
    Baseline(Simulation<BaselineMsg>),
    Skeen(Simulation<wbam_skeen::SkeenMsg>),
}

/// A simulated cluster running one protocol, with a protocol-independent API
/// for submitting multicasts and reading metrics.
pub struct ProtocolSim {
    protocol: Protocol,
    cluster: ClusterConfig,
    inner: SimInner,
    next_seq: Vec<u64>,
    delivery_cursor: usize,
}

/// Client retry timeout used for every protocol's clients (2 s of simulated
/// time): well above any simulated delivery latency, so failure-free runs
/// never retry, and short enough that the retry fallbacks fire well inside
/// the horizons used by failover scenarios.
const CLIENT_RETRY_TIMEOUT: Duration = Duration::from_secs(2);

impl ProtocolSim {
    /// Builds a cluster of `spec` running `protocol`.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` is [`Protocol::Skeen`] and the group size is not
    /// 1, or if the spec produces a misconfigured replica (see
    /// [`Self::try_build`]).
    pub fn build(protocol: Protocol, spec: &ClusterSpec) -> Self {
        Self::try_build(protocol, spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a cluster of `spec` running `protocol`, reporting replica
    /// misconfigurations as a typed [`ConfigError`] instead of aborting (the
    /// schedule explorer turns these into findings).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] produced by a replica constructor.
    ///
    /// # Panics
    ///
    /// Panics if `protocol` is [`Protocol::Skeen`] and the group size is not 1.
    pub fn try_build(protocol: Protocol, spec: &ClusterSpec) -> Result<Self, ConfigError> {
        let cluster = spec.cluster_config();
        let sim_config = spec.sim_config();
        let inner = match protocol {
            Protocol::WhiteBox => {
                let mut sim = Simulation::new(sim_config);
                for gc in cluster.groups() {
                    for member in gc.members() {
                        let mut cfg = ReplicaConfig::new(*member, gc.id(), cluster.clone())
                            .with_batching(spec.max_batch, spec.batch_delay)
                            .with_compaction(spec.compaction_interval, spec.compaction_lag);
                        cfg = if spec.auto_election {
                            cfg.with_election_timeouts(
                                Duration::from_millis(150),
                                Duration::from_millis(750),
                            )
                        } else {
                            cfg.without_auto_election()
                        };
                        sim.add_replica(
                            Box::new(WhiteBoxReplica::try_new(cfg)?),
                            gc.id(),
                            cluster.site_of(*member),
                        );
                    }
                }
                for client in cluster.clients() {
                    let cfg = ClientConfig::new(*client, cluster.clone())
                        .with_retry_timeout(CLIENT_RETRY_TIMEOUT);
                    sim.add_client_at(
                        Box::new(MulticastClient::new(cfg)),
                        cluster.site_of(*client),
                    );
                }
                SimInner::WhiteBox(sim)
            }
            Protocol::FastCast | Protocol::FtSkeen => {
                let mode = if protocol == Protocol::FastCast {
                    Mode::FastCast
                } else {
                    Mode::FtSkeen
                };
                let mut sim = Simulation::new(sim_config);
                for gc in cluster.groups() {
                    for member in gc.members() {
                        sim.add_replica(
                            Box::new(
                                BaselineReplica::try_new(*member, gc.id(), cluster.clone(), mode)?
                                    .with_batching(spec.max_batch, spec.batch_delay)
                                    .with_compaction(spec.compaction_interval, spec.compaction_lag),
                            ),
                            gc.id(),
                            cluster.site_of(*member),
                        );
                    }
                }
                for client in cluster.clients() {
                    sim.add_client_at(
                        Box::new(BaselineClient::new(
                            *client,
                            cluster.clone(),
                            CLIENT_RETRY_TIMEOUT,
                        )),
                        cluster.site_of(*client),
                    );
                }
                SimInner::Baseline(sim)
            }
            Protocol::Skeen => {
                assert_eq!(
                    spec.group_size, 1,
                    "plain Skeen requires singleton groups (group_size = 1)"
                );
                let mut sim = Simulation::new(sim_config);
                let groups: Vec<(GroupId, ProcessId)> = cluster
                    .groups()
                    .iter()
                    .map(|g| (g.id(), g.members()[0]))
                    .collect();
                for (gid, member) in &groups {
                    sim.add_replica(
                        Box::new(SkeenProcess::new(*member, *gid, groups.clone())),
                        *gid,
                        cluster.site_of(*member),
                    );
                }
                for client in cluster.clients() {
                    sim.add_client_at(
                        Box::new(SkeenClient::new(*client, groups.clone())),
                        cluster.site_of(*client),
                    );
                }
                SimInner::Skeen(sim)
            }
        };
        let next_seq = vec![0; cluster.clients().len()];
        Ok(ProtocolSim {
            protocol,
            cluster,
            inner,
            next_seq,
            delivery_cursor: 0,
        })
    }

    /// The protocol this cluster runs.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The static cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Current simulated time.
    pub fn now(&self) -> Duration {
        match &self.inner {
            SimInner::WhiteBox(s) => s.now(),
            SimInner::Baseline(s) => s.now(),
            SimInner::Skeen(s) => s.now(),
        }
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        match &self.inner {
            SimInner::WhiteBox(s) => s.stats(),
            SimInner::Baseline(s) => s.stats(),
            SimInner::Skeen(s) => s.stats(),
        }
    }

    /// Metrics view over the run so far. With compaction-capable protocols
    /// the view carries resident-record gauges: `live_records_max` /
    /// `live_records_total` over all replicas, plus `pruned_total`.
    pub fn metrics(&self) -> MetricsView {
        let mut metrics = match &self.inner {
            SimInner::WhiteBox(s) => s.metrics(),
            SimInner::Baseline(s) => s.metrics(),
            SimInner::Skeen(s) => s.metrics(),
        };
        let mut max = 0usize;
        let mut total = 0usize;
        let mut pruned = 0u64;
        let mut seen_any = false;
        for gc in self.cluster.groups() {
            for member in gc.members() {
                if let Some((live, p)) = self.replica_gauges(*member) {
                    seen_any = true;
                    max = max.max(live);
                    total += live;
                    pruned += p;
                }
            }
        }
        if seen_any {
            metrics.set_gauge("live_records_max", max as f64);
            metrics.set_gauge("live_records_total", total as f64);
            metrics.set_gauge("pruned_total", pruned as f64);
        }
        metrics
    }

    fn replica_gauges(&self, p: ProcessId) -> Option<(usize, u64)> {
        if let Some(replica) = self.whitebox_replica(p) {
            return Some((replica.live_records(), replica.pruned_count()));
        }
        if let Some(replica) = self.baseline_replica(p) {
            return Some((replica.live_records(), replica.pruned_count()));
        }
        None
    }

    /// Number of message records resident at a replica (`None` for clients,
    /// unknown processes, or protocols without the inspection hook).
    pub fn live_records(&self, p: ProcessId) -> Option<usize> {
        self.replica_gauges(p).map(|(live, _)| live)
    }

    /// Per-replica excusal watermarks for the linearizability oracle: for
    /// every replica that recovered via checkpoint state transfer, the
    /// watermark its delivery progress was jumped to. History at or below it
    /// was installed, not replayed — pass this to
    /// [`KvHistory::check_excusing`](wbam_kvstore::KvHistory::check_excusing).
    pub fn transfer_excusals(
        &self,
    ) -> std::collections::BTreeMap<ProcessId, wbam_types::Timestamp> {
        let mut out = std::collections::BTreeMap::new();
        for gc in self.cluster.groups() {
            for member in gc.members() {
                let excused = if let Some(r) = self.whitebox_replica(*member) {
                    r.transfer_excused_below()
                } else if let Some(r) = self.baseline_replica(*member) {
                    r.transfer_excused_below()
                } else {
                    continue;
                };
                if excused > wbam_types::Timestamp::BOTTOM {
                    out.insert(*member, excused);
                }
            }
        }
        out
    }

    /// Per-replica sets of messages dropped on a `STABLE_PRUNED` notice —
    /// globally delivered history the replica will never apply locally. Pass
    /// alongside [`Self::transfer_excusals`] to
    /// [`KvHistory::check_excusing`](wbam_kvstore::KvHistory::check_excusing);
    /// the excusal is per message, so any other missed delivery stays a
    /// violation.
    pub fn drop_excusals(
        &self,
    ) -> std::collections::BTreeMap<ProcessId, std::collections::BTreeSet<MsgId>> {
        let mut out = std::collections::BTreeMap::new();
        for gc in self.cluster.groups() {
            for member in gc.members() {
                if let Some(r) = self.whitebox_replica(*member) {
                    if !r.pruned_dropped().is_empty() {
                        out.insert(*member, r.pruned_dropped().clone());
                    }
                }
            }
        }
        out
    }

    /// Submits a multicast from client `client_index` at time `at`, addressed
    /// to `dest`, with a zero-filled payload of `payload_len` bytes.
    /// Returns the message identifier.
    pub fn submit(
        &mut self,
        at: Duration,
        client_index: usize,
        dest: &[GroupId],
        payload_len: usize,
    ) -> MsgId {
        self.submit_with_payload(at, client_index, dest, vec![0u8; payload_len])
    }

    /// Submits a multicast carrying an application-defined payload (for
    /// example an encoded key-value-store command).
    pub fn submit_with_payload(
        &mut self,
        at: Duration,
        client_index: usize,
        dest: &[GroupId],
        payload: Vec<u8>,
    ) -> MsgId {
        let client = self.cluster.clients()[client_index];
        let seq = self.next_seq[client_index];
        self.next_seq[client_index] += 1;
        let id = MsgId::new(client, seq);
        let msg = AppMessage::new(
            id,
            Destination::new(dest.iter().copied()).expect("non-empty destination"),
            Payload::from(payload),
        );
        match &mut self.inner {
            SimInner::WhiteBox(s) => s.schedule_multicast(at, client, msg),
            SimInner::Baseline(s) => s.schedule_multicast(at, client, msg),
            SimInner::Skeen(s) => s.schedule_multicast(at, client, msg),
        }
        id
    }

    /// Schedules a crash of `process` at `at`.
    pub fn crash(&mut self, at: Duration, process: ProcessId) {
        match &mut self.inner {
            SimInner::WhiteBox(s) => s.schedule_crash(at, process),
            SimInner::Baseline(s) => s.schedule_crash(at, process),
            SimInner::Skeen(s) => s.schedule_crash(at, process),
        }
    }

    /// Schedules a restart of a crashed `process` at `at` (see
    /// [`Simulation::schedule_restart`]).
    pub fn restart(&mut self, at: Duration, process: ProcessId) {
        match &mut self.inner {
            SimInner::WhiteBox(s) => s.schedule_restart(at, process),
            SimInner::Baseline(s) => s.schedule_restart(at, process),
            SimInner::Skeen(s) => s.schedule_restart(at, process),
        }
    }

    /// All deliveries recorded so far (replica deliveries carry their group;
    /// client completions have `group == None`).
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        match &self.inner {
            SimInner::WhiteBox(s) => s.deliveries(),
            SimInner::Baseline(s) => s.deliveries(),
            SimInner::Skeen(s) => s.deliveries(),
        }
    }

    /// Read access to a white-box replica's state (via
    /// [`Node::as_any`](wbam_types::Node::as_any)); `None` for other
    /// protocols, clients, or unknown processes.
    pub fn whitebox_replica(&self, p: ProcessId) -> Option<&WhiteBoxReplica> {
        match &self.inner {
            SimInner::WhiteBox(s) => s.node(p)?.as_any()?.downcast_ref(),
            _ => None,
        }
    }

    /// Read access to a baseline (FT-Skeen / FastCast) replica's state;
    /// `None` for other protocols, clients, or unknown processes.
    pub fn baseline_replica(&self, p: ProcessId) -> Option<&BaselineReplica> {
        match &self.inner {
            SimInner::Baseline(s) => s.node(p)?.as_any()?.downcast_ref(),
            _ => None,
        }
    }

    /// The recorded white-box protocol trace, as consumed by the Figure 6
    /// invariant checkers in `wbam_core::invariants`. Returns `None` for
    /// other protocols; empty unless the spec enabled
    /// [`record_trace`](ClusterSpec::record_trace).
    pub fn whitebox_trace(&self) -> Option<Vec<SentMessage>> {
        match &self.inner {
            SimInner::WhiteBox(s) => Some(
                s.trace()
                    .iter()
                    .map(|e| SentMessage {
                        from: e.from,
                        to: e.to,
                        msg: e.msg.clone(),
                    })
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Tells `process` to start leader recovery at `at` (white-box protocol).
    pub fn become_leader(&mut self, at: Duration, process: ProcessId) {
        match &mut self.inner {
            SimInner::WhiteBox(s) => s.schedule_become_leader(at, process),
            SimInner::Baseline(s) => s.schedule_become_leader(at, process),
            SimInner::Skeen(s) => s.schedule_become_leader(at, process),
        }
    }

    /// Processes a single pending event. Returns `false` when the simulation
    /// is quiescent.
    pub fn step(&mut self) -> bool {
        match &mut self.inner {
            SimInner::WhiteBox(s) => s.step().is_some(),
            SimInner::Baseline(s) => s.step().is_some(),
            SimInner::Skeen(s) => s.step().is_some(),
        }
    }

    /// Runs until quiescent or until simulated time passes `horizon`.
    pub fn run_until_quiescent(&mut self, horizon: Duration) {
        match &mut self.inner {
            SimInner::WhiteBox(s) => {
                s.run_until_quiescent(horizon);
            }
            SimInner::Baseline(s) => {
                s.run_until_quiescent(horizon);
            }
            SimInner::Skeen(s) => {
                s.run_until_quiescent(horizon);
            }
        }
    }

    /// Drains newly observed *client completions*: deliveries recorded at
    /// client processes (the client's view of "my multicast finished").
    /// Returns `(client process, message)` pairs in observation order.
    pub fn drain_client_completions(&mut self) -> Vec<(ProcessId, MsgId)> {
        let records = match &self.inner {
            SimInner::WhiteBox(s) => s.deliveries(),
            SimInner::Baseline(s) => s.deliveries(),
            SimInner::Skeen(s) => s.deliveries(),
        };
        let mut out = Vec::new();
        while self.delivery_cursor < records.len() {
            let rec = &records[self.delivery_cursor];
            self.delivery_cursor += 1;
            if rec.group.is_none() {
                out.push((rec.process, rec.msg_id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Protocol::WhiteBox.label(), "WbCast");
        assert_eq!(Protocol::FastCast.label(), "FastCast");
        assert_eq!(Protocol::FtSkeen.label(), "Skeen");
        assert_eq!(Protocol::evaluated().len(), 3);
    }

    #[test]
    fn lan_and_wan_specs_match_the_evaluation_setup() {
        let lan = ClusterSpec::lan(100);
        assert_eq!(lan.num_groups, 10);
        assert_eq!(lan.group_size, 3);
        assert_eq!(lan.num_sites, 1);
        let wan = ClusterSpec::wan(100);
        assert_eq!(wan.num_sites, 3);
        let cfg = wan.cluster_config();
        // Each group has one replica per site.
        let g0 = cfg.group(GroupId(0)).unwrap();
        let sites: Vec<SiteId> = g0.members().iter().map(|m| cfg.site_of(*m)).collect();
        assert_eq!(sites, vec![SiteId(0), SiteId(1), SiteId(2)]);
    }

    #[test]
    fn whitebox_cluster_delivers_a_multicast() {
        let spec = ClusterSpec::constant_delta(2, 3, Duration::from_millis(5));
        let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);
        let id = sim.submit(Duration::ZERO, 0, &[GroupId(0), GroupId(1)], 20);
        sim.run_until_quiescent(Duration::from_secs(5));
        assert!(sim.metrics().is_partially_delivered(id));
        let completions = sim.drain_client_completions();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].1, id);
    }

    #[test]
    fn all_three_evaluated_protocols_deliver() {
        for protocol in Protocol::evaluated() {
            let spec = ClusterSpec::constant_delta(3, 3, Duration::from_millis(2));
            let mut sim = ProtocolSim::build(protocol, &spec);
            let id = sim.submit(Duration::ZERO, 0, &[GroupId(0), GroupId(2)], 20);
            sim.run_until_quiescent(Duration::from_secs(5));
            assert!(
                sim.metrics().is_partially_delivered(id),
                "{} failed to deliver",
                protocol.label()
            );
        }
    }

    #[test]
    fn skeen_cluster_requires_singleton_groups() {
        let spec = ClusterSpec::constant_delta(3, 1, Duration::from_millis(1));
        let mut sim = ProtocolSim::build(Protocol::Skeen, &spec);
        let id = sim.submit(Duration::ZERO, 0, &[GroupId(0), GroupId(1)], 20);
        sim.run_until_quiescent(Duration::from_secs(5));
        assert!(sim.metrics().is_partially_delivered(id));
    }

    #[test]
    #[should_panic(expected = "singleton")]
    fn skeen_with_replicated_groups_panics() {
        let spec = ClusterSpec::constant_delta(2, 3, Duration::from_millis(1));
        let _ = ProtocolSim::build(Protocol::Skeen, &spec);
    }
}
