//! Deterministic-runtime schedule explorer CLI.
//!
//! ```text
//! rt_explorer [--schedules N] [--seed S] [--no-minimize] [--out FILE]
//! rt_explorer --replay WBAM_SEED=rt1:<protocol>:<seed>
//! ```
//!
//! Runs `N` seeded interleavings of the deployed node event loop (rotating
//! over WbCast / FastCast / Skeen) through the virtual-clock
//! `DeterministicRuntime`, checking the Figure 6 invariants, the key-value
//! linearizability oracle and termination after every run. Any violation
//! prints a replayable `WBAM_SEED=rt1:…` token with a greedily minimized
//! crash schedule, optionally appends the token to `--out`, and makes the
//! process exit non-zero. `--replay` re-runs a single token and reports its
//! result (the digest covers every delivery record and the scheduler's
//! decision trace, so it is byte-for-byte reproducible).

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use wbam_harness::rt::{explore_rt, generate_rt_plan, run_rt_token, RtExplorerConfig, RtSeedToken};

struct Args {
    schedules: usize,
    seed: u64,
    minimize: bool,
    out: Option<String>,
    replay: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schedules: 200,
        seed: 42,
        minimize: true,
        out: None,
        replay: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--schedules" => {
                args.schedules = value("--schedules")?
                    .parse()
                    .map_err(|e| format!("--schedules: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--no-minimize" => args.minimize = false,
            "--out" => args.out = Some(value("--out")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--help" | "-h" => {
                return Err(
                    "usage: rt_explorer [--schedules N] [--seed S] [--no-minimize] \
                            [--out FILE] [--replay TOKEN]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn replay(token_str: &str) -> ExitCode {
    let token = match RtSeedToken::parse(token_str) {
        Ok(token) => token,
        Err(e) => {
            eprintln!("bad token: {e}");
            return ExitCode::from(2);
        }
    };
    let plan = generate_rt_plan(&token);
    println!("replaying {token}");
    println!(
        "  cluster: {} groups x {} replicas, {} clients, {} ops, {} crash/restart(s)",
        plan.num_groups,
        plan.group_size,
        plan.num_clients,
        plan.ops.len(),
        plan.crashes.len(),
    );
    for crash in &plan.crashes {
        println!(
            "  crash: {} at {:?} for {:?}",
            crash.node, crash.at, crash.down_for
        );
    }
    let report = run_rt_token(&token);
    println!(
        "  digest {:016x}; {}/{} ops completed, {} deliveries",
        report.digest, report.completed, report.ops, report.deliveries,
    );
    match report.violation {
        None => {
            println!("  OK: all invariants and the linearizability oracle hold");
            ExitCode::SUCCESS
        }
        Some(violation) => {
            println!("  VIOLATION: {violation}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if let Some(token) = &args.replay {
        return replay(token);
    }

    let config = RtExplorerConfig {
        schedules: args.schedules,
        base_seed: args.seed,
        minimize: args.minimize,
        ..RtExplorerConfig::default()
    };
    let started = Instant::now();
    let report = explore_rt(&config);
    let elapsed = started.elapsed();
    println!(
        "explored {} deployed-loop interleavings in {:.1?} (base seed {}): \
         {} ops submitted, {} completed; {} crash/restarts scheduled",
        report.schedules,
        elapsed,
        args.seed,
        report.total_ops,
        report.total_completed,
        report.crashes,
    );

    if report.findings.is_empty() {
        println!(
            "no violations: Figure 6 invariants, the linearizability oracle and \
             termination held on every interleaving"
        );
        return ExitCode::SUCCESS;
    }

    for finding in &report.findings {
        println!();
        println!("FAILING INTERLEAVING: {}", finding.token);
        println!("  {}", finding.description);
        if let Some(crashes) = &finding.minimized_crashes {
            println!("  minimized crash schedule: {crashes:?}");
        }
        println!(
            "  replay with: cargo run --release -p wbam-harness --bin rt_explorer -- --replay '{}'",
            finding.token
        );
    }
    if let Some(path) = &args.out {
        match std::fs::File::create(path) {
            Ok(mut file) => {
                for finding in &report.findings {
                    let _ = writeln!(file, "{}", finding.token);
                }
                println!(
                    "\nwrote {} failing seed(s) to {path}",
                    report.findings.len()
                );
            }
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    ExitCode::FAILURE
}
