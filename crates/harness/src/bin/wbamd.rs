//! `wbamd` — one WBAM cluster process (a replica or a client) over real TCP.
//!
//! ```text
//! wbamd --spec cluster.json --id N [--restart] [--wire binary|json]
//!       [--deliveries FILE] [--stdin-stop]
//!       [--multicast N [--outstanding K] [--dest g0,g1] [--payload BYTES]
//!        [--warmup W] [--first-seq S] [--summary FILE]]
//! ```
//!
//! Every process of a cluster is started with the same
//! [`DeploySpec`] JSON file and its own `--id`. `--wire` overrides the
//! spec's wire codec (compact binary by default, `json` for debuggable
//! frames); all processes must agree or the connection preamble rejects the
//! mismatch with a clear error. When the spec carries a `routes` matrix the
//! process dials its peers through those (proxied) addresses while still
//! listening on its own `addrs` entry — how the `net_chaos` harness
//! interposes its fault-injecting proxy on every link.
//! Replica processes run until stopped, appending one
//! [`DeliveryLine`] JSON line per delivery to
//! `--deliveries` (flushed per line, so an orchestrator can tail it and a
//! `SIGKILL` loses at most the in-flight line). `SIGTERM` — and stdin
//! reaching EOF, when the orchestrator opts in with `--stdin-stop` — stops a
//! replica *gracefully*: it drains the delivery log, writes a final
//! `graceful stop` stats line to stderr and exits 0, so a chaos run can tell
//! a clean stop from a crash. Re-deploying a killed replica
//! with `--restart` makes the fresh process rejoin its group through the
//! protocol's `Event::Restart` path: a fresh ballot via the `NEW_LEADER`
//! handshake, state re-synchronised from a quorum.
//!
//! Client processes (`--multicast`) drive a closed-loop workload: keep
//! `--outstanding` multicasts in flight until `--multicast` of them complete,
//! then write a [`ClientSummary`] JSON object to
//! `--summary` and exit 0. `--warmup` runs that many extra multicasts (same
//! closed loop, same destinations) *before* the measured window opens, so
//! connection dials and preamble handshakes land in the warm-up instead of
//! polluting the recorded throughput. `--first-seq` lets successive client
//! invocations of the same process id keep message identifiers unique.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::de::DeserializeOwned;
use serde::Serialize;
use wbam_harness::{ClientSummary, DeliveryLine, DeployRole, DeploySpec, LatencyStats};
use wbam_runtime::{BoxedNode, TcpNode};
use wbam_types::wire::to_json;
use wbam_types::{AppMessage, Destination, GroupId, MsgId, Payload, ProcessId, WbamError};

/// Safety horizon for a client run: if the cluster makes no progress for this
/// long, the client exits non-zero instead of hanging forever.
const CLIENT_STALL_TIMEOUT: Duration = Duration::from_secs(60);

/// How long startup retries a failing listener bind before giving up.
const BIND_RETRY_WINDOW: Duration = Duration::from_secs(3);

/// Spawns the node's TCP runtime, retrying transient listener-bind failures.
///
/// Orchestrators reserve "free" ports by bind-then-release, and between that
/// release and our bind, an *outgoing* connection of the same deployment (a
/// proxy dial, a client retry) can be assigned the very same port as its
/// ephemeral source port — making our bind fail with `EADDRINUSE` even
/// though nothing listens there. Such collisions clear as soon as that
/// connection closes, so a dying-on-first-error daemon turns a microscopic
/// timing race into a dead replica (seen live in a net-chaos sweep as a
/// replica exiting 1 at startup with an empty delivery log). `spawn` only
/// performs socket I/O while setting up the listener, so every `Io` error
/// here is a bind-path failure and worth the brief retry.
fn spawn_with_bind_retry<M: Serialize + DeserializeOwned + Send + 'static>(
    make_node: impl Fn() -> Result<BoxedNode<M>, WbamError>,
    addrs: &std::collections::BTreeMap<ProcessId, std::net::SocketAddr>,
    restart: bool,
    codec: wbam_types::wire::WireCodec,
) -> Result<TcpNode<M>, WbamError> {
    let begin = Instant::now();
    loop {
        match TcpNode::spawn_with_codec(make_node()?, addrs, restart, codec) {
            Ok(node) => return Ok(node),
            Err(WbamError::Io(e)) if begin.elapsed() < BIND_RETRY_WINDOW => {
                eprintln!("wbamd: listener bind failed ({e}); retrying");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
}

struct Args {
    spec: String,
    id: u32,
    restart: bool,
    wire: Option<String>,
    deliveries: Option<String>,
    stdin_stop: bool,
    multicast: Option<u64>,
    outstanding: u64,
    dest: Option<Vec<GroupId>>,
    payload: usize,
    warmup: u64,
    first_seq: u64,
    summary: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut spec = None;
    let mut id = None;
    let mut args = Args {
        spec: String::new(),
        id: 0,
        restart: false,
        wire: None,
        deliveries: None,
        stdin_stop: false,
        multicast: None,
        outstanding: 1,
        dest: None,
        payload: 20,
        warmup: 0,
        first_seq: 0,
        summary: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--spec" => spec = Some(value("--spec")?),
            "--id" => {
                id = Some(
                    value("--id")?
                        .parse::<u32>()
                        .map_err(|e| format!("--id: {e}"))?,
                )
            }
            "--restart" => args.restart = true,
            "--wire" => {
                let name = value("--wire")?;
                if wbam_types::wire::WireCodec::from_name(&name).is_none() {
                    return Err(format!("--wire {name:?}: expected \"binary\" or \"json\""));
                }
                args.wire = Some(name);
            }
            "--deliveries" => args.deliveries = Some(value("--deliveries")?),
            "--stdin-stop" => args.stdin_stop = true,
            "--multicast" => {
                let count: u64 = value("--multicast")?
                    .parse()
                    .map_err(|e| format!("--multicast: {e}"))?;
                if count == 0 {
                    return Err("--multicast must be at least 1".to_string());
                }
                args.multicast = Some(count);
            }
            "--outstanding" => {
                args.outstanding = value("--outstanding")?
                    .parse()
                    .map_err(|e| format!("--outstanding: {e}"))?;
                if args.outstanding == 0 {
                    return Err("--outstanding must be at least 1".to_string());
                }
            }
            "--dest" => {
                let groups = value("--dest")?
                    .split(',')
                    .map(|g| g.trim().parse::<u32>().map(GroupId))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("--dest: {e}"))?;
                args.dest = Some(groups);
            }
            "--payload" => {
                args.payload = value("--payload")?
                    .parse()
                    .map_err(|e| format!("--payload: {e}"))?;
            }
            "--warmup" => {
                args.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--first-seq" => {
                args.first_seq = value("--first-seq")?
                    .parse()
                    .map_err(|e| format!("--first-seq: {e}"))?;
            }
            "--summary" => args.summary = Some(value("--summary")?),
            "--help" | "-h" => {
                return Err(
                    "usage: wbamd --spec FILE --id N [--restart] [--wire binary|json] \
                     [--deliveries FILE] [--stdin-stop] \
                     [--multicast N [--outstanding K] [--dest g0,g1] [--payload BYTES] \
                     [--warmup W] [--first-seq S] [--summary FILE]]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    args.spec = spec.ok_or("--spec is required")?;
    args.id = id.ok_or("--id is required")?;
    Ok(args)
}

/// A line-buffered JSONL sink; `None` path writes nowhere.
struct JsonlSink {
    file: Option<std::fs::File>,
}

impl JsonlSink {
    fn open(path: Option<&str>) -> Result<Self, WbamError> {
        let file = match path {
            None => None,
            Some(p) => Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .map_err(WbamError::from)?,
            ),
        };
        Ok(JsonlSink { file })
    }

    fn write<T: Serialize>(&mut self, record: &T) -> Result<(), WbamError> {
        let Some(file) = self.file.as_mut() else {
            return Ok(());
        };
        let line = to_json(record)?;
        writeln!(file, "{line}").map_err(WbamError::from)?;
        file.flush().map_err(WbamError::from)
    }
}

/// The ways a replica process is asked to stop gracefully: `SIGTERM`
/// (always handled, via the `netpoll` flag) and stdin reaching EOF (only
/// when the orchestrator passes `--stdin-stop` — many test runners hand
/// children an already-closed stdin, so EOF alone must not mean "exit").
struct StopSignal {
    term: Option<&'static AtomicBool>,
    stdin_eof: Arc<AtomicBool>,
}

impl StopSignal {
    fn install(stdin_stop: bool) -> StopSignal {
        #[cfg(unix)]
        let term = match netpoll::termination_flag() {
            Ok(flag) => Some(flag),
            Err(e) => {
                eprintln!("wbamd: cannot install SIGTERM handler: {e}");
                None
            }
        };
        #[cfg(not(unix))]
        let term = None;

        let stdin_eof = Arc::new(AtomicBool::new(false));
        if stdin_stop {
            let flag = Arc::clone(&stdin_eof);
            // Reads (and discards) stdin until EOF; the thread is detached
            // and dies with the process.
            std::thread::spawn(move || {
                let mut stdin = std::io::stdin().lock();
                let mut buf = [0u8; 256];
                loop {
                    match std::io::Read::read(&mut stdin, &mut buf) {
                        Ok(0) => break,
                        Ok(_) => continue,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
                flag.store(true, Ordering::Relaxed);
            });
        }
        StopSignal { term, stdin_eof }
    }

    fn stopped(&self) -> Option<&'static str> {
        if self.term.is_some_and(|f| f.load(Ordering::Relaxed)) {
            Some("SIGTERM")
        } else if self.stdin_eof.load(Ordering::Relaxed) {
            Some("stdin EOF")
        } else {
            None
        }
    }
}

/// Runs a replica process: drain deliveries until asked to stop, blocking on
/// the delivery log's condvar between batches (the short timeout only bounds
/// how often the stop flags are checked). Transport frame drops (a peer down
/// long enough to fill its output buffer) are surfaced on stderr as they
/// grow — a deployed replica must never lose frames silently. A graceful
/// stop performs one final drain, writes a `graceful stop` stats line and
/// returns `Ok`, so orchestrators can tell it from a crash by the exit
/// status alone.
fn run_replica<M>(node: TcpNode<M>, mut sink: JsonlSink, stop: &StopSignal) -> Result<(), WbamError>
where
    M: Serialize + DeserializeOwned + Send + 'static,
{
    let id = node.id();
    let mut seen = 0u64;
    let mut reported_drops = 0u64;
    let reason = loop {
        if let Some(reason) = stop.stopped() {
            break reason;
        }
        node.wait_for_total(seen + 1, Duration::from_millis(250))?;
        for d in node.drain_deliveries()? {
            seen += 1;
            sink.write(&DeliveryLine::new(
                id,
                d.delivery.msg.id,
                d.delivery.global_ts,
                d.elapsed,
            ))?;
        }
        let dropped = node.dropped_frames();
        if dropped > reported_drops {
            eprintln!(
                "wbamd: p{} stats: delivered={seen} dropped_frames={dropped} by_peer={:?}",
                id.0,
                node.dropped_frames_by_peer()
            );
            reported_drops = dropped;
        }
    };
    // Final drain: deliveries the protocol completed between the last wait
    // and the stop request still reach the log before the process exits.
    for d in node.drain_deliveries()? {
        seen += 1;
        sink.write(&DeliveryLine::new(
            id,
            d.delivery.msg.id,
            d.delivery.global_ts,
            d.elapsed,
        ))?;
    }
    let dropped = node.dropped_frames();
    eprintln!(
        "wbamd: p{} graceful stop ({reason}): delivered={seen} dropped_frames={dropped} by_peer={:?}",
        id.0,
        node.dropped_frames_by_peer()
    );
    node.shutdown();
    Ok(())
}

/// Runs a client process closed-loop and returns its summary.
fn run_client<M>(
    node: TcpNode<M>,
    args: &Args,
    dest: Vec<GroupId>,
    mut sink: JsonlSink,
) -> Result<ClientSummary, WbamError>
where
    M: Serialize + DeserializeOwned + Send + 'static,
{
    let id = node.id();
    let total = args.multicast.unwrap_or(0);
    let mut next_seq = args.first_seq;
    let mut submit_times: std::collections::BTreeMap<MsgId, Duration> =
        std::collections::BTreeMap::new();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut first_submit: Option<Duration> = None;
    let mut last_completion = Duration::ZERO;
    let mut last_progress = Instant::now();
    let mut seen = 0u64;

    let submit_one = |node: &TcpNode<M>,
                      next_seq: &mut u64,
                      submit_times: &mut std::collections::BTreeMap<MsgId, Duration>,
                      first_submit: &mut Option<Duration>|
     -> Result<(), WbamError> {
        let msg_id = MsgId::new(id, *next_seq);
        *next_seq += 1;
        let now = node.uptime();
        first_submit.get_or_insert(now);
        submit_times.insert(msg_id, now);
        node.submit(AppMessage::new(
            msg_id,
            Destination::new(dest.iter().copied()).expect("non-empty destination"),
            Payload::from(vec![0u8; args.payload]),
        ))
    };

    // Two closed-loop phases over the same machinery: an unmeasured warm-up
    // (establishes every connection and preamble handshake on the request
    // path, fully drained before the clock starts) and the measured run. The
    // first recorded completion therefore never pays a dial.
    for (count, measured) in [(args.warmup, false), (total, true)] {
        if count == 0 {
            continue;
        }
        if measured {
            latencies.clear();
            first_submit = None;
            last_completion = Duration::ZERO;
        }
        let mut submitted = 0u64;
        let mut done = 0u64;
        while submitted < count && submitted < args.outstanding {
            submit_one(&node, &mut next_seq, &mut submit_times, &mut first_submit)?;
            submitted += 1;
        }
        while done < count {
            // Block on the delivery log's condvar (no poll-loop latency); the
            // short timeout only bounds how often the stall check runs.
            node.wait_for_total(seen + 1, Duration::from_millis(100))?;
            let completions = node.drain_deliveries()?;
            if completions.is_empty() {
                if last_progress.elapsed() > CLIENT_STALL_TIMEOUT {
                    return Err(WbamError::NotReady {
                        process: id,
                        reason: format!(
                            "no completion for {CLIENT_STALL_TIMEOUT:?} ({done} of {count} done{})",
                            if measured { "" } else { " in warm-up" }
                        ),
                    });
                }
                continue;
            }
            seen += completions.len() as u64;
            last_progress = Instant::now();
            for d in completions {
                let msg_id = d.delivery.msg.id;
                if measured {
                    sink.write(&DeliveryLine::new(
                        id,
                        msg_id,
                        d.delivery.global_ts,
                        d.elapsed,
                    ))?;
                }
                let Some(at) = submit_times.remove(&msg_id) else {
                    continue; // duplicate completion
                };
                done += 1;
                if measured {
                    latencies.push(d.elapsed.saturating_sub(at));
                    last_completion = d.elapsed;
                }
                if submitted < count {
                    submit_one(&node, &mut next_seq, &mut submit_times, &mut first_submit)?;
                    submitted += 1;
                }
            }
        }
    }

    let dropped_frames = node.dropped_frames();
    node.shutdown();
    let completed = latencies.len() as u64;
    let elapsed = last_completion.saturating_sub(first_submit.unwrap_or(Duration::ZERO));
    let stats = LatencyStats::from_sample(&mut latencies).ok_or_else(|| WbamError::NotReady {
        process: id,
        reason: "closed-loop run recorded no latencies".to_string(),
    })?;
    Ok(ClientSummary {
        process: id.0,
        completed,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_msg_s: if elapsed.is_zero() {
            0.0
        } else {
            completed as f64 / elapsed.as_secs_f64()
        },
        latency_p50_ms: stats.p50_ms,
        latency_p99_ms: stats.p99_ms,
        latency_mean_ms: stats.mean_ms,
        dropped_frames,
    })
}

fn run() -> Result<(), WbamError> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wbamd: {e}");
            std::process::exit(2);
        }
    };
    let spec_json = std::fs::read_to_string(&args.spec).map_err(WbamError::from)?;
    let spec = DeploySpec::from_json(&spec_json)?;
    let id = ProcessId(args.id);
    let role = spec.role_of(id)?;
    // Listen on the own `addrs` entry, dial peers through `routes` when the
    // spec interposes a proxy on the links.
    let addrs = spec.dial_map(id)?;
    let codec = match &args.wire {
        Some(name) => {
            wbam_types::wire::WireCodec::from_name(name).expect("validated by parse_args")
        }
        None => spec.wire_codec()?,
    };
    let sink = JsonlSink::open(args.deliveries.as_deref())?;
    let dest = args
        .dest
        .clone()
        .unwrap_or_else(|| spec.cluster_config().group_ids());

    match (role, args.multicast) {
        (DeployRole::Replica(_), Some(_)) => Err(WbamError::NotReady {
            process: id,
            reason: "--multicast is for client processes".to_string(),
        }),
        (DeployRole::Client, None) => Err(WbamError::NotReady {
            process: id,
            reason: "client processes need --multicast".to_string(),
        }),
        (DeployRole::Replica(_), None) => {
            let stop = StopSignal::install(args.stdin_stop);
            match spec.protocol()? {
                wbam_harness::Protocol::WhiteBox => run_replica(
                    spawn_with_bind_retry(
                        || Ok(Box::new(spec.whitebox_replica(id)?) as BoxedNode<_>),
                        &addrs,
                        args.restart,
                        codec,
                    )?,
                    sink,
                    &stop,
                ),
                _ => run_replica(
                    spawn_with_bind_retry(
                        || Ok(Box::new(spec.baseline_replica(id)?) as BoxedNode<_>),
                        &addrs,
                        args.restart,
                        codec,
                    )?,
                    sink,
                    &stop,
                ),
            }
        }
        (DeployRole::Client, Some(_)) => {
            let summary = match spec.protocol()? {
                wbam_harness::Protocol::WhiteBox => run_client(
                    spawn_with_bind_retry(
                        || Ok(Box::new(spec.whitebox_client(id)?) as BoxedNode<_>),
                        &addrs,
                        args.restart,
                        codec,
                    )?,
                    &args,
                    dest,
                    sink,
                )?,
                _ => run_client(
                    spawn_with_bind_retry(
                        || Ok(Box::new(spec.baseline_client(id)?) as BoxedNode<_>),
                        &addrs,
                        args.restart,
                        codec,
                    )?,
                    &args,
                    dest,
                    sink,
                )?,
            };
            if let Some(path) = &args.summary {
                std::fs::write(path, to_json(&summary)?).map_err(WbamError::from)?;
            }
            println!("{}", to_json(&summary)?);
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wbamd: {e}");
            ExitCode::FAILURE
        }
    }
}
