//! `wbamd` — one WBAM cluster process (a replica or a client) over real TCP.
//!
//! ```text
//! wbamd --spec cluster.json --id N [--restart] [--wire binary|json]
//!       [--deliveries FILE]
//!       [--multicast N [--outstanding K] [--dest g0,g1] [--payload BYTES]
//!        [--warmup W] [--first-seq S] [--summary FILE]]
//! ```
//!
//! Every process of a cluster is started with the same
//! [`DeploySpec`] JSON file and its own `--id`. `--wire` overrides the
//! spec's wire codec (compact binary by default, `json` for debuggable
//! frames); all processes must agree or the connection preamble rejects the
//! mismatch with a clear error.
//! Replica processes run until killed, appending one
//! [`DeliveryLine`] JSON line per delivery to
//! `--deliveries` (flushed per line, so an orchestrator can tail it and a
//! `SIGKILL` loses at most the in-flight line). Re-deploying a killed replica
//! with `--restart` makes the fresh process rejoin its group through the
//! protocol's `Event::Restart` path: a fresh ballot via the `NEW_LEADER`
//! handshake, state re-synchronised from a quorum.
//!
//! Client processes (`--multicast`) drive a closed-loop workload: keep
//! `--outstanding` multicasts in flight until `--multicast` of them complete,
//! then write a [`ClientSummary`] JSON object to
//! `--summary` and exit 0. `--warmup` runs that many extra multicasts (same
//! closed loop, same destinations) *before* the measured window opens, so
//! connection dials and preamble handshakes land in the warm-up instead of
//! polluting the recorded throughput. `--first-seq` lets successive client
//! invocations of the same process id keep message identifiers unique.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use serde::de::DeserializeOwned;
use serde::Serialize;
use wbam_harness::{ClientSummary, DeliveryLine, DeployRole, DeploySpec, LatencyStats};
use wbam_runtime::{BoxedNode, TcpNode};
use wbam_types::wire::to_json;
use wbam_types::{AppMessage, Destination, GroupId, MsgId, Payload, ProcessId, WbamError};

/// Safety horizon for a client run: if the cluster makes no progress for this
/// long, the client exits non-zero instead of hanging forever.
const CLIENT_STALL_TIMEOUT: Duration = Duration::from_secs(60);

struct Args {
    spec: String,
    id: u32,
    restart: bool,
    wire: Option<String>,
    deliveries: Option<String>,
    multicast: Option<u64>,
    outstanding: u64,
    dest: Option<Vec<GroupId>>,
    payload: usize,
    warmup: u64,
    first_seq: u64,
    summary: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut spec = None;
    let mut id = None;
    let mut args = Args {
        spec: String::new(),
        id: 0,
        restart: false,
        wire: None,
        deliveries: None,
        multicast: None,
        outstanding: 1,
        dest: None,
        payload: 20,
        warmup: 0,
        first_seq: 0,
        summary: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--spec" => spec = Some(value("--spec")?),
            "--id" => {
                id = Some(
                    value("--id")?
                        .parse::<u32>()
                        .map_err(|e| format!("--id: {e}"))?,
                )
            }
            "--restart" => args.restart = true,
            "--wire" => {
                let name = value("--wire")?;
                if wbam_types::wire::WireCodec::from_name(&name).is_none() {
                    return Err(format!("--wire {name:?}: expected \"binary\" or \"json\""));
                }
                args.wire = Some(name);
            }
            "--deliveries" => args.deliveries = Some(value("--deliveries")?),
            "--multicast" => {
                let count: u64 = value("--multicast")?
                    .parse()
                    .map_err(|e| format!("--multicast: {e}"))?;
                if count == 0 {
                    return Err("--multicast must be at least 1".to_string());
                }
                args.multicast = Some(count);
            }
            "--outstanding" => {
                args.outstanding = value("--outstanding")?
                    .parse()
                    .map_err(|e| format!("--outstanding: {e}"))?;
                if args.outstanding == 0 {
                    return Err("--outstanding must be at least 1".to_string());
                }
            }
            "--dest" => {
                let groups = value("--dest")?
                    .split(',')
                    .map(|g| g.trim().parse::<u32>().map(GroupId))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("--dest: {e}"))?;
                args.dest = Some(groups);
            }
            "--payload" => {
                args.payload = value("--payload")?
                    .parse()
                    .map_err(|e| format!("--payload: {e}"))?;
            }
            "--warmup" => {
                args.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--first-seq" => {
                args.first_seq = value("--first-seq")?
                    .parse()
                    .map_err(|e| format!("--first-seq: {e}"))?;
            }
            "--summary" => args.summary = Some(value("--summary")?),
            "--help" | "-h" => {
                return Err(
                    "usage: wbamd --spec FILE --id N [--restart] [--wire binary|json] \
                     [--deliveries FILE] \
                     [--multicast N [--outstanding K] [--dest g0,g1] [--payload BYTES] \
                     [--warmup W] [--first-seq S] [--summary FILE]]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    args.spec = spec.ok_or("--spec is required")?;
    args.id = id.ok_or("--id is required")?;
    Ok(args)
}

/// A line-buffered JSONL sink; `None` path writes nowhere.
struct JsonlSink {
    file: Option<std::fs::File>,
}

impl JsonlSink {
    fn open(path: Option<&str>) -> Result<Self, WbamError> {
        let file = match path {
            None => None,
            Some(p) => Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .map_err(WbamError::from)?,
            ),
        };
        Ok(JsonlSink { file })
    }

    fn write<T: Serialize>(&mut self, record: &T) -> Result<(), WbamError> {
        let Some(file) = self.file.as_mut() else {
            return Ok(());
        };
        let line = to_json(record)?;
        writeln!(file, "{line}").map_err(WbamError::from)?;
        file.flush().map_err(WbamError::from)
    }
}

/// Runs a replica process: drain deliveries forever (until killed), blocking
/// on the delivery log's condvar between batches. Transport frame drops (a
/// peer down long enough to fill its output buffer) are surfaced on stderr
/// as they grow — a deployed replica must never lose frames silently.
fn run_replica<M>(node: TcpNode<M>, mut sink: JsonlSink) -> Result<(), WbamError>
where
    M: Serialize + DeserializeOwned + Send + 'static,
{
    let id = node.id();
    let mut seen = 0u64;
    let mut reported_drops = 0u64;
    loop {
        node.wait_for_total(seen + 1, Duration::from_secs(3600))?;
        for d in node.drain_deliveries()? {
            seen += 1;
            sink.write(&DeliveryLine::new(
                id,
                d.delivery.msg.id,
                d.delivery.global_ts,
                d.elapsed,
            ))?;
        }
        let dropped = node.dropped_frames();
        if dropped > reported_drops {
            eprintln!(
                "wbamd: p{} stats: delivered={seen} dropped_frames={dropped} by_peer={:?}",
                id.0,
                node.dropped_frames_by_peer()
            );
            reported_drops = dropped;
        }
    }
}

/// Runs a client process closed-loop and returns its summary.
fn run_client<M>(
    node: TcpNode<M>,
    args: &Args,
    dest: Vec<GroupId>,
    mut sink: JsonlSink,
) -> Result<ClientSummary, WbamError>
where
    M: Serialize + DeserializeOwned + Send + 'static,
{
    let id = node.id();
    let total = args.multicast.unwrap_or(0);
    let mut next_seq = args.first_seq;
    let mut submit_times: std::collections::BTreeMap<MsgId, Duration> =
        std::collections::BTreeMap::new();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut first_submit: Option<Duration> = None;
    let mut last_completion = Duration::ZERO;
    let mut last_progress = Instant::now();
    let mut seen = 0u64;

    let submit_one = |node: &TcpNode<M>,
                      next_seq: &mut u64,
                      submit_times: &mut std::collections::BTreeMap<MsgId, Duration>,
                      first_submit: &mut Option<Duration>|
     -> Result<(), WbamError> {
        let msg_id = MsgId::new(id, *next_seq);
        *next_seq += 1;
        let now = node.uptime();
        first_submit.get_or_insert(now);
        submit_times.insert(msg_id, now);
        node.submit(AppMessage::new(
            msg_id,
            Destination::new(dest.iter().copied()).expect("non-empty destination"),
            Payload::from(vec![0u8; args.payload]),
        ))
    };

    // Two closed-loop phases over the same machinery: an unmeasured warm-up
    // (establishes every connection and preamble handshake on the request
    // path, fully drained before the clock starts) and the measured run. The
    // first recorded completion therefore never pays a dial.
    for (count, measured) in [(args.warmup, false), (total, true)] {
        if count == 0 {
            continue;
        }
        if measured {
            latencies.clear();
            first_submit = None;
            last_completion = Duration::ZERO;
        }
        let mut submitted = 0u64;
        let mut done = 0u64;
        while submitted < count && submitted < args.outstanding {
            submit_one(&node, &mut next_seq, &mut submit_times, &mut first_submit)?;
            submitted += 1;
        }
        while done < count {
            // Block on the delivery log's condvar (no poll-loop latency); the
            // short timeout only bounds how often the stall check runs.
            node.wait_for_total(seen + 1, Duration::from_millis(100))?;
            let completions = node.drain_deliveries()?;
            if completions.is_empty() {
                if last_progress.elapsed() > CLIENT_STALL_TIMEOUT {
                    return Err(WbamError::NotReady {
                        process: id,
                        reason: format!(
                            "no completion for {CLIENT_STALL_TIMEOUT:?} ({done} of {count} done{})",
                            if measured { "" } else { " in warm-up" }
                        ),
                    });
                }
                continue;
            }
            seen += completions.len() as u64;
            last_progress = Instant::now();
            for d in completions {
                let msg_id = d.delivery.msg.id;
                if measured {
                    sink.write(&DeliveryLine::new(
                        id,
                        msg_id,
                        d.delivery.global_ts,
                        d.elapsed,
                    ))?;
                }
                let Some(at) = submit_times.remove(&msg_id) else {
                    continue; // duplicate completion
                };
                done += 1;
                if measured {
                    latencies.push(d.elapsed.saturating_sub(at));
                    last_completion = d.elapsed;
                }
                if submitted < count {
                    submit_one(&node, &mut next_seq, &mut submit_times, &mut first_submit)?;
                    submitted += 1;
                }
            }
        }
    }

    let dropped_frames = node.dropped_frames();
    node.shutdown();
    let completed = latencies.len() as u64;
    let elapsed = last_completion.saturating_sub(first_submit.unwrap_or(Duration::ZERO));
    let stats = LatencyStats::from_sample(&mut latencies).ok_or_else(|| WbamError::NotReady {
        process: id,
        reason: "closed-loop run recorded no latencies".to_string(),
    })?;
    Ok(ClientSummary {
        process: id.0,
        completed,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_msg_s: if elapsed.is_zero() {
            0.0
        } else {
            completed as f64 / elapsed.as_secs_f64()
        },
        latency_p50_ms: stats.p50_ms,
        latency_p99_ms: stats.p99_ms,
        latency_mean_ms: stats.mean_ms,
        dropped_frames,
    })
}

fn run() -> Result<(), WbamError> {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wbamd: {e}");
            std::process::exit(2);
        }
    };
    let spec_json = std::fs::read_to_string(&args.spec).map_err(WbamError::from)?;
    let spec = DeploySpec::from_json(&spec_json)?;
    let id = ProcessId(args.id);
    let role = spec.role_of(id)?;
    let addrs = spec.addr_map()?;
    let codec = match &args.wire {
        Some(name) => {
            wbam_types::wire::WireCodec::from_name(name).expect("validated by parse_args")
        }
        None => spec.wire_codec()?,
    };
    let sink = JsonlSink::open(args.deliveries.as_deref())?;
    let dest = args
        .dest
        .clone()
        .unwrap_or_else(|| spec.cluster_config().group_ids());

    match (role, args.multicast) {
        (DeployRole::Replica(_), Some(_)) => Err(WbamError::NotReady {
            process: id,
            reason: "--multicast is for client processes".to_string(),
        }),
        (DeployRole::Client, None) => Err(WbamError::NotReady {
            process: id,
            reason: "client processes need --multicast".to_string(),
        }),
        (DeployRole::Replica(_), None) => match spec.protocol()? {
            wbam_harness::Protocol::WhiteBox => {
                let node: BoxedNode<_> = Box::new(spec.whitebox_replica(id)?);
                run_replica(
                    TcpNode::spawn_with_codec(node, &addrs, args.restart, codec)?,
                    sink,
                )
            }
            _ => {
                let node: BoxedNode<_> = Box::new(spec.baseline_replica(id)?);
                run_replica(
                    TcpNode::spawn_with_codec(node, &addrs, args.restart, codec)?,
                    sink,
                )
            }
        },
        (DeployRole::Client, Some(_)) => {
            let summary = match spec.protocol()? {
                wbam_harness::Protocol::WhiteBox => {
                    let node: BoxedNode<_> = Box::new(spec.whitebox_client(id)?);
                    run_client(
                        TcpNode::spawn_with_codec(node, &addrs, args.restart, codec)?,
                        &args,
                        dest,
                        sink,
                    )?
                }
                _ => {
                    let node: BoxedNode<_> = Box::new(spec.baseline_client(id)?);
                    run_client(
                        TcpNode::spawn_with_codec(node, &addrs, args.restart, codec)?,
                        &args,
                        dest,
                        sink,
                    )?
                }
            };
            if let Some(path) = &args.summary {
                std::fs::write(path, to_json(&summary)?).map_err(WbamError::from)?;
            }
            println!("{}", to_json(&summary)?);
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wbamd: {e}");
            ExitCode::FAILURE
        }
    }
}
