//! Seeded schedule explorer CLI.
//!
//! ```text
//! explorer [--schedules N] [--seed S] [--no-minimize] [--out FILE]
//! explorer --replay WBAM_SEED=v1:<protocol>:<seed>
//! ```
//!
//! Runs `N` seeded schedules (rotating over WbCast / FastCast / Skeen) with
//! randomized workloads and nemesis fault plans, checking the Figure 6
//! invariants and the key-value store linearizability oracle after every run.
//! Any violation prints a replayable `WBAM_SEED=…` token and a greedily
//! minimized nemesis plan, optionally appends the token to `--out`, and makes
//! the process exit non-zero. `--replay` re-runs a single token and reports
//! its result (the digest is byte-for-byte reproducible).

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use wbam_harness::explorer::{explore, generate_schedule, run_token, ExplorerConfig, SeedToken};

struct Args {
    schedules: usize,
    seed: u64,
    minimize: bool,
    out: Option<String>,
    replay: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schedules: 200,
        seed: 42,
        minimize: true,
        out: None,
        replay: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--schedules" => {
                args.schedules = value("--schedules")?
                    .parse()
                    .map_err(|e| format!("--schedules: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--no-minimize" => args.minimize = false,
            "--out" => args.out = Some(value("--out")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--help" | "-h" => {
                return Err(
                    "usage: explorer [--schedules N] [--seed S] [--no-minimize] \
                            [--out FILE] [--replay TOKEN]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn replay(token_str: &str) -> ExitCode {
    let token = match SeedToken::parse(token_str) {
        Ok(token) => token,
        Err(e) => {
            eprintln!("bad token: {e}");
            return ExitCode::from(2);
        }
    };
    let schedule = generate_schedule(&token);
    println!("replaying {token}");
    println!(
        "  cluster: {} groups x {} replicas, {} clients, {} ops, batching {}, compaction {}",
        schedule.spec.num_groups,
        schedule.spec.group_size,
        schedule.spec.num_clients,
        schedule.ops.len(),
        if schedule.spec.batch_delay.is_zero() {
            "off".to_string()
        } else {
            format!("{}", schedule.spec.max_batch)
        },
        if schedule.spec.compaction_interval == 0 {
            "off".to_string()
        } else {
            format!(
                "every {} (lag {})",
                schedule.spec.compaction_interval, schedule.spec.compaction_lag
            )
        },
    );
    println!("  nemesis: {:?}", schedule.spec.nemesis);
    let report = run_token(&token);
    println!(
        "  digest {:016x}; {}/{} ops completed, {} deliveries, {} dropped, {} duplicated",
        report.digest,
        report.completed,
        report.ops,
        report.deliveries,
        report.nemesis_dropped,
        report.nemesis_duplicated,
    );
    match report.violation {
        None => {
            println!("  OK: all invariants and the linearizability oracle hold");
            ExitCode::SUCCESS
        }
        Some(violation) => {
            println!("  VIOLATION: {violation}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if let Some(token) = &args.replay {
        return replay(token);
    }

    let config = ExplorerConfig {
        schedules: args.schedules,
        base_seed: args.seed,
        minimize: args.minimize,
        ..ExplorerConfig::default()
    };
    let started = Instant::now();
    let report = explore(&config);
    let elapsed = started.elapsed();
    println!(
        "explored {} schedules in {:.1?} (base seed {}): {} ops submitted, {} completed; \
         {} crashes, {} partitions, {} messages dropped, {} duplicated",
        report.schedules,
        elapsed,
        args.seed,
        report.total_ops,
        report.total_completed,
        report.crashes,
        report.partitions,
        report.nemesis_dropped,
        report.nemesis_duplicated,
    );

    if report.findings.is_empty() {
        println!("no violations: Figure 6 invariants and the linearizability oracle held on every schedule");
        return ExitCode::SUCCESS;
    }

    for finding in &report.findings {
        println!();
        println!("FAILING SCHEDULE: {}", finding.token);
        println!("  {}", finding.description);
        if let Some(plan) = &finding.minimized {
            println!("  minimized nemesis plan: {plan:?}");
        }
        println!(
            "  replay with: cargo run --release -p wbam-harness --bin explorer -- --replay '{}'",
            finding.token
        );
    }
    if let Some(path) = &args.out {
        match std::fs::File::create(path) {
            Ok(mut file) => {
                for finding in &report.findings {
                    let _ = writeln!(file, "{}", finding.token);
                }
                println!(
                    "\nwrote {} failing seed(s) to {path}",
                    report.findings.len()
                );
            }
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    ExitCode::FAILURE
}
