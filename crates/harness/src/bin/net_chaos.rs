//! Deployed chaos sweep CLI: seeded fault plans against live `wbamd` clusters.
//!
//! ```text
//! net_chaos [--plans N] [--base-seed S] [--messages M] [--wire binary|json|both]
//!           [--out FILE] [--logs DIR] [--wbamd PATH]
//! net_chaos --seed WBAM_NET_SEED=n1:WbCast:<hex> [--messages M] [--wire ...]
//! ```
//!
//! Each plan derives a complete experiment from one seed — link drops /
//! duplicates / delays, one asymmetric-capable partition with heal, one
//! SIGKILL with `--restart` redeploy, sometimes a SIGSTOP/SIGCONT pause, and
//! a key-value workload — and runs it against a real 2-group × 3-replica
//! cluster of `wbamd` OS processes whose every TCP link passes through the
//! nemesis proxy. The drained delivery logs are checked against the Figure 6
//! agreement invariants and the linearizability oracle. Any violation prints
//! the replayable `WBAM_NET_SEED=…` token, keeps the delivery logs, and
//! makes the process exit non-zero; `--out` additionally appends failing
//! tokens to a file for CI artifact upload.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use wbam_types::wire::WireCodec;

use wbam_harness::chaos::net_schedule_token;
use wbam_harness::{run_net_token, NetChaosConfig, NetChaosReport, NetSeedToken};

struct Args {
    plans: usize,
    base_seed: u64,
    seed: Option<String>,
    messages: Option<usize>,
    wires: Vec<WireCodec>,
    out: Option<String>,
    logs: Option<PathBuf>,
    wbamd: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        plans: 5,
        base_seed: 42,
        seed: None,
        messages: None,
        wires: vec![WireCodec::default()],
        out: None,
        logs: None,
        wbamd: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--plans" => {
                args.plans = value("--plans")?
                    .parse()
                    .map_err(|e| format!("--plans: {e}"))?;
            }
            "--base-seed" => {
                args.base_seed = value("--base-seed")?
                    .parse()
                    .map_err(|e| format!("--base-seed: {e}"))?;
            }
            "--seed" => args.seed = Some(value("--seed")?),
            "--messages" => {
                args.messages = Some(
                    value("--messages")?
                        .parse()
                        .map_err(|e| format!("--messages: {e}"))?,
                );
            }
            "--wire" => {
                let name = value("--wire")?;
                args.wires = if name == "both" {
                    vec![WireCodec::Binary, WireCodec::Json]
                } else {
                    vec![WireCodec::from_name(&name)
                        .ok_or_else(|| format!("--wire: unknown codec `{name}`"))?]
                };
            }
            "--out" => args.out = Some(value("--out")?),
            "--logs" => args.logs = Some(PathBuf::from(value("--logs")?)),
            "--wbamd" => args.wbamd = Some(PathBuf::from(value("--wbamd")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: net_chaos [--plans N] [--base-seed S] [--seed TOKEN] \
                     [--messages M] [--wire binary|json|both] [--out FILE] \
                     [--logs DIR] [--wbamd PATH]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn describe(report: &NetChaosReport, wire: WireCodec, elapsed: std::time::Duration) {
    println!(
        "  [{}] digest {:016x}: {}/{} ops completed, {} log lines, {} reads checked in {:.1?}",
        wire.name(),
        report.plan_digest,
        report.completed,
        report.ops,
        report.delivery_lines,
        report.checked_reads,
        elapsed,
    );
    println!(
        "  proxy: {} forwarded, {} dropped, {} duplicated, {} delayed, {} severed",
        report.proxy.forwarded,
        report.proxy.dropped,
        report.proxy.duplicated,
        report.proxy.delayed,
        report.proxy.severed,
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let tokens: Vec<NetSeedToken> = if let Some(seed) = &args.seed {
        match NetSeedToken::parse(seed) {
            Ok(token) => vec![token],
            Err(e) => {
                eprintln!("bad token: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        (0..args.plans)
            .map(|i| net_schedule_token(args.base_seed, i))
            .collect()
    };

    let mut failures: Vec<(NetSeedToken, WireCodec, String, PathBuf)> = Vec::new();
    for token in &tokens {
        for wire in &args.wires {
            println!("running {token} [{}]", wire.name());
            let config = NetChaosConfig {
                messages: args.messages,
                wire: Some(*wire),
                log_dir: args
                    .logs
                    .as_ref()
                    .map(|dir| dir.join(format!("{:016x}-{}", token.seed, wire.name()))),
                wbamd: args.wbamd.clone(),
            };
            let started = Instant::now();
            match run_net_token(token, &config) {
                Ok(report) => {
                    describe(&report, *wire, started.elapsed());
                    match report.violation {
                        None => println!("  OK"),
                        Some(violation) => {
                            println!("  VIOLATION: {violation}");
                            println!("  logs kept in {}", report.log_dir.display());
                            failures.push((*token, *wire, violation, report.log_dir));
                        }
                    }
                }
                Err(e) => {
                    eprintln!("  SETUP FAILED: {e}");
                    failures.push((
                        *token,
                        *wire,
                        format!("run: {e}"),
                        config.log_dir.unwrap_or_else(std::env::temp_dir),
                    ));
                }
            }
        }
    }

    if failures.is_empty() {
        println!(
            "\nall {} run(s) passed: Figure 6 agreement and the linearizability \
             oracle held over every drained delivery log",
            tokens.len() * args.wires.len()
        );
        return ExitCode::SUCCESS;
    }

    println!();
    for (token, wire, violation, log_dir) in &failures {
        println!("FAILING PLAN: {token} [{}]", wire.name());
        println!("  {violation}");
        println!("  logs: {}", log_dir.display());
        println!(
            "  replay with: cargo run --release -p wbam-harness --bin net_chaos -- \
             --seed '{token}' --wire {}",
            wire.name()
        );
    }
    if let Some(path) = &args.out {
        match std::fs::File::create(path) {
            Ok(mut file) => {
                for (token, wire, violation, _) in &failures {
                    let _ = writeln!(file, "{token} wire={} {violation}", wire.name());
                }
                println!("\nwrote {} failing seed(s) to {path}", failures.len());
            }
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    ExitCode::FAILURE
}
