//! Closed-loop client workloads.
//!
//! The paper's evaluation (§VI) uses closed-loop clients: every client has at
//! most one multicast outstanding and submits the next one as soon as the
//! previous one is acknowledged by the first delivering replica. Varying the
//! number of clients then traces out the latency/throughput curves of
//! Figures 7 and 8.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use wbam_simnet::{LatencyStats, ThroughputStats};
use wbam_types::GroupId;

use crate::cluster::ProtocolSim;

/// Description of a closed-loop workload.
#[derive(Debug, Clone)]
pub struct ClosedLoopWorkload {
    /// Number of destination groups of every multicast.
    pub dest_groups: usize,
    /// Payload size in bytes (the paper uses 20-byte messages).
    pub payload_len: usize,
    /// Length of the measured run (simulated time), excluding warm-up.
    pub duration: Duration,
    /// Warm-up period excluded from the statistics.
    pub warmup: Duration,
    /// Seed for the destination-set selection.
    pub seed: u64,
}

impl Default for ClosedLoopWorkload {
    fn default() -> Self {
        ClosedLoopWorkload {
            dest_groups: 2,
            payload_len: 20,
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(200),
            seed: 1,
        }
    }
}

/// Aggregated results of a workload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Latency statistics over messages submitted in the measurement window.
    pub latency: LatencyStats,
    /// Throughput over the measurement window.
    pub throughput: ThroughputStats,
    /// Total protocol messages sent during the whole run.
    pub protocol_messages: u64,
    /// Number of multicasts submitted during the whole run.
    pub submitted: usize,
}

/// Runs a closed-loop workload over a built cluster and returns the metrics.
///
/// Every client keeps exactly one multicast outstanding. Destination groups
/// are chosen uniformly at random (per message) among all groups, matching the
/// paper's methodology of multicasting to a fixed *number* of groups.
pub fn run_closed_loop(sim: &mut ProtocolSim, workload: &ClosedLoopWorkload) -> WorkloadResult {
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let group_ids = sim.cluster().group_ids();
    let num_clients = sim.cluster().clients().len();
    let dest_count = workload.dest_groups.min(group_ids.len()).max(1);
    let horizon = workload.warmup + workload.duration;
    let mut submitted = 0usize;

    let pick_dest = |rng: &mut StdRng| -> Vec<GroupId> {
        let mut ids = group_ids.clone();
        ids.shuffle(rng);
        ids.truncate(dest_count);
        ids
    };

    // Kick off one multicast per client at time zero.
    for client_index in 0..num_clients {
        let dest = pick_dest(&mut rng);
        sim.submit(Duration::ZERO, client_index, &dest, workload.payload_len);
        submitted += 1;
    }

    // Drive the simulation; whenever a client completes, submit its next
    // multicast immediately (zero think time).
    loop {
        if !sim.step() {
            break;
        }
        let now = sim.now();
        if now > horizon {
            break;
        }
        for (client, _msg) in sim.drain_client_completions() {
            if now > horizon {
                break;
            }
            let client_index = sim
                .cluster()
                .clients()
                .iter()
                .position(|c| *c == client)
                .expect("completion from a known client");
            let dest = pick_dest(&mut rng);
            sim.submit(now, client_index, &dest, workload.payload_len);
            submitted += 1;
        }
    }
    // Let in-flight messages finish so latency samples are complete.
    sim.run_until_quiescent(horizon + Duration::from_secs(60));

    let metrics = sim.metrics();
    let latency = metrics.latency_stats_in_window(workload.warmup, horizon);
    let throughput = metrics.throughput_in_window(workload.warmup, horizon);
    WorkloadResult {
        latency,
        throughput,
        protocol_messages: sim.stats().messages_sent,
        submitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterSpec, Protocol, ProtocolSim};
    use wbam_simnet::LatencyModel;

    fn small_spec(clients: usize) -> ClusterSpec {
        ClusterSpec {
            num_groups: 3,
            group_size: 3,
            num_clients: clients,
            num_sites: 1,
            latency: LatencyModel::constant(Duration::from_millis(1)),
            service_time: Duration::from_micros(5),
            seed: 3,
            max_batch: 1,
            batch_delay: Duration::ZERO,
            nemesis: wbam_types::NemesisPlan::quiet(),
            record_trace: false,
            auto_election: false,
            compaction_interval: 0,
            compaction_lag: 0,
        }
    }

    #[test]
    fn closed_loop_keeps_clients_busy() {
        let mut sim = ProtocolSim::build(Protocol::WhiteBox, &small_spec(4));
        let workload = ClosedLoopWorkload {
            dest_groups: 2,
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(50),
            ..ClosedLoopWorkload::default()
        };
        let result = run_closed_loop(&mut sim, &workload);
        // With a ~4 ms delivery latency and 350 ms of run time, each of the 4
        // clients completes dozens of multicasts.
        assert!(result.submitted > 40, "submitted only {}", result.submitted);
        assert!(result.latency.count > 10);
        assert!(result.throughput.messages_per_second > 100.0);
        assert!(result.protocol_messages > 0);
    }

    #[test]
    fn more_clients_means_more_throughput_until_saturation() {
        let workload = ClosedLoopWorkload {
            dest_groups: 2,
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(50),
            ..ClosedLoopWorkload::default()
        };
        let mut sim1 = ProtocolSim::build(Protocol::WhiteBox, &small_spec(1));
        let mut sim8 = ProtocolSim::build(Protocol::WhiteBox, &small_spec(8));
        let r1 = run_closed_loop(&mut sim1, &workload);
        let r8 = run_closed_loop(&mut sim8, &workload);
        assert!(
            r8.throughput.messages_per_second > r1.throughput.messages_per_second * 2.0,
            "throughput should scale with clients before saturation ({} vs {})",
            r1.throughput.messages_per_second,
            r8.throughput.messages_per_second
        );
    }

    #[test]
    fn workload_runs_for_all_protocols() {
        let workload = ClosedLoopWorkload {
            dest_groups: 2,
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(40),
            ..ClosedLoopWorkload::default()
        };
        for protocol in Protocol::evaluated() {
            let mut sim = ProtocolSim::build(protocol, &small_spec(2));
            let result = run_closed_loop(&mut sim, &workload);
            assert!(
                result.latency.count > 0,
                "{} produced no latency samples",
                protocol.label()
            );
        }
    }
}
