//! Seeded schedule explorer: randomized fault exploration with replayable
//! failure seeds.
//!
//! The explorer derives, from a single 64-bit seed, a complete experiment —
//! cluster topology, client workload (key-value commands over
//! [`wbam_kvstore`]), and a [`NemesisPlan`] of drops, duplication, partitions,
//! crash/restarts and timer jitter — runs it in the deterministic simulator,
//! and checks every run against:
//!
//! * the Figure 6 protocol invariants (`wbam_core::invariants`) on the
//!   recorded message trace (white-box protocol) and on the per-process
//!   delivery logs (every protocol), and
//! * the key-value store linearizability oracle
//!   ([`KvHistory::check`](wbam_kvstore::KvHistory::check)), fed with each
//!   replica's apply sequence and each client's invocations/completions, and
//! * a termination check — every submitted operation completes — wherever
//!   the protocol's retry machinery guarantees it under the generated plan
//!   (always for the white-box protocol, whose message-recovery rule
//!   tolerates transient loss; only under loss-free plans for the baselines,
//!   which implement the paper's reliable-channel model faithfully).
//!
//! Everything is derived deterministically from the seed, so a failing run is
//! reported as a single replayable token (printed as `WBAM_SEED=…`):
//! re-running [`run_token`] on the token reproduces the identical schedule
//! byte for byte ([`ScheduleReport::digest`] is equal). Before reporting, the
//! explorer greedily [`minimize`]s the nemesis plan: it re-runs the schedule
//! with each fault element removed and keeps every removal that still fails.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wbam_core::invariants::{
    check_deliver_agreement, check_deliver_local_ts_per_group, check_total_order,
    check_unique_proposals,
};
use wbam_kvstore::{KvCommand, KvHistory, KvStore, Partitioner};
use wbam_simnet::LatencyModel;
use wbam_types::{CrashSpec, GroupId, MsgId, NemesisPlan, PartitionSpec, ProcessId, Timestamp};

use crate::cluster::{ClusterSpec, Protocol, ProtocolSim};

/// Schedule-derivation versions. Old tokens must never change meaning: every
/// regression-corpus token replays byte for byte forever, so any change to
/// what a seed derives is a new version, and [`generate_schedule`] keeps the
/// old derivations verbatim.
///
/// * `V1` (PR 3): topology, workload and nemesis plan; no compaction.
/// * `V2` (PR 4): additionally derives a compaction cadence (watermark
///   interval + lag) and an extra mid-run crash/restart, so schedules
///   exercise pruning, checkpoints and state transfer mid-checkpoint. The
///   V2 draws come from a *separately salted* RNG, leaving the V1 stream —
///   and therefore every V1 token — untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TokenVersion {
    /// PR 3 derivation (no compaction).
    V1,
    /// PR 4 derivation (compaction + mid-checkpoint crash/restart).
    V2,
}

impl TokenVersion {
    fn label(self) -> &'static str {
        match self {
            TokenVersion::V1 => "v1",
            TokenVersion::V2 => "v2",
        }
    }
}

/// End of the chaos window: probabilistic link faults and timer jitter stop
/// here, partitions heal before it, and the stabilization nudges follow it.
const CHAOS_END: Duration = Duration::from_secs(8);

/// Simulated-time horizon of one schedule. Leaves > 20 s of calm after the
/// chaos window — enough for the 2 s client retry fallbacks to converge.
const HORIZON: Duration = Duration::from_secs(30);

/// Keys the generated workload touches (a small space maximises conflicts).
const KEY_SPACE: u32 = 6;

/// A replayable schedule identifier: derivation version, protocol and
/// generation seed.
///
/// Printed as `WBAM_SEED=v<n>:<protocol>:<seed-hex>`; [`SeedToken::parse`]
/// accepts the same string with or without the `WBAM_SEED=` prefix, for any
/// supported version — old corpus tokens keep replaying their original
/// schedules byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedToken {
    /// The schedule-derivation version.
    pub version: TokenVersion,
    /// The protocol the schedule runs.
    pub protocol: Protocol,
    /// The seed every part of the schedule is derived from.
    pub seed: u64,
}

impl fmt::Display for SeedToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WBAM_SEED={}:{}:{:016x}",
            self.version.label(),
            self.protocol.label(),
            self.seed
        )
    }
}

impl SeedToken {
    /// Parses a token previously printed by [`fmt::Display`].
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the string is not a valid
    /// token of a supported version.
    pub fn parse(s: &str) -> Result<SeedToken, String> {
        let body = s.trim().strip_prefix("WBAM_SEED=").unwrap_or(s.trim());
        let parts: Vec<&str> = body.split(':').collect();
        let [version, label, seed_hex] = parts[..] else {
            return Err(format!("expected v<n>:<protocol>:<seed>, got `{body}`"));
        };
        let version = match version {
            "v1" => TokenVersion::V1,
            "v2" => TokenVersion::V2,
            other => return Err(format!("token version `{other}` not supported (v1, v2)")),
        };
        let protocol = match label {
            "WbCast" => Protocol::WhiteBox,
            "FastCast" => Protocol::FastCast,
            "Skeen" => Protocol::FtSkeen,
            "Skeen1" => Protocol::Skeen,
            other => return Err(format!("unknown protocol label `{other}`")),
        };
        let seed =
            u64::from_str_radix(seed_hex, 16).map_err(|e| format!("bad seed `{seed_hex}`: {e}"))?;
        Ok(SeedToken {
            version,
            protocol,
            seed,
        })
    }
}

/// One planned workload operation.
#[derive(Debug, Clone)]
pub struct PlannedOp {
    /// Submission time.
    pub at: Duration,
    /// Index of the submitting client.
    pub client_index: usize,
    /// The key-value command.
    pub cmd: KvCommand,
}

/// A fully generated schedule: cluster spec (with nemesis plan), workload,
/// and run parameters. Everything here is a pure function of the token.
#[derive(Debug, Clone)]
pub struct GeneratedSchedule {
    /// Cluster topology, environment and fault plan.
    pub spec: ClusterSpec,
    /// The workload.
    pub ops: Vec<PlannedOp>,
    /// Simulated-time horizon.
    pub horizon: Duration,
}

/// The result of running one schedule.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// The schedule's replay token.
    pub token: SeedToken,
    /// Stable digest of the run's observable behaviour (all delivery
    /// records); equal digests mean byte-for-byte identical schedules.
    pub digest: u64,
    /// Operations submitted.
    pub ops: usize,
    /// Operations that completed at their client.
    pub completed: usize,
    /// Total delivery records (replica applies + client completions).
    pub deliveries: usize,
    /// Messages the nemesis dropped.
    pub nemesis_dropped: u64,
    /// Messages the nemesis duplicated.
    pub nemesis_duplicated: u64,
    /// The first violation found, if any (prefixed with its category:
    /// `config:`, `invariant:`, `linearizability:` or `termination:`).
    pub violation: Option<String>,
}

/// A failing schedule, with its minimized nemesis plan.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Replay token reproducing the failure.
    pub token: SeedToken,
    /// The violation.
    pub description: String,
    /// The greedily minimized nemesis plan (still failing), if minimization
    /// was enabled.
    pub minimized: Option<NemesisPlan>,
}

/// Aggregate results of an exploration.
#[derive(Debug, Clone, Default)]
pub struct ExplorationReport {
    /// Schedules run.
    pub schedules: usize,
    /// Failing schedules.
    pub findings: Vec<Finding>,
    /// Total operations submitted.
    pub total_ops: usize,
    /// Total operations completed.
    pub total_completed: usize,
    /// Total messages dropped by the nemesis.
    pub nemesis_dropped: u64,
    /// Total messages duplicated by the nemesis.
    pub nemesis_duplicated: u64,
    /// Total crashes scheduled.
    pub crashes: usize,
    /// Total partitions scheduled.
    pub partitions: usize,
}

/// Configuration of an exploration run.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Number of schedules to run; schedule `i` runs
    /// `protocols[i % protocols.len()]` with a seed derived from
    /// `base_seed` and `i`.
    pub schedules: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Protocols to rotate through.
    pub protocols: Vec<Protocol>,
    /// Minimize the nemesis plan of failing schedules before reporting.
    pub minimize: bool,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            schedules: 50,
            base_seed: 42,
            protocols: Protocol::evaluated().to_vec(),
            minimize: true,
        }
    }
}

/// SplitMix64, used to derive per-schedule seeds from the base seed (and by
/// the deployed chaos harness to derive per-link and per-plan seeds).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The token of schedule `index` in an exploration starting at `base_seed`.
/// Fresh explorations always use the newest derivation version; old versions
/// exist only so corpus tokens keep their meaning.
pub fn schedule_token(base_seed: u64, index: usize, protocols: &[Protocol]) -> SeedToken {
    SeedToken {
        version: TokenVersion::V2,
        protocol: protocols[index % protocols.len()],
        seed: splitmix64(base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    }
}

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Generates the complete schedule for a token. Pure: the same token always
/// produces the same schedule.
pub fn generate_schedule(token: &SeedToken) -> GeneratedSchedule {
    // Salt the generation RNG so it is independent from the simulation RNG
    // (which is seeded with the raw seed).
    let mut rng = StdRng::seed_from_u64(token.seed ^ 0xA5A5_5A5A_C0FF_EE00);

    // --- Topology & environment ---------------------------------------
    let num_groups = rng.gen_range(2..=3usize);
    let group_size = if rng.gen_bool(0.2) { 5 } else { 3 };
    let num_clients = rng.gen_range(2..=3usize);
    let latency = match rng.gen_range(0..3u32) {
        0 => LatencyModel::constant(ms(1)),
        1 => LatencyModel::uniform(Duration::from_micros(200), ms(3)),
        _ => LatencyModel::lan(),
    };
    let mut spec = ClusterSpec {
        num_groups,
        group_size,
        num_clients,
        num_sites: 1,
        latency,
        service_time: Duration::ZERO,
        seed: token.seed,
        max_batch: 1,
        batch_delay: Duration::ZERO,
        nemesis: NemesisPlan::quiet(),
        record_trace: true,
        auto_election: false,
        compaction_interval: 0,
        compaction_lag: 0,
    };
    if rng.gen_bool(0.25) {
        spec = spec.with_batching(rng.gen_range(2..=8), Duration::from_micros(500));
    }
    let cluster = spec.cluster_config();
    let replicas: Vec<ProcessId> = cluster
        .groups()
        .iter()
        .flat_map(|g| g.members().iter().copied())
        .collect();
    let everyone = cluster.all_processes();

    // --- Nemesis plan ---------------------------------------------------
    let mut plan = NemesisPlan {
        chaos_end: Some(CHAOS_END),
        ..NemesisPlan::quiet()
    };
    if rng.gen_bool(0.7) {
        plan.link.drop_per_mille = rng.gen_range(1..=150u32) as u16;
    }
    if rng.gen_bool(0.5) {
        plan.link.duplicate_per_mille = rng.gen_range(1..=150u32) as u16;
    }
    if rng.gen_bool(0.5) {
        plan.timer_jitter = ms(rng.gen_range(1..=10));
    }
    for _ in 0..rng.gen_range(0..=2u32) {
        let start = ms(rng.gen_range(0..4000));
        let heal = start + ms(rng.gen_range(300..1500));
        let isolated = rng.gen_range(1..=2usize);
        let mut pool = replicas.clone();
        pool.shuffle(&mut rng);
        let side_a: Vec<ProcessId> = pool[..isolated].to_vec();
        let side_b: Vec<ProcessId> = everyone
            .iter()
            .copied()
            .filter(|p| !side_a.contains(p))
            .collect();
        plan.partitions.push(PartitionSpec {
            start,
            heal,
            side_a,
            side_b,
            symmetric: rng.gen_bool(0.7),
        });
    }

    // Crashes: at most one per process, at most `f` permanent per group; the
    // baselines route every client/forwarded multicast to the group's
    // *initial* leader, so baseline schedules never crash one permanently.
    let f = (group_size - 1) / 2;
    let mut permanent_per_group: std::collections::BTreeMap<GroupId, usize> =
        std::collections::BTreeMap::new();
    let mut already_crashed: BTreeSet<ProcessId> = BTreeSet::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        let victim = replicas[rng.gen_range(0..replicas.len())];
        if !already_crashed.insert(victim) {
            continue;
        }
        let group = cluster.group_of(victim).expect("victim is a replica");
        let at = ms(rng.gen_range(0..4000));
        let restart_draw = rng.gen_bool(0.75);
        let restart_delay = ms(rng.gen_range(500..3000));
        let is_initial_leader =
            cluster.group(group).expect("group exists").initial_leader() == victim;
        let permanent_allowed = permanent_per_group.get(&group).copied().unwrap_or(0) < f
            && !(token.protocol != Protocol::WhiteBox && is_initial_leader);
        let restart_at = if restart_draw || !permanent_allowed {
            Some(at + restart_delay)
        } else {
            *permanent_per_group.entry(group).or_insert(0) += 1;
            None
        };
        plan.crashes.push(CrashSpec {
            at,
            process: victim,
            restart_at,
        });
    }
    // Occasionally crash-and-restart a client (its restart handler re-sends
    // every in-flight multicast).
    if rng.gen_bool(0.15) && !cluster.clients().is_empty() {
        let client = cluster.clients()[rng.gen_range(0..cluster.clients().len())];
        let at = ms(rng.gen_range(500..3000));
        plan.crashes.push(CrashSpec {
            at,
            process: client,
            restart_at: Some(at + ms(rng.gen_range(500..1500))),
        });
    }

    // White-box schedules run with the protocol's own heartbeat/election
    // oracle (see `ClusterSpec::auto_election`): under random crash/restart
    // schedules only an unbounded failure detector reliably re-elects and
    // re-synchronises groups — any finite list of scheduled `BecomeLeader`
    // nudges can be exhausted by ballot races under message loss (a lesson
    // the explorer itself taught us). The baselines keep a fixed consensus
    // leader per group and re-establish it from the restart handler, so they
    // need no oracle at all.
    if token.protocol == Protocol::WhiteBox {
        spec.auto_election = true;
    }

    // --- Workload -------------------------------------------------------
    let key = |rng: &mut StdRng| format!("k{}", rng.gen_range(0..KEY_SPACE));
    let num_ops = rng.gen_range(15..=40usize);
    let mut ops = Vec::with_capacity(num_ops);
    for _ in 0..num_ops {
        let client_index = rng.gen_range(0..num_clients);
        let mut at = ms(rng.gen_range(0..5000));
        // Never submit while the client itself is down: the simulator would
        // drop the submission before the protocol ever saw it, which is a
        // workload artefact, not a protocol failure.
        let client = cluster.clients()[client_index];
        for crash in &plan.crashes {
            if crash.process == client {
                if let Some(restart_at) = crash.restart_at {
                    if at >= crash.at && at < restart_at {
                        at = restart_at + ms(100);
                    }
                }
            }
        }
        let cmd = match rng.gen_range(0..100u32) {
            0..=29 => KvCommand::put(&key(&mut rng), rng.gen_range(0..1000i64)),
            30..=54 => KvCommand::add(&key(&mut rng), rng.gen_range(-50..50i64)),
            55..=74 => {
                let from = key(&mut rng);
                let mut to = key(&mut rng);
                while to == from {
                    to = key(&mut rng);
                }
                KvCommand::transfer(&from, &to, rng.gen_range(1..100i64))
            }
            _ => KvCommand::get(&key(&mut rng)),
        };
        ops.push(PlannedOp {
            at,
            client_index,
            cmd,
        });
    }

    // --- V2 derivation: compaction + a mid-checkpoint crash/restart -----
    // Drawn from a *separately salted* RNG so the V1 stream above — and with
    // it every V1 corpus token — is byte-for-byte unchanged.
    if token.version >= TokenVersion::V2 {
        let mut rng2 = StdRng::seed_from_u64(token.seed ^ 0x5EED_CAFE_F00D_2222);
        if rng2.gen_bool(0.8) {
            let interval = rng2.gen_range(5..=100u64);
            let lag = rng2.gen_range(0..=200usize);
            spec = spec.with_compaction(interval, lag);
        }
        // An extra crash *with* restart: checkpoints are taken continuously
        // (every `interval` deliveries), so a mid-run crash/restart lands
        // mid-checkpoint and forces recovery through the state-transfer path
        // against possibly pruned peers.
        if rng2.gen_bool(0.5) {
            let victim = replicas[rng2.gen_range(0..replicas.len())];
            if !plan.crashes.iter().any(|c| c.process == victim) {
                let at = ms(rng2.gen_range(500..6000));
                plan.crashes.push(CrashSpec {
                    at,
                    process: victim,
                    restart_at: Some(at + ms(rng2.gen_range(500..2500))),
                });
            }
        }
    }

    spec.nemesis = plan;
    GeneratedSchedule {
        spec,
        ops,
        horizon: HORIZON,
    }
}

/// Whether the protocol's retry machinery guarantees termination under the
/// plan. The white-box protocol's message-recovery rule (client retries →
/// re-`MULTICAST` → re-`ACCEPT`/re-reply) recovers from any transient fault
/// the explorer generates. The baselines implement the paper's
/// reliable-channel model as-is: one lost `PROPOSE` or Paxos message can
/// stall an operation forever, so termination is only asserted for plans
/// that cannot lose messages addressed to a live replica.
fn termination_checkable(
    protocol: Protocol,
    plan: &NemesisPlan,
    cluster_clients: &[ProcessId],
) -> bool {
    match protocol {
        Protocol::WhiteBox => true,
        _ => {
            !plan.lossy()
                && plan
                    .crashes
                    .iter()
                    .all(|c| cluster_clients.contains(&c.process))
        }
    }
}

/// FNV-1a over the run's observable behaviour.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, v: u64) {
        // FNV-1a, one byte at a time.
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Runs a generated schedule (used directly by [`minimize`] with a modified
/// plan; use [`run_token`] to run the canonical schedule of a token).
pub fn run_generated(token: &SeedToken, schedule: &GeneratedSchedule) -> ScheduleReport {
    let mut report = ScheduleReport {
        token: *token,
        digest: 0,
        ops: schedule.ops.len(),
        completed: 0,
        deliveries: 0,
        nemesis_dropped: 0,
        nemesis_duplicated: 0,
        violation: None,
    };
    let mut sim = match ProtocolSim::try_build(token.protocol, &schedule.spec) {
        Ok(sim) => sim,
        Err(e) => {
            report.violation = Some(format!("config: {e}"));
            return report;
        }
    };
    let partitioner = Partitioner::new(schedule.spec.num_groups as u32);
    let mut history = KvHistory {
        partitions: schedule.spec.num_groups as u32,
        ..KvHistory::default()
    };
    let mut op_ids: Vec<MsgId> = Vec::with_capacity(schedule.ops.len());
    for op in &schedule.ops {
        let dest = partitioner
            .destination_of(op.cmd.keys())
            .expect("generated commands have keys");
        let payload = serde_json::to_vec(&op.cmd).expect("commands encode");
        let id = sim.submit_with_payload(op.at, op.client_index, dest.groups(), payload);
        history.invoke(id, op.cmd.clone(), op.at);
        op_ids.push(id);
    }
    sim.run_until_quiescent(schedule.horizon);

    let cluster = sim.cluster().clone();
    let deliveries = sim.deliveries().to_vec();
    report.deliveries = deliveries.len();
    let stats = sim.stats();
    report.nemesis_dropped = stats.nemesis_dropped;
    report.nemesis_duplicated = stats.nemesis_duplicated;

    // Digest of the observable behaviour: every delivery record in order.
    let mut digest = Digest::new();
    for record in &deliveries {
        digest.write(record.time.as_nanos() as u64);
        digest.write(u64::from(record.process.0));
        digest.write(u64::from(record.msg_id.sender.0));
        digest.write(record.msg_id.seq);
        let gts = record.global_ts.unwrap_or(Timestamp::BOTTOM);
        digest.write(gts.time());
        digest.write(gts.group().map(|g| u64::from(g.0) + 1).unwrap_or(0));
    }
    digest.write(stats.messages_sent);
    report.digest = digest.0;

    // --- Figure 6 invariants -------------------------------------------
    if let Some(trace) = sim.whitebox_trace() {
        let result = check_unique_proposals(&trace)
            .and_then(|()| check_deliver_agreement(&trace))
            .and_then(|()| check_deliver_local_ts_per_group(&trace, |p| cluster.group_of(p)));
        if let Err(v) = result {
            report.violation = Some(format!("invariant: {v}"));
            return report;
        }
    }
    // Delivery-log invariants (all protocols): agreement on global
    // timestamps, integrity and per-process timestamp order.
    let mut per_process: std::collections::BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>> =
        std::collections::BTreeMap::new();
    for record in &deliveries {
        if record.group.is_some() {
            let Some(gts) = record.global_ts else {
                report.violation = Some(format!(
                    "invariant: {} delivered {} without a global timestamp",
                    record.process, record.msg_id
                ));
                return report;
            };
            per_process
                .entry(record.process)
                .or_default()
                .push((record.msg_id, gts));
        }
    }
    if let Err(v) = check_total_order(&per_process) {
        report.violation = Some(format!("invariant: {v}"));
        return report;
    }

    // --- Linearizability oracle ----------------------------------------
    let op_cmds: std::collections::BTreeMap<MsgId, &KvCommand> = op_ids
        .iter()
        .zip(schedule.ops.iter())
        .map(|(id, op)| (*id, &op.cmd))
        .collect();
    let mut replica_stores: std::collections::BTreeMap<ProcessId, KvStore> =
        std::collections::BTreeMap::new();
    for record in &deliveries {
        match record.group {
            None => {
                history.complete(record.msg_id, record.time);
            }
            Some(group) => {
                let Some(cmd) = op_cmds.get(&record.msg_id) else {
                    report.violation = Some(format!(
                        "invariant: {} delivered {} which was never submitted",
                        record.process, record.msg_id
                    ));
                    return report;
                };
                let gts = record.global_ts.expect("replica deliveries checked above");
                let store = replica_stores
                    .entry(record.process)
                    .or_insert_with(|| KvStore::with_partitioner(group, partitioner));
                let read = store.apply_read(cmd);
                history.applied(record.msg_id, record.process, group, gts, read);
            }
        }
    }
    report.completed = history
        .ops
        .iter()
        .filter(|o| o.completed_at.is_some())
        .count();
    let faulty: BTreeSet<ProcessId> = schedule
        .spec
        .nemesis
        .faulty_processes()
        .into_iter()
        .collect();
    // Replicas that recovered via checkpoint state transfer installed the
    // history below their transfer watermark instead of replaying it; the
    // oracle excuses (rather than flags) exactly that prefix.
    let excusals = sim.transfer_excusals();
    let drop_excusals = sim.drop_excusals();
    if let Err(v) = history.check_excusing(
        &faulty,
        schedule.spec.nemesis.lossy(),
        &excusals,
        &drop_excusals,
    ) {
        report.violation = Some(format!("linearizability: {v}"));
        return report;
    }

    // --- Termination ----------------------------------------------------
    if termination_checkable(token.protocol, &schedule.spec.nemesis, cluster.clients()) {
        let undelivered: Vec<MsgId> = history
            .ops
            .iter()
            .filter(|o| o.completed_at.is_none())
            .map(|o| o.id)
            .collect();
        if !undelivered.is_empty() {
            report.violation = Some(format!(
                "termination: {} of {} operations never completed (first: {})",
                undelivered.len(),
                schedule.ops.len(),
                undelivered[0]
            ));
            return report;
        }
    }
    report
}

/// Runs the canonical schedule of a token.
pub fn run_token(token: &SeedToken) -> ScheduleReport {
    let schedule = generate_schedule(token);
    run_generated(token, &schedule)
}

/// Greedily minimizes the nemesis plan of a failing schedule: repeatedly
/// removes individual crashes, partitions and nudges, and zeroes the
/// probabilistic fault knobs, keeping each removal whose schedule still
/// fails. Returns the smallest still-failing plan found.
pub fn minimize(token: &SeedToken) -> NemesisPlan {
    let base = generate_schedule(token);
    let still_fails = |plan: &NemesisPlan| -> bool {
        let mut schedule = base.clone();
        schedule.spec.nemesis = plan.clone();
        run_generated(token, &schedule).violation.is_some()
    };
    let mut plan = base.spec.nemesis.clone();
    for _pass in 0..4 {
        let mut changed = false;
        for idx in (0..plan.crashes.len()).rev() {
            let mut candidate = plan.clone();
            candidate.crashes.remove(idx);
            if still_fails(&candidate) {
                plan = candidate;
                changed = true;
            }
        }
        for idx in (0..plan.partitions.len()).rev() {
            let mut candidate = plan.clone();
            candidate.partitions.remove(idx);
            if still_fails(&candidate) {
                plan = candidate;
                changed = true;
            }
        }
        for idx in (0..plan.leader_nudges.len()).rev() {
            let mut candidate = plan.clone();
            candidate.leader_nudges.remove(idx);
            if still_fails(&candidate) {
                plan = candidate;
                changed = true;
            }
        }
        for knob in 0..4 {
            let mut candidate = plan.clone();
            let active = match knob {
                0 => {
                    let was = candidate.link.drop_per_mille > 0;
                    candidate.link.drop_per_mille = 0;
                    was
                }
                1 => {
                    let was = candidate.link.duplicate_per_mille > 0;
                    candidate.link.duplicate_per_mille = 0;
                    was
                }
                2 => {
                    let was = candidate.link.reorder_per_mille > 0;
                    candidate.link.reorder_per_mille = 0;
                    was
                }
                _ => {
                    let was = !candidate.timer_jitter.is_zero();
                    candidate.timer_jitter = Duration::ZERO;
                    was
                }
            };
            if active && still_fails(&candidate) {
                plan = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    plan
}

/// Runs an exploration: `config.schedules` seeded schedules rotating over
/// `config.protocols`, collecting findings (with minimized plans) and
/// aggregate statistics.
pub fn explore(config: &ExplorerConfig) -> ExplorationReport {
    let mut report = ExplorationReport::default();
    for index in 0..config.schedules {
        let token = schedule_token(config.base_seed, index, &config.protocols);
        let schedule = generate_schedule(&token);
        report.crashes += schedule.spec.nemesis.crashes.len();
        report.partitions += schedule.spec.nemesis.partitions.len();
        let run = run_generated(&token, &schedule);
        report.schedules += 1;
        report.total_ops += run.ops;
        report.total_completed += run.completed;
        report.nemesis_dropped += run.nemesis_dropped;
        report.nemesis_duplicated += run.nemesis_duplicated;
        if let Some(description) = run.violation {
            let minimized = config.minimize.then(|| minimize(&token));
            report.findings.push(Finding {
                token,
                description,
                minimized,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_through_display_and_parse() {
        for version in [TokenVersion::V1, TokenVersion::V2] {
            for protocol in Protocol::evaluated() {
                let token = SeedToken {
                    version,
                    protocol,
                    seed: 0xdead_beef_1234_5678,
                };
                let s = token.to_string();
                assert!(s.starts_with(&format!("WBAM_SEED={}:", version.label())));
                assert_eq!(SeedToken::parse(&s).unwrap(), token);
                // The prefix is optional on input.
                let bare = s.strip_prefix("WBAM_SEED=").unwrap();
                assert_eq!(SeedToken::parse(bare).unwrap(), token);
            }
        }
        assert!(SeedToken::parse("v0:WbCast:1").is_err());
        assert!(SeedToken::parse("v1:NoSuch:1").is_err());
        assert!(SeedToken::parse("v1:WbCast:zz").is_err());
    }

    #[test]
    fn schedules_are_deterministic() {
        let token = SeedToken {
            version: TokenVersion::V2,
            protocol: Protocol::WhiteBox,
            seed: 7,
        };
        let a = generate_schedule(&token);
        let b = generate_schedule(&token);
        assert_eq!(a.spec.nemesis, b.spec.nemesis);
        assert_eq!(a.spec.compaction_interval, b.spec.compaction_interval);
        assert_eq!(a.spec.compaction_lag, b.spec.compaction_lag);
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(b.ops.iter()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.cmd, y.cmd);
            assert_eq!(x.client_index, y.client_index);
        }
    }

    /// The versioning contract: a V1 token derives exactly the PR 3 schedule
    /// (no compaction, no extra crash), and the V2 derivation of the same
    /// seed only *adds* — topology, workload and the V1 nemesis stay
    /// identical, so introducing V2 never changes what a pinned V1 corpus
    /// token means.
    #[test]
    fn v1_derivation_is_preserved_and_v2_only_adds() {
        for seed in [3u64, 7, 1234, 0xdead_beef] {
            let v1 = generate_schedule(&SeedToken {
                version: TokenVersion::V1,
                protocol: Protocol::WhiteBox,
                seed,
            });
            let v2 = generate_schedule(&SeedToken {
                version: TokenVersion::V2,
                protocol: Protocol::WhiteBox,
                seed,
            });
            assert_eq!(v1.spec.compaction_interval, 0, "V1 never compacts");
            assert_eq!(v1.spec.num_groups, v2.spec.num_groups);
            assert_eq!(v1.spec.group_size, v2.spec.group_size);
            assert_eq!(v1.ops.len(), v2.ops.len());
            for (x, y) in v1.ops.iter().zip(v2.ops.iter()) {
                assert_eq!(x.at, y.at);
                assert_eq!(x.cmd, y.cmd);
            }
            // The V1 nemesis is a prefix of the V2 one (the extra V2
            // crash/restart is appended, never interleaved).
            assert!(v2.spec.nemesis.crashes.len() >= v1.spec.nemesis.crashes.len());
            assert_eq!(
                &v2.spec.nemesis.crashes[..v1.spec.nemesis.crashes.len()],
                &v1.spec.nemesis.crashes[..]
            );
            assert_eq!(v1.spec.nemesis.partitions, v2.spec.nemesis.partitions);
            assert_eq!(v1.spec.nemesis.link, v2.spec.nemesis.link);
        }
    }

    #[test]
    fn replaying_a_token_reproduces_the_digest() {
        let token = schedule_token(1, 0, &Protocol::evaluated());
        let a = run_token(&token);
        let b = run_token(&token);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = generate_schedule(&SeedToken {
            version: TokenVersion::V2,
            protocol: Protocol::WhiteBox,
            seed: 1,
        });
        let b = generate_schedule(&SeedToken {
            version: TokenVersion::V2,
            protocol: Protocol::WhiteBox,
            seed: 2,
        });
        // Overwhelmingly likely to differ in at least the op count or times.
        let same_ops = a.ops.len() == b.ops.len()
            && a.ops
                .iter()
                .zip(b.ops.iter())
                .all(|(x, y)| x.at == y.at && x.cmd == y.cmd);
        assert!(!same_ops || a.spec.nemesis != b.spec.nemesis);
    }

    #[test]
    fn a_small_exploration_passes_cleanly() {
        let report = explore(&ExplorerConfig {
            schedules: 6,
            base_seed: 3,
            protocols: Protocol::evaluated().to_vec(),
            minimize: false,
        });
        assert_eq!(report.schedules, 6);
        assert!(report.total_ops > 0);
        assert!(
            report.findings.is_empty(),
            "unexpected finding {}: {}",
            report.findings[0].token,
            report.findings[0].description
        );
    }

    #[test]
    fn misconfigured_cluster_surfaces_as_a_config_finding() {
        // Build a spec whose replica constructor must fail: a Skeen-singleton
        // spec is fine, but a cluster whose group id is out of range cannot be
        // produced via ClusterSpec — so drive try_build directly through a
        // doctored ReplicaConfig instead.
        use wbam_core::{ReplicaConfig, WhiteBoxReplica};
        use wbam_types::{ClusterConfig, ConfigError};
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let bad = ReplicaConfig::new(ProcessId(0), GroupId(9), cluster);
        match WhiteBoxReplica::try_new(bad) {
            Err(ConfigError::UnknownGroup { group }) => assert_eq!(group, GroupId(9)),
            Err(other) => panic!("expected UnknownGroup, got {other}"),
            Ok(_) => panic!("expected UnknownGroup, got a replica"),
        }
    }
}
