//! Deterministic-runtime schedule explorer: seeded interleavings of the
//! *deployed* node loop, with replayable `rt1` failure tokens.
//!
//! The simulator explorer ([`crate::explorer`]) schedules sans-IO protocol
//! state machines inside `wbam-simnet`; the net-chaos driver
//! ([`crate::chaos`]) shakes real OS processes but cannot replay an
//! interleaving byte for byte. This module covers the gap: it drives the
//! exact event-loop code `wbamd` ships (`wbam_runtime::node_loop` — burst
//! coalescing, timer generations, delivery-log batching) through
//! [`DeterministicRuntime`], where a seed-derived scheduler chooses which
//! mailbox delivers next, how large each burst is, when virtual time advances
//! (and so when retry, heartbeat and election timers fire), and where
//! crash/restart lands.
//!
//! From one 64-bit seed the module derives a complete experiment — topology,
//! key-value workload, crash/restart schedule and the scheduler's decision
//! stream — and checks every run against:
//!
//! * the Figure 6 protocol invariants (`wbam_core::invariants`) on the full
//!   message trace the deterministic transport records (white-box protocol)
//!   and on the per-process delivery logs (every protocol),
//! * the key-value store linearizability oracle
//!   ([`KvHistory::check_excusing`]), and
//! * a termination check (always for the white-box protocol, whose retry
//!   machinery recovers from crash-lost mail; for the baselines on their
//!   crash-free schedules, where the channel transport really is reliable).
//!
//! A failing run is reported as a single `WBAM_SEED=rt1:<protocol>:<seed>`
//! token; replaying the token reproduces the identical interleaving byte for
//! byte ([`RtReport::digest`] covers every delivery record *and* the
//! scheduler's decision trace). The `rt` version namespace is deliberately
//! distinct from the simulator's `v` tokens and the deployed chaos driver's
//! `n` tokens: the derivations share nothing, so no corpus can be replayed
//! under the wrong engine.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wbam_baselines::common::{BaselineClient, BaselineMsg, BaselineReplica, Mode};
use wbam_core::invariants::{
    check_deliver_agreement, check_deliver_local_ts_per_group, check_total_order,
    check_unique_proposals, SentMessage,
};
use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxReplica};
use wbam_kvstore::{KvCommand, KvHistory, KvStore, Partitioner};
use wbam_runtime::{BoxedNode, DeterministicRuntime, RuntimeDelivery};
use wbam_types::{AppMessage, ClusterConfig, MsgId, Payload, ProcessId, Timestamp};

use crate::cluster::Protocol;
use crate::explorer::splitmix64;

/// Virtual-time horizon of one run: the crash window closes by ~7 s, leaving
/// ample calm for the 2 s client retry fallbacks to converge.
const HORIZON: Duration = Duration::from_secs(30);

/// Keys the generated workload touches (a small space maximises conflicts).
const KEY_SPACE: u32 = 6;

/// Salt for the plan RNG, keeping the derivation independent of the
/// scheduler's decision stream (which splitmix-es the raw seed).
const RT_PLAN_SALT: u64 = 0xDE7E_C7ED_C10C_55ED;

/// Heartbeat interval for white-box replicas (same as the deployed default).
const HEARTBEAT: Duration = Duration::from_millis(100);

/// Election timeout for white-box replicas.
const ELECTION_TIMEOUT: Duration = Duration::from_millis(1500);

/// Client retry fallback (both protocol families).
const RETRY_TIMEOUT: Duration = Duration::from_millis(2000);

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// A replayable deterministic-runtime schedule identifier, printed as
/// `WBAM_SEED=rt1:<protocol>:<seed-hex>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtSeedToken {
    /// The protocol under test (any of [`Protocol::evaluated`]; the sim-only
    /// singleton Skeen has no deployed node loop to schedule).
    pub protocol: Protocol,
    /// The seed the plan and the scheduler's decisions derive from.
    pub seed: u64,
}

impl fmt::Display for RtSeedToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WBAM_SEED=rt1:{}:{:016x}",
            self.protocol.label(),
            self.seed
        )
    }
}

impl RtSeedToken {
    /// Parses a token previously printed by [`fmt::Display`] (the
    /// `WBAM_SEED=` prefix is optional on input).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for malformed tokens, including
    /// tokens of the other engines (`v*`, `n*`), which must never replay
    /// here.
    pub fn parse(s: &str) -> Result<RtSeedToken, String> {
        let body = s.trim().strip_prefix("WBAM_SEED=").unwrap_or(s.trim());
        let parts: Vec<&str> = body.split(':').collect();
        let [version, label, seed_hex] = parts[..] else {
            return Err(format!("expected rt1:<protocol>:<seed>, got `{body}`"));
        };
        if version != "rt1" {
            return Err(format!(
                "runtime token version `{version}` not supported (rt1; `v*` tokens \
                 belong to the simulator explorer, `n*` to the net-chaos driver)"
            ));
        }
        let protocol = match label {
            "WbCast" => Protocol::WhiteBox,
            "FastCast" => Protocol::FastCast,
            "Skeen" => Protocol::FtSkeen,
            other => {
                return Err(format!(
                    "protocol `{other}` has no deployed node loop to schedule \
                     (WbCast, FastCast, Skeen)"
                ))
            }
        };
        let seed =
            u64::from_str_radix(seed_hex, 16).map_err(|e| format!("bad seed `{seed_hex}`: {e}"))?;
        Ok(RtSeedToken { protocol, seed })
    }
}

/// The token of run `index` in a sweep starting at `base_seed` — the same
/// golden-ratio splitmix derivation the other explorers use.
pub fn rt_schedule_token(base_seed: u64, index: usize, protocols: &[Protocol]) -> RtSeedToken {
    RtSeedToken {
        protocol: protocols[index % protocols.len()],
        seed: splitmix64(base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    }
}

/// One planned crash/restart of a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtCrash {
    /// Virtual time of the crash.
    pub at: Duration,
    /// The crashed replica.
    pub node: ProcessId,
    /// How long the replica stays down before restarting.
    pub down_for: Duration,
}

/// One planned workload operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RtPlannedOp {
    /// Virtual submission time.
    pub at: Duration,
    /// Index of the submitting client.
    pub client_index: usize,
    /// The key-value command.
    pub cmd: KvCommand,
}

/// A fully generated run plan: topology, workload and crash schedule.
/// Everything here is a pure function of the token.
#[derive(Debug, Clone, PartialEq)]
pub struct RtPlan {
    /// Number of multicast groups.
    pub num_groups: usize,
    /// Replicas per group (`2f + 1`).
    pub group_size: usize,
    /// Number of client processes.
    pub num_clients: usize,
    /// The workload.
    pub ops: Vec<RtPlannedOp>,
    /// Replica crash/restart schedule (always empty for the baselines,
    /// which assume reliable channels: mail lost while a process is down
    /// would stall them by design, not by bug).
    pub crashes: Vec<RtCrash>,
    /// Virtual-time horizon.
    pub horizon: Duration,
}

/// Generates the complete plan of a token. Pure: the same token always
/// produces the same plan, and the workload stream is shared across
/// protocols for a given seed (the crash draws happen either way and are
/// only *kept* for the white-box protocol).
pub fn generate_rt_plan(token: &RtSeedToken) -> RtPlan {
    let mut rng = StdRng::seed_from_u64(token.seed ^ RT_PLAN_SALT);

    // --- Topology -------------------------------------------------------
    let num_groups = rng.gen_range(2..=3usize);
    let group_size = 3usize;
    let num_clients = rng.gen_range(1..=2usize);
    let replicas: Vec<ProcessId> = (0..(num_groups * group_size) as u32)
        .map(ProcessId)
        .collect();

    // --- Crashes --------------------------------------------------------
    // At most one per group, restart always scheduled: a majority of every
    // group stays up through any window, and the restart path (volatile
    // timers lost, mail-while-down lost, retry machinery recovering both)
    // is the interesting one. Drawn before the workload so the op stream is
    // identical across protocols for a given seed.
    let mut drawn: Vec<RtCrash> = Vec::new();
    let mut crashed_groups: BTreeSet<usize> = BTreeSet::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        let victim = replicas[rng.gen_range(0..replicas.len())];
        let group = victim.0 as usize / group_size;
        if !crashed_groups.insert(group) {
            continue;
        }
        drawn.push(RtCrash {
            at: ms(rng.gen_range(500..4000)),
            node: victim,
            down_for: ms(rng.gen_range(500..3000)),
        });
    }
    let crashes = if token.protocol == Protocol::WhiteBox {
        drawn
    } else {
        Vec::new()
    };

    // --- Workload -------------------------------------------------------
    // Same command mix and key space as the simulator explorer.
    let key = |rng: &mut StdRng| format!("k{}", rng.gen_range(0..KEY_SPACE));
    let num_ops = rng.gen_range(10..=25usize);
    let mut ops = Vec::with_capacity(num_ops);
    for _ in 0..num_ops {
        let client_index = rng.gen_range(0..num_clients);
        let at = ms(rng.gen_range(0..5000));
        let cmd = match rng.gen_range(0..100u32) {
            0..=29 => KvCommand::put(&key(&mut rng), rng.gen_range(0..1000i64)),
            30..=54 => KvCommand::add(&key(&mut rng), rng.gen_range(-50..50i64)),
            55..=74 => {
                let from = key(&mut rng);
                let mut to = key(&mut rng);
                while to == from {
                    to = key(&mut rng);
                }
                KvCommand::transfer(&from, &to, rng.gen_range(1..100i64))
            }
            _ => KvCommand::get(&key(&mut rng)),
        };
        ops.push(RtPlannedOp {
            at,
            client_index,
            cmd,
        });
    }

    RtPlan {
        num_groups,
        group_size,
        num_clients,
        ops,
        crashes,
        horizon: HORIZON,
    }
}

/// The result of running one plan.
#[derive(Debug, Clone)]
pub struct RtReport {
    /// The run's replay token.
    pub token: RtSeedToken,
    /// Stable digest of the run: every delivery record in log order plus the
    /// scheduler's decision-trace digest. Equal digests mean byte-for-byte
    /// identical interleavings.
    pub digest: u64,
    /// Operations submitted.
    pub ops: usize,
    /// Operations that completed at their client.
    pub completed: usize,
    /// Total delivery records (replica applies + client completions).
    pub deliveries: usize,
    /// The first violation found, if any (prefixed with its category:
    /// `config:`, `invariant:`, `linearizability:` or `termination:`).
    pub violation: Option<String>,
}

/// One delivery record in a comparable form, for twin-run equality checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtDeliveryRecord {
    /// The delivering process.
    pub process: ProcessId,
    /// The delivered message.
    pub msg: MsgId,
    /// The agreed global timestamp (`None` for client completions that
    /// carry none).
    pub global_ts: Option<Timestamp>,
    /// Virtual time of the delivery.
    pub at: Duration,
}

/// A report plus the raw observables it was computed from, for tests that
/// compare two runs element by element rather than by digest.
#[derive(Debug, Clone)]
pub struct RtArtifacts {
    /// The checked report.
    pub report: RtReport,
    /// Every delivery record, in global log order.
    pub deliveries: Vec<RtDeliveryRecord>,
    /// FNV-1a digest of the scheduler's decision trace alone.
    pub trace_digest: u64,
}

/// FNV-1a over the run's observable behaviour (the same construction the
/// simulator explorer uses for its digests).
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// What one deterministic run produced, before checking.
struct RawRun {
    deliveries: Vec<RuntimeDelivery>,
    trace_digest: u64,
    /// Every message the transport carried, converted for the Figure 6
    /// checkers; `None` for the baselines (whose wire format the white-box
    /// checkers do not read).
    whitebox_trace: Option<Vec<SentMessage>>,
}

fn drive<M: Clone + Send + 'static>(
    mut rt: DeterministicRuntime<M>,
    plan: &RtPlan,
    submissions: Vec<(Duration, ProcessId, AppMessage)>,
) -> DeterministicRuntime<M> {
    for (at, client, msg) in submissions {
        rt.schedule_submit(at, client, msg);
    }
    for crash in &plan.crashes {
        rt.schedule_crash(crash.at, crash.node, crash.down_for);
    }
    rt.run(plan.horizon);
    rt
}

fn run_raw(
    token: &RtSeedToken,
    plan: &RtPlan,
    cluster: &ClusterConfig,
    submissions: Vec<(Duration, ProcessId, AppMessage)>,
) -> Result<RawRun, String> {
    match token.protocol {
        Protocol::WhiteBox => {
            // Node order is the runtime's tie-break order: replicas in group
            // order (matching their process-id order), then clients.
            let mut nodes: Vec<BoxedNode<wbam_core::WhiteBoxMsg>> = Vec::new();
            for gc in cluster.groups() {
                for member in gc.members() {
                    let cfg = ReplicaConfig::new(*member, gc.id(), cluster.clone())
                        .with_election_timeouts(HEARTBEAT, ELECTION_TIMEOUT)
                        .with_retry_timeout(RETRY_TIMEOUT);
                    nodes.push(Box::new(
                        WhiteBoxReplica::try_new(cfg).map_err(|e| e.to_string())?,
                    ));
                }
            }
            for client in cluster.clients() {
                nodes.push(Box::new(MulticastClient::new(
                    ClientConfig::new(*client, cluster.clone()).with_retry_timeout(RETRY_TIMEOUT),
                )));
            }
            let rt = drive(
                DeterministicRuntime::new(nodes, token.seed),
                plan,
                submissions,
            );
            let trace = rt
                .sent_messages()
                .into_iter()
                .map(|r| SentMessage {
                    from: r.from,
                    to: r.to,
                    msg: r.msg,
                })
                .collect();
            Ok(RawRun {
                deliveries: rt.deliveries(),
                trace_digest: rt.trace_digest(),
                whitebox_trace: Some(trace),
            })
        }
        Protocol::FastCast | Protocol::FtSkeen => {
            let mode = if token.protocol == Protocol::FastCast {
                Mode::FastCast
            } else {
                Mode::FtSkeen
            };
            let mut nodes: Vec<BoxedNode<BaselineMsg>> = Vec::new();
            for gc in cluster.groups() {
                for member in gc.members() {
                    nodes.push(Box::new(
                        BaselineReplica::try_new(*member, gc.id(), cluster.clone(), mode)
                            .map_err(|e| e.to_string())?,
                    ));
                }
            }
            for client in cluster.clients() {
                nodes.push(Box::new(BaselineClient::new(
                    *client,
                    cluster.clone(),
                    RETRY_TIMEOUT,
                )));
            }
            let rt = drive(
                DeterministicRuntime::new(nodes, token.seed),
                plan,
                submissions,
            );
            Ok(RawRun {
                deliveries: rt.deliveries(),
                trace_digest: rt.trace_digest(),
                whitebox_trace: None,
            })
        }
        Protocol::Skeen => Err(format!(
            "{} has no deployed node loop to schedule",
            token.protocol.label()
        )),
    }
}

/// Runs a generated plan and checks it (used directly by [`minimize_rt`]
/// with a modified crash list; use [`run_rt_token`] for the canonical plan
/// of a token).
pub fn run_rt_plan(token: &RtSeedToken, plan: &RtPlan) -> RtReport {
    run_rt_artifacts(token, plan).report
}

/// Like [`run_rt_plan`], also returning the raw delivery records and trace
/// digest for element-by-element twin-run comparison.
pub fn run_rt_artifacts(token: &RtSeedToken, plan: &RtPlan) -> RtArtifacts {
    let mut report = RtReport {
        token: *token,
        digest: 0,
        ops: plan.ops.len(),
        completed: 0,
        deliveries: 0,
        violation: None,
    };

    let cluster = ClusterConfig::builder()
        .groups(plan.num_groups, plan.group_size)
        .clients(plan.num_clients)
        .build();
    let partitioner = Partitioner::new(plan.num_groups as u32);
    let mut history = KvHistory {
        partitions: plan.num_groups as u32,
        ..KvHistory::default()
    };

    // Build the submission stream: one AppMessage per op, ids unique per
    // client, invocation recorded in the oracle history.
    let mut next_seq: BTreeMap<ProcessId, u64> = BTreeMap::new();
    let mut submissions = Vec::with_capacity(plan.ops.len());
    let mut op_cmds: BTreeMap<MsgId, &KvCommand> = BTreeMap::new();
    for op in &plan.ops {
        let client = cluster.clients()[op.client_index % cluster.clients().len()];
        let seq = next_seq.entry(client).or_insert(0);
        let id = MsgId::new(client, *seq);
        *seq += 1;
        let dest = partitioner
            .destination_of(op.cmd.keys())
            .expect("generated commands have keys");
        let payload = serde_json::to_vec(&op.cmd).expect("commands encode");
        submissions.push((
            op.at,
            client,
            AppMessage::new(id, dest, Payload::from(payload)),
        ));
        history.invoke(id, op.cmd.clone(), op.at);
        op_cmds.insert(id, &op.cmd);
    }

    let raw = match run_raw(token, plan, &cluster, submissions) {
        Ok(raw) => raw,
        Err(e) => {
            report.violation = Some(format!("config: {e}"));
            return RtArtifacts {
                report,
                deliveries: Vec::new(),
                trace_digest: 0,
            };
        }
    };
    report.deliveries = raw.deliveries.len();

    // Digest: every delivery record in log order, then the scheduler trace.
    let mut digest = Digest::new();
    let mut records = Vec::with_capacity(raw.deliveries.len());
    for d in &raw.deliveries {
        digest.write(d.elapsed.as_nanos() as u64);
        digest.write(u64::from(d.process.0));
        digest.write(u64::from(d.delivery.msg.id.sender.0));
        digest.write(d.delivery.msg.id.seq);
        let gts = d.delivery.global_ts.unwrap_or(Timestamp::BOTTOM);
        digest.write(gts.time());
        digest.write(gts.group().map(|g| u64::from(g.0) + 1).unwrap_or(0));
        records.push(RtDeliveryRecord {
            process: d.process,
            msg: d.delivery.msg.id,
            global_ts: d.delivery.global_ts,
            at: d.elapsed,
        });
    }
    digest.write(raw.trace_digest);
    report.digest = digest.0;

    // --- Figure 6 invariants (white-box message trace) ------------------
    if let Some(trace) = &raw.whitebox_trace {
        let result = check_unique_proposals(trace)
            .and_then(|()| check_deliver_agreement(trace))
            .and_then(|()| check_deliver_local_ts_per_group(trace, |p| cluster.group_of(p)));
        if let Err(v) = result {
            report.violation = Some(format!("invariant: {v}"));
            return RtArtifacts {
                report,
                deliveries: records,
                trace_digest: raw.trace_digest,
            };
        }
    }

    // --- Delivery-log invariants (all protocols) ------------------------
    let mut per_process: BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>> = BTreeMap::new();
    let mut violation = None;
    for d in &raw.deliveries {
        if cluster.group_of(d.process).is_some() {
            let Some(gts) = d.delivery.global_ts else {
                violation = Some(format!(
                    "invariant: {} delivered {} without a global timestamp",
                    d.process, d.delivery.msg.id
                ));
                break;
            };
            per_process
                .entry(d.process)
                .or_default()
                .push((d.delivery.msg.id, gts));
        }
    }
    if violation.is_none() {
        if let Err(v) = check_total_order(&per_process) {
            violation = Some(format!("invariant: {v}"));
        }
    }

    // --- Linearizability oracle -----------------------------------------
    if violation.is_none() {
        let mut replica_stores: BTreeMap<ProcessId, KvStore> = BTreeMap::new();
        for d in &raw.deliveries {
            match cluster.group_of(d.process) {
                None => {
                    history.complete(d.delivery.msg.id, d.elapsed);
                }
                Some(group) => {
                    let Some(cmd) = op_cmds.get(&d.delivery.msg.id) else {
                        violation = Some(format!(
                            "invariant: {} delivered {} which was never submitted",
                            d.process, d.delivery.msg.id
                        ));
                        break;
                    };
                    let gts = d
                        .delivery
                        .global_ts
                        .expect("replica deliveries checked above");
                    let store = replica_stores
                        .entry(d.process)
                        .or_insert_with(|| KvStore::with_partitioner(group, partitioner));
                    let read = store.apply_read(cmd);
                    history.applied(d.delivery.msg.id, d.process, group, gts, read);
                }
            }
        }
        report.completed = history
            .ops
            .iter()
            .filter(|o| o.completed_at.is_some())
            .count();
        if violation.is_none() {
            // The channel transport is reliable; the only loss is mail
            // addressed to a down process, so only crashed replicas may
            // carry gaps or truncated suffixes.
            let faulty: BTreeSet<ProcessId> = plan.crashes.iter().map(|c| c.node).collect();
            if let Err(v) =
                history.check_excusing(&faulty, false, &BTreeMap::new(), &BTreeMap::new())
            {
                violation = Some(format!("linearizability: {v}"));
            }
        }
    }

    // --- Termination ------------------------------------------------------
    // The white-box retry machinery recovers crash-lost mail; the baselines
    // only run crash-free plans, where nothing is ever lost.
    if violation.is_none() {
        let undelivered: Vec<MsgId> = history
            .ops
            .iter()
            .filter(|o| o.completed_at.is_none())
            .map(|o| o.id)
            .collect();
        if !undelivered.is_empty() {
            violation = Some(format!(
                "termination: {} of {} operations never completed (first: {})",
                undelivered.len(),
                plan.ops.len(),
                undelivered[0]
            ));
        }
    }

    report.violation = violation;
    RtArtifacts {
        report,
        deliveries: records,
        trace_digest: raw.trace_digest,
    }
}

/// Runs the canonical plan of a token.
pub fn run_rt_token(token: &RtSeedToken) -> RtReport {
    let plan = generate_rt_plan(token);
    run_rt_plan(token, &plan)
}

/// Greedily minimizes the crash schedule of a failing run: repeatedly
/// removes individual crashes, keeping each removal whose run still fails.
/// Returns the smallest still-failing crash list.
pub fn minimize_rt(token: &RtSeedToken) -> Vec<RtCrash> {
    let base = generate_rt_plan(token);
    let still_fails = |crashes: &[RtCrash]| -> bool {
        let mut plan = base.clone();
        plan.crashes = crashes.to_vec();
        run_rt_plan(token, &plan).violation.is_some()
    };
    let mut crashes = base.crashes.clone();
    loop {
        let mut changed = false;
        for idx in (0..crashes.len()).rev() {
            let mut candidate = crashes.clone();
            candidate.remove(idx);
            if still_fails(&candidate) {
                crashes = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    crashes
}

/// A failing run, with its minimized crash schedule.
#[derive(Debug, Clone)]
pub struct RtFinding {
    /// Replay token reproducing the failure.
    pub token: RtSeedToken,
    /// The violation.
    pub description: String,
    /// The greedily minimized crash list (still failing), if minimization
    /// was enabled.
    pub minimized_crashes: Option<Vec<RtCrash>>,
}

/// Aggregate results of a deterministic-runtime exploration.
#[derive(Debug, Clone, Default)]
pub struct RtExplorationReport {
    /// Runs executed.
    pub schedules: usize,
    /// Failing runs.
    pub findings: Vec<RtFinding>,
    /// Total operations submitted.
    pub total_ops: usize,
    /// Total operations completed.
    pub total_completed: usize,
    /// Total crashes scheduled.
    pub crashes: usize,
}

/// Configuration of an exploration sweep.
#[derive(Debug, Clone)]
pub struct RtExplorerConfig {
    /// Number of runs; run `i` uses `protocols[i % protocols.len()]` with a
    /// seed derived from `base_seed` and `i`.
    pub schedules: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Protocols to rotate through.
    pub protocols: Vec<Protocol>,
    /// Minimize the crash schedule of failing runs before reporting.
    pub minimize: bool,
}

impl Default for RtExplorerConfig {
    fn default() -> Self {
        RtExplorerConfig {
            schedules: 60,
            base_seed: 42,
            protocols: Protocol::evaluated().to_vec(),
            minimize: true,
        }
    }
}

/// Runs an exploration sweep, collecting findings (with minimized crash
/// schedules) and aggregate statistics.
pub fn explore_rt(config: &RtExplorerConfig) -> RtExplorationReport {
    let mut report = RtExplorationReport::default();
    for index in 0..config.schedules {
        let token = rt_schedule_token(config.base_seed, index, &config.protocols);
        let plan = generate_rt_plan(&token);
        report.crashes += plan.crashes.len();
        let run = run_rt_plan(&token, &plan);
        report.schedules += 1;
        report.total_ops += run.ops;
        report.total_completed += run.completed;
        if let Some(description) = run.violation {
            let minimized_crashes = config.minimize.then(|| minimize_rt(&token));
            report.findings.push(RtFinding {
                token,
                description,
                minimized_crashes,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_through_display_and_parse() {
        for protocol in Protocol::evaluated() {
            let token = RtSeedToken {
                protocol,
                seed: 0xdead_beef_1234_5678,
            };
            let s = token.to_string();
            assert!(s.starts_with("WBAM_SEED=rt1:"));
            assert_eq!(RtSeedToken::parse(&s).unwrap(), token);
            let bare = s.strip_prefix("WBAM_SEED=").unwrap();
            assert_eq!(RtSeedToken::parse(bare).unwrap(), token);
        }
        // Other engines' tokens and the sim-only protocol are rejected.
        assert!(RtSeedToken::parse("v2:WbCast:1").is_err());
        assert!(RtSeedToken::parse("n1:WbCast:1").is_err());
        assert!(RtSeedToken::parse("rt1:Skeen1:1").is_err());
        assert!(RtSeedToken::parse("rt1:WbCast:zz").is_err());
    }

    #[test]
    fn plans_are_deterministic_and_share_the_workload_across_protocols() {
        let seed = 7u64;
        let wb = RtSeedToken {
            protocol: Protocol::WhiteBox,
            seed,
        };
        assert_eq!(generate_rt_plan(&wb), generate_rt_plan(&wb));
        let fc = generate_rt_plan(&RtSeedToken {
            protocol: Protocol::FastCast,
            seed,
        });
        let wb_plan = generate_rt_plan(&wb);
        assert_eq!(wb_plan.ops, fc.ops, "op stream must not shift per protocol");
        assert!(fc.crashes.is_empty(), "baselines run crash-free");
    }

    #[test]
    fn replaying_a_token_reproduces_the_run_byte_for_byte() {
        let token = rt_schedule_token(1, 0, &Protocol::evaluated());
        let plan = generate_rt_plan(&token);
        let a = run_rt_artifacts(&token, &plan);
        let b = run_rt_artifacts(&token, &plan);
        assert_eq!(a.report.digest, b.report.digest);
        assert_eq!(a.trace_digest, b.trace_digest);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.report.violation, b.report.violation);
    }

    #[test]
    fn a_small_rt_exploration_passes_cleanly() {
        let report = explore_rt(&RtExplorerConfig {
            schedules: 3,
            base_seed: 3,
            protocols: Protocol::evaluated().to_vec(),
            minimize: false,
        });
        assert_eq!(report.schedules, 3);
        assert!(report.total_ops > 0);
        assert_eq!(
            report.total_completed, report.total_ops,
            "every op completes on these plans"
        );
        assert!(
            report.findings.is_empty(),
            "unexpected finding {}: {}",
            report.findings[0].token,
            report.findings[0].description
        );
    }
}
