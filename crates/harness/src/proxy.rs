//! A fault-injecting TCP man-in-the-middle for deployed clusters.
//!
//! The simulator injects faults by construction — `simnet` owns every
//! message and can drop, delay or partition at will. A *deployed* cluster is
//! six OS processes talking over real sockets, so fault injection has to
//! happen on the wire: [`NemesisProxy`] interposes one tiny TCP forwarder on
//! every directed link of a [`DeploySpec`] topology and perturbs the frames
//! flowing through it, driven by the *same* [`NemesisPlan`] type the
//! simulator's nemesis executes. One seed therefore describes one fault
//! schedule in both worlds.
//!
//! # Topology
//!
//! The deployed transport uses simplex connections: to send to peer `j`,
//! process `i` dials `j`'s listen address and writes frames down that
//! connection (replies travel on `j`'s own dial to `i`). The proxy exploits
//! this: it binds one loopback listener per ordered pair `(i, j)` and
//! rewrites the spec's `routes` matrix so process `i` dials the `(i, j)`
//! listener instead of `j` directly. Each accepted connection is forwarded
//! byte-for-byte to the real `j` — except where the plan says otherwise.
//! Processes still *listen* on their own `addrs` entries; only dialling is
//! rerouted, so the cluster needs no code changes beyond reading
//! [`DeploySpec::dial_map`].
//!
//! # What the plan means on a real wire
//!
//! - **Drops** ([`LinkFaults::drop_per_mille`]): a complete protocol frame
//!   is read from the source and never written to the destination. The
//!   runtime's retry machinery must recover, exactly as for a frame lost at
//!   the output-buffer cap.
//! - **Duplicates** ([`LinkFaults::duplicate_per_mille`]): the frame is
//!   written twice back-to-back. Protocol handlers must be idempotent.
//! - **Delays** ([`LinkFaults::reorder_per_mille`] /
//!   [`LinkFaults::reorder_extra`]): the forwarder stalls before writing the
//!   frame. TCP preserves byte order within a connection, so a deployed
//!   "reorder" is a FIFO-preserving *stall* of the whole link — later frames
//!   on the same link wait behind the delayed one, but other links (and the
//!   reverse direction) race ahead, which is where real interleavings come
//!   from. This is the honest deployable reading of the sim's reorder knob;
//!   the capability matrix in DESIGN.md spells out the difference.
//! - **Partitions** ([`PartitionSpec`](wbam_types::nemesis::PartitionSpec)):
//!   while a partition blocks `i → j`, the `(i, j)` forwarder severs its
//!   live connection (the source sees a reset and enters dial backoff) and
//!   refuses new ones. Healing simply stops refusing — the source's next
//!   backoff dial goes through. Asymmetric partitions block one direction
//!   only, something `iptables`-style testing gets wrong surprisingly often.
//! - **Connection handshakes are exempt**: the 4-byte preamble and the
//!   `Hello` frame that open every connection are forwarded verbatim.
//!   Dropping them would just kill the connection before it carried any
//!   protocol traffic — the interesting faults are the ones the protocol
//!   must *recover from*, not a permanently undialable link (a partition
//!   expresses that case explicitly).
//!
//! Every probabilistic decision comes from a [`LinkScheduler`] — one
//! deterministically-seeded RNG per directed link, split from the plan seed
//! with the same SplitMix64 the explorer uses. Given the same seed and the
//! same sequence of frames on a link, the fate sequence is identical;
//! wall-clock timing of a live cluster is not reproducible, but *what the
//! nemesis does* is.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use wbam_types::nemesis::{LinkFaults, NemesisPlan};
use wbam_types::wire::{MAX_FRAME_LEN, PREAMBLE_LEN};
use wbam_types::{ProcessId, WbamError};

use crate::deploy::DeploySpec;
use crate::explorer::splitmix64;

/// Salt mixed into per-link seed derivation so link RNG streams are
/// independent of the plan/workload streams derived from the same seed.
const LINK_SEED_SALT: u64 = 0xC4A0_11CE_0DDB_A115;

/// How long the proxy waits for a connection to the real destination.
const DIAL_TIMEOUT: Duration = Duration::from_millis(250);

/// Read timeout on forwarded connections — bounds how stale the partition /
/// shutdown checks can get while a link is idle.
const READ_TIMEOUT: Duration = Duration::from_millis(25);

/// Accept-loop nap while a link has no inbound connection.
const ACCEPT_NAP: Duration = Duration::from_millis(10);

/// The fate of one protocol frame crossing a proxied link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Deliver the frame unchanged.
    Forward,
    /// Discard the frame; the destination never sees it.
    Drop,
    /// Deliver the frame twice back-to-back.
    Duplicate,
    /// Stall the link for the given duration, then deliver the frame (a
    /// FIFO-preserving delay — see the module docs on deployed "reorder").
    Delay(Duration),
}

/// The seeded per-link decision engine: everything probabilistic the proxy
/// does to frames on one directed link comes out of this, so it can be unit
/// tested for determinism without any sockets.
#[derive(Debug, Clone)]
pub struct LinkScheduler {
    from: ProcessId,
    to: ProcessId,
    plan: NemesisPlan,
    rng: StdRng,
}

impl LinkScheduler {
    /// Builds the scheduler for the directed link `from → to` of the plan,
    /// with its RNG split deterministically from `seed` and the link's
    /// endpoints: the same `(seed, from, to)` always yields the same
    /// decision stream, and distinct links get independent streams.
    pub fn new(seed: u64, from: ProcessId, to: ProcessId, plan: &NemesisPlan) -> Self {
        let link = ((from.0 as u64) << 32) | to.0 as u64;
        LinkScheduler {
            from,
            to,
            plan: plan.clone(),
            rng: StdRng::seed_from_u64(splitmix64(seed ^ link ^ LINK_SEED_SALT)),
        }
    }

    /// Whether a scheduled partition blocks this link at plan time `at`.
    /// Purely a function of the plan — no RNG is consumed, so interleaving
    /// `blocked` checks with [`Self::decide`] calls cannot skew the fate
    /// stream.
    pub fn blocked(&self, at: Duration) -> bool {
        self.plan.partition_blocks(at, self.from, self.to)
    }

    /// Draws the fate of the next frame on this link at plan time `at`.
    /// Outside the chaos window (or with no link faults configured) every
    /// frame forwards *without consuming randomness*, so the post-chaos
    /// drain phase cannot perturb replay.
    pub fn decide(&mut self, at: Duration) -> FrameFate {
        let LinkFaults {
            drop_per_mille,
            duplicate_per_mille,
            reorder_per_mille,
            reorder_extra,
        } = self.plan.link;
        if !self.plan.chaos_active(at) || !self.plan.link.any() {
            return FrameFate::Forward;
        }
        if drop_per_mille > 0 && self.rng.gen_range(0..1000u16) < drop_per_mille {
            return FrameFate::Drop;
        }
        if duplicate_per_mille > 0 && self.rng.gen_range(0..1000u16) < duplicate_per_mille {
            return FrameFate::Duplicate;
        }
        if reorder_per_mille > 0 && self.rng.gen_range(0..1000u16) < reorder_per_mille {
            // Between a quarter and the full reorder_extra, so delays vary
            // instead of beating at one resonant period.
            let stall = reorder_extra.mul_f64(self.rng.gen_range(0.25..=1.0));
            return FrameFate::Delay(stall);
        }
        FrameFate::Forward
    }
}

/// Internal atomic counters shared by every link thread of a proxy.
#[derive(Debug, Default)]
struct Counters {
    forwarded: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    severed: AtomicU64,
}

/// A point-in-time snapshot of what a [`NemesisProxy`] has done to traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStats {
    /// Protocol frames delivered to their destination (duplicates count
    /// each delivery).
    pub forwarded: u64,
    /// Protocol frames discarded by the drop knob.
    pub dropped: u64,
    /// Frames delivered twice by the duplicate knob (counted once here and
    /// twice in `forwarded`).
    pub duplicated: u64,
    /// Frames stalled by the delay knob before delivery.
    pub delayed: u64,
    /// Connections severed or refused — by partitions, destination dial
    /// failures, or peer closes.
    pub severed: u64,
}

/// The running man-in-the-middle: one listener + forwarder thread per
/// directed link of the spec's topology. Construct with [`Self::start`],
/// hand [`Self::routed_spec`] to the `wbamd` processes, and drop (or call
/// [`Self::shutdown`]) when the cluster is gone.
#[derive(Debug)]
pub struct NemesisProxy {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
    routed: DeploySpec,
}

impl NemesisProxy {
    /// Binds one loopback listener per directed link of `spec`, spawns the
    /// forwarder threads executing `plan` (probabilistic decisions seeded by
    /// `seed`, scheduled events timed relative to `epoch`), and returns the
    /// proxy. [`Self::routed_spec`] then carries the rewritten `routes`
    /// matrix every cluster process must be started with.
    ///
    /// # Errors
    ///
    /// Returns the spec's own validation errors, or [`WbamError::Io`] when
    /// binding a link listener fails.
    pub fn start(
        spec: &DeploySpec,
        plan: &NemesisPlan,
        seed: u64,
        epoch: Instant,
    ) -> Result<NemesisProxy, WbamError> {
        spec.validate()?;
        let real = spec.addr_map()?;
        let n = spec.addrs.len();
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let mut routes: Vec<Vec<String>> = vec![vec![String::new(); n]; n];
        let mut threads = Vec::with_capacity(n * (n - 1));
        for (i, row) in routes.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                if i == j {
                    // The diagonal is never dialled; keep the listen address
                    // there so the matrix stays meaningful to a human reading
                    // the JSON.
                    *slot = spec.addrs[i].clone();
                    continue;
                }
                let listener = TcpListener::bind("127.0.0.1:0").map_err(WbamError::from)?;
                listener.set_nonblocking(true).map_err(WbamError::from)?;
                let port = listener.local_addr().map_err(WbamError::from)?.port();
                *slot = format!("127.0.0.1:{port}");
                let scheduler =
                    LinkScheduler::new(seed, ProcessId(i as u32), ProcessId(j as u32), plan);
                let dst = real[&ProcessId(j as u32)];
                let link = LinkThread {
                    listener,
                    scheduler,
                    dst,
                    epoch,
                    stop: Arc::clone(&stop),
                    counters: Arc::clone(&counters),
                };
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("nemesis-{i}-{j}"))
                        .spawn(move || link.run())
                        .map_err(WbamError::from)?,
                );
            }
        }
        let mut routed = spec.clone();
        routed.routes = Some(routes);
        Ok(NemesisProxy {
            stop,
            threads,
            counters,
            routed,
        })
    }

    /// The deployment spec the cluster processes must be started with: the
    /// input spec plus the `routes` matrix that sends every dial through
    /// this proxy.
    pub fn routed_spec(&self) -> &DeploySpec {
        &self.routed
    }

    /// A snapshot of the traffic counters across all links.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            forwarded: self.counters.forwarded.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            duplicated: self.counters.duplicated.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            severed: self.counters.severed.load(Ordering::Relaxed),
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Stops every link thread and waits for them to exit. Dropping the
    /// proxy does the same; this form just makes the teardown point
    /// explicit in orchestrator code.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }
}

impl Drop for NemesisProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Everything one link's forwarder thread owns.
struct LinkThread {
    listener: TcpListener,
    scheduler: LinkScheduler,
    dst: SocketAddr,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
}

impl LinkThread {
    fn run(mut self) {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            match self.listener.accept() {
                Ok((upstream, _)) => {
                    if self.scheduler.blocked(self.epoch.elapsed()) {
                        // Partitioned: refuse by closing immediately. The
                        // source sees a reset and retries with backoff, so
                        // healing needs no action here.
                        self.counters.severed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.forward(upstream);
                    self.counters.severed.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    // WouldBlock (no dialler) or a transient accept error:
                    // nap and re-check the stop flag.
                    std::thread::sleep(ACCEPT_NAP);
                }
            }
        }
    }

    /// Forwards one accepted connection until it is severed — by either
    /// endpoint closing, a partition window opening, a corrupt frame, or
    /// proxy shutdown. Returns to the accept loop afterwards so the
    /// source's reconnect finds the link again.
    fn forward(&mut self, mut upstream: TcpStream) {
        let Ok(mut downstream) = TcpStream::connect_timeout(&self.dst, DIAL_TIMEOUT) else {
            return; // destination down: sever so the source re-dials later
        };
        if upstream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
            return;
        }
        let _ = upstream.set_nodelay(true);
        let _ = downstream.set_nodelay(true);

        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        let mut preamble_done = false;
        let mut hello_done = false;
        loop {
            if self.stop.load(Ordering::Relaxed) || self.scheduler.blocked(self.epoch.elapsed()) {
                return; // severing both sockets = connection reset for src
            }
            match upstream.read(&mut chunk) {
                Ok(0) => return, // source closed
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue; // idle link: loop re-checks partitions/stop
                }
                Err(_) => return,
            }
            // Cut complete units off the front of the buffer. The handshake
            // (preamble + Hello frame) forwards verbatim; every later frame
            // gets a seeded fate.
            loop {
                if !preamble_done {
                    if buf.len() < PREAMBLE_LEN {
                        break;
                    }
                    if downstream.write_all(&buf[..PREAMBLE_LEN]).is_err() {
                        return;
                    }
                    buf.drain(..PREAMBLE_LEN);
                    preamble_done = true;
                    continue;
                }
                if buf.len() < 4 {
                    break;
                }
                let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
                if len > MAX_FRAME_LEN {
                    return; // corrupt length prefix: unrecoverable, sever
                }
                if buf.len() < 4 + len {
                    break;
                }
                let frame = &buf[..4 + len];
                if !hello_done {
                    // The Hello frame is handshake, not traffic: forwarded
                    // verbatim and excluded from the stats.
                    hello_done = true;
                    if downstream.write_all(frame).is_err() {
                        return;
                    }
                    buf.drain(..4 + len);
                    continue;
                }
                let fate = self.scheduler.decide(self.epoch.elapsed());
                let wrote = match fate {
                    FrameFate::Forward => {
                        self.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                        downstream.write_all(frame)
                    }
                    FrameFate::Drop => {
                        self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }
                    FrameFate::Duplicate => {
                        self.counters.duplicated.fetch_add(1, Ordering::Relaxed);
                        self.counters.forwarded.fetch_add(2, Ordering::Relaxed);
                        downstream
                            .write_all(frame)
                            .and_then(|()| downstream.write_all(frame))
                    }
                    FrameFate::Delay(stall) => {
                        self.counters.delayed.fetch_add(1, Ordering::Relaxed);
                        self.sleep_interruptibly(stall);
                        self.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                        downstream.write_all(frame)
                    }
                };
                if wrote.is_err() {
                    return; // destination gone: sever, let src re-dial
                }
                buf.drain(..4 + len);
            }
        }
    }

    /// Sleeps for `total`, waking early on proxy shutdown so a long stall
    /// cannot block teardown.
    fn sleep_interruptibly(&self, total: Duration) {
        let deadline = Instant::now() + total;
        while Instant::now() < deadline {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            std::thread::sleep(left.min(Duration::from_millis(10)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Protocol;
    use wbam_types::nemesis::PartitionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn chaotic_plan() -> NemesisPlan {
        NemesisPlan {
            link: LinkFaults {
                drop_per_mille: 200,
                duplicate_per_mille: 150,
                reorder_per_mille: 100,
                reorder_extra: ms(40),
            },
            chaos_end: Some(ms(5_000)),
            ..NemesisPlan::quiet()
        }
    }

    /// Satellite: same seed + same call sequence ⇒ same fates; a different
    /// seed or a different link diverges.
    #[test]
    fn same_seed_same_link_same_byte_stream_is_deterministic() {
        let plan = chaotic_plan();
        let fates = |seed: u64, from: u32, to: u32| -> Vec<FrameFate> {
            let mut s = LinkScheduler::new(seed, ProcessId(from), ProcessId(to), &plan);
            (0..2_000).map(|i| s.decide(ms(i % 4_000))).collect()
        };
        assert_eq!(fates(7, 0, 1), fates(7, 0, 1));
        assert_ne!(fates(7, 0, 1), fates(8, 0, 1), "seed must matter");
        assert_ne!(fates(7, 0, 1), fates(7, 1, 0), "direction must matter");
        assert_ne!(fates(7, 0, 1), fates(7, 0, 2), "destination must matter");
        // All four fates actually occur at these knob settings.
        let sample = fates(7, 0, 1);
        assert!(sample.contains(&FrameFate::Drop));
        assert!(sample.contains(&FrameFate::Duplicate));
        assert!(sample.contains(&FrameFate::Forward));
        assert!(sample.iter().any(|f| matches!(f, FrameFate::Delay(_))));
    }

    /// Frames outside the chaos window forward without consuming RNG state,
    /// so drain-phase traffic cannot skew a replay.
    #[test]
    fn post_chaos_frames_forward_and_preserve_the_stream() {
        let plan = chaotic_plan();
        let mut a = LinkScheduler::new(3, ProcessId(0), ProcessId(1), &plan);
        let mut b = LinkScheduler::new(3, ProcessId(0), ProcessId(1), &plan);
        // `a` sees 500 extra post-chaos frames interleaved; `b` does not.
        let during_a: Vec<FrameFate> = (0..200)
            .map(|i| {
                for _ in 0..2 {
                    assert_eq!(a.decide(ms(6_000)), FrameFate::Forward);
                }
                a.decide(ms(i * 10))
            })
            .collect();
        let during_b: Vec<FrameFate> = (0..200).map(|i| b.decide(ms(i * 10))).collect();
        assert_eq!(during_a, during_b);
    }

    /// Satellite: a partition blocks exactly its window and its direction;
    /// healing restores both directions.
    #[test]
    fn partition_windows_block_and_heal_per_direction() {
        let mut plan = NemesisPlan::quiet();
        plan.partitions.push(PartitionSpec {
            start: ms(100),
            heal: ms(300),
            side_a: vec![ProcessId(0)],
            side_b: vec![ProcessId(1), ProcessId(2)],
            symmetric: false,
        });
        let ab = LinkScheduler::new(1, ProcessId(0), ProcessId(1), &plan);
        let ba = LinkScheduler::new(1, ProcessId(1), ProcessId(0), &plan);
        // Before the window: open both ways.
        assert!(!ab.blocked(ms(50)) && !ba.blocked(ms(50)));
        // During: a→b blocked; the asymmetric reverse stays open.
        assert!(ab.blocked(ms(150)));
        assert!(!ba.blocked(ms(150)));
        // After heal: both directions restored.
        assert!(!ab.blocked(ms(300)) && !ba.blocked(ms(300)));
        assert!(!ab.blocked(ms(400)) && !ba.blocked(ms(400)));

        // The symmetric variant blocks both directions, and heals both.
        plan.partitions[0].symmetric = true;
        let ab = LinkScheduler::new(1, ProcessId(0), ProcessId(1), &plan);
        let ba = LinkScheduler::new(1, ProcessId(1), ProcessId(0), &plan);
        assert!(ab.blocked(ms(150)) && ba.blocked(ms(150)));
        assert!(!ab.blocked(ms(350)) && !ba.blocked(ms(350)));
        // An uninvolved link never blocks.
        let cd = LinkScheduler::new(1, ProcessId(1), ProcessId(2), &plan);
        assert!(!cd.blocked(ms(150)));
    }

    /// A quiet plan is a transparent wire: preamble, Hello and every frame
    /// arrive intact and in order through the real listener/forwarder pair.
    #[test]
    fn quiet_proxy_forwards_handshake_and_frames_verbatim() {
        let spec = DeploySpec::loopback_free_ports(Protocol::WhiteBox, 1, 3, 0).unwrap();
        let real_dst = TcpListener::bind(spec.addrs[1].as_str()).unwrap();
        let proxy = NemesisProxy::start(&spec, &NemesisPlan::quiet(), 11, Instant::now()).unwrap();
        let routed = proxy.routed_spec();
        assert_eq!(routed.routes.as_ref().unwrap().len(), 3);
        // Process 0 dials process 1 through the proxy's (0,1) listener...
        let route_0_to_1 = routed.dial_map(ProcessId(0)).unwrap()[&ProcessId(1)];
        assert_ne!(route_0_to_1, spec.addr_map().unwrap()[&ProcessId(1)]);

        let mut src = TcpStream::connect(route_0_to_1).unwrap();
        let (mut dst, _) = real_dst.accept().unwrap();
        dst.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // ...and the handshake plus three frames all arrive verbatim.
        let frame = |body: &[u8]| -> Vec<u8> {
            let mut f = (body.len() as u32).to_be_bytes().to_vec();
            f.extend_from_slice(body);
            f
        };
        let mut sent = b"WB\x01\x00".to_vec();
        sent.extend(frame(b"hello-frame"));
        sent.extend(frame(b"first"));
        sent.extend(frame(b""));
        sent.extend(frame(&[0xAB; 4096]));
        src.write_all(&sent).unwrap();
        let mut got = vec![0u8; sent.len()];
        dst.read_exact(&mut got).unwrap();
        assert_eq!(got, sent);
        assert_eq!(proxy.stats().forwarded, 3); // Hello is handshake, not traffic
        proxy.shutdown();
    }

    /// With the drop knob at 1000‰ the handshake still passes (preamble and
    /// Hello are exempt) but every protocol frame vanishes.
    #[test]
    fn full_drop_plan_passes_handshake_and_eats_every_frame() {
        let mut plan = NemesisPlan::quiet();
        plan.link.drop_per_mille = 1000;
        let spec = DeploySpec::loopback_free_ports(Protocol::WhiteBox, 1, 3, 0).unwrap();
        let real_dst = TcpListener::bind(spec.addrs[2].as_str()).unwrap();
        let proxy = NemesisProxy::start(&spec, &plan, 12, Instant::now()).unwrap();
        let route = proxy.routed_spec().dial_map(ProcessId(0)).unwrap()[&ProcessId(2)];

        let mut src = TcpStream::connect(route).unwrap();
        let (mut dst, _) = real_dst.accept().unwrap();
        dst.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sent = b"WB\x01\x00".to_vec();
        sent.extend((5u32).to_be_bytes());
        sent.extend(b"hello");
        src.write_all(&sent).unwrap();
        for i in 0..10u8 {
            let mut f = (1u32).to_be_bytes().to_vec();
            f.push(i);
            src.write_all(&f).unwrap();
        }
        // Handshake comes through...
        let mut got = vec![0u8; sent.len()];
        dst.read_exact(&mut got).unwrap();
        assert_eq!(got, sent);
        // ...then nothing else does.
        dst.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut probe = [0u8; 1];
        assert!(dst.read_exact(&mut probe).is_err(), "dropped frame leaked");
        // Wait for the forwarder to chew through all ten frames before
        // asserting the counter (writes race the read timeout above).
        let begin = Instant::now();
        while proxy.stats().dropped < 10 {
            assert!(
                begin.elapsed() < Duration::from_secs(5),
                "{:?}",
                proxy.stats()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(proxy.stats().forwarded, 0);
        proxy.shutdown();
    }

    /// A blocked window severs a live connection and refuses new ones; after
    /// heal, a fresh dial forwards again — the deployed partition lifecycle.
    #[test]
    fn partition_severs_then_heals_a_live_link() {
        let mut plan = NemesisPlan::quiet();
        plan.partitions.push(PartitionSpec {
            start: ms(150),
            heal: ms(700),
            side_a: vec![ProcessId(0)],
            side_b: vec![ProcessId(1)],
            symmetric: true,
        });
        let spec = DeploySpec::loopback_free_ports(Protocol::WhiteBox, 1, 3, 0).unwrap();
        let real_dst = TcpListener::bind(spec.addrs[1].as_str()).unwrap();
        real_dst.set_nonblocking(true).unwrap();
        let epoch = Instant::now();
        let proxy = NemesisProxy::start(&spec, &plan, 13, epoch).unwrap();
        let route = proxy.routed_spec().dial_map(ProcessId(0)).unwrap()[&ProcessId(1)];

        // Connect before the window and confirm the link works.
        let mut src = TcpStream::connect(route).unwrap();
        let mut dst = loop {
            match real_dst.accept() {
                Ok((s, _)) => break s,
                Err(_) => std::thread::sleep(ms(5)),
            }
        };
        dst.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut handshake = b"WB\x01\x00".to_vec();
        handshake.extend((2u32).to_be_bytes());
        handshake.extend(b"hi");
        src.write_all(&handshake).unwrap();
        let mut got = vec![0u8; handshake.len()];
        dst.read_exact(&mut got).unwrap();

        // Inside the window the proxy severs: the upstream write eventually
        // errors (or the downstream read sees EOF).
        while epoch.elapsed() < ms(200) {
            std::thread::sleep(ms(10));
        }
        let mut eof = [0u8; 1];
        let severed = loop {
            match dst.read(&mut eof) {
                Ok(0) => break true,
                Ok(_) => continue,
                Err(_) => break false,
            }
        };
        assert!(severed, "destination side must see the sever as EOF");
        // Re-dials inside the window are refused (accepted then closed).
        let mut refused = TcpStream::connect(route).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            matches!(refused.read(&mut eof), Ok(0) | Err(_)),
            "mid-window dial must not stay open"
        );

        // After heal a fresh dial forwards end to end again.
        while epoch.elapsed() < ms(750) {
            std::thread::sleep(ms(10));
        }
        let mut src2 = TcpStream::connect(route).unwrap();
        src2.write_all(&handshake).unwrap();
        let mut dst2 = loop {
            match real_dst.accept() {
                Ok((s, _)) => break s,
                Err(_) => std::thread::sleep(ms(5)),
            }
        };
        dst2.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut got2 = vec![0u8; handshake.len()];
        dst2.read_exact(&mut got2).unwrap();
        assert_eq!(got2, handshake);
        proxy.shutdown();
    }
}
