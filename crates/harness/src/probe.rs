//! Single-message latency probes.
//!
//! These drive one (or two) carefully timed multicasts through a cluster with
//! a constant one-way delay δ and report delivery latencies in multiples of δ.
//! They regenerate the paper's analytical latency claims ("Table 1"), the
//! message-flow diagram of Figure 5 and the convoy-effect scenario of
//! Figure 2.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use wbam_types::GroupId;

use crate::cluster::{ClusterSpec, Protocol, ProtocolSim};

/// Result of a single-message latency probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyProbeResult {
    /// The protocol probed.
    pub protocol: String,
    /// The configured one-way delay δ.
    pub delta: Duration,
    /// Worst-case first-delivery latency over all destination groups.
    pub latency: Duration,
    /// The same latency expressed in multiples of δ.
    pub delta_multiples: f64,
}

/// Measures the collision-free delivery latency of a single multicast to
/// `dest_groups` groups under a constant one-way delay `delta`.
///
/// For the white-box protocol the expected result is 3δ (the first delivery in
/// each group happens at its leader); for FastCast 4δ; for fault-tolerant
/// Skeen 6δ; for plain Skeen (singleton groups) 2δ.
pub fn latency_probe(
    protocol: Protocol,
    dest_groups: usize,
    delta: Duration,
) -> LatencyProbeResult {
    let group_size = if protocol == Protocol::Skeen { 1 } else { 3 };
    let spec = ClusterSpec::constant_delta(dest_groups.max(2), group_size, delta);
    let mut sim = ProtocolSim::build(protocol, &spec);
    let dest: Vec<GroupId> = (0..dest_groups as u32).map(GroupId).collect();
    let id = sim.submit(Duration::ZERO, 0, &dest, 20);
    sim.run_until_quiescent(Duration::from_secs(600));
    let latency = sim
        .metrics()
        .latency(id)
        .expect("probe message must be delivered");
    LatencyProbeResult {
        protocol: protocol.label().to_string(),
        delta,
        latency,
        delta_multiples: latency.as_secs_f64() / delta.as_secs_f64(),
    }
}

/// Reproduces the convoy-effect scenario of Figure 2 for a given protocol.
///
/// The schedule has three phases:
///
/// 1. Group 1's logical clock is primed with a few messages addressed to it
///    alone, so that a subsequent conflicting message gets a *high* global
///    timestamp (as in Figure 2, where the second group's proposal dominates).
/// 2. The probed message `m` is multicast to groups 0 and 1; its global
///    timestamp is therefore dictated by group 1's (high) clock.
/// 3. A conflicting message `m'` is multicast so that it reaches group 0's
///    leader just *before* that leader advances its clock past `m`'s global
///    timestamp. `m'` then receives a local timestamp below `GlobalTS[m]` and
///    blocks the delivery of `m` until `m'` itself commits.
///
/// The returned latency of `m` therefore approximates the protocol's
/// failure-free latency: collision-free latency plus the protocol's "clock
/// lag" C (paper §V, equation (4)). Protocols that advance their clocks
/// speculatively (the white-box protocol, C = 2δ) suffer far less than those
/// that only advance them after their second consensus (FastCast C = 4δ,
/// fault-tolerant Skeen C = 6δ).
pub fn convoy_probe(protocol: Protocol, delta: Duration) -> LatencyProbeResult {
    let group_size = if protocol == Protocol::Skeen { 1 } else { 3 };
    let spec = ClusterSpec {
        num_clients: 2,
        ..ClusterSpec::constant_delta(2, group_size, delta)
    };
    let mut sim = ProtocolSim::build(protocol, &spec);
    let dest = [GroupId(0), GroupId(1)];
    // Phase 1: prime group 1's clock.
    for _ in 0..4 {
        sim.submit(Duration::ZERO, 1, &[GroupId(1)], 20);
    }
    // Start long after the priming traffic has quiesced.
    let start = delta * 40;
    // Phase 2: the probed message.
    let m = sim.submit(start, 0, &dest, 20);
    // Phase 3: the conflicting message, timed to arrive at group 0's leader
    // just before that leader's clock passes GlobalTS[m]. The clock-advance
    // point (in message delays after multicast(m)) is protocol specific.
    let clock_advance_delays = match protocol {
        Protocol::Skeen => 2,    // on commit
        Protocol::WhiteBox => 2, // speculative, on receiving the full ACCEPT set
        Protocol::FastCast => 4, // after the second consensus
        Protocol::FtSkeen => 6,  // after the second consensus
    };
    let epsilon = Duration::from_micros(50);
    let t_prime = start + delta * (clock_advance_delays - 1) - epsilon;
    sim.submit(t_prime, 1, &dest, 20);
    sim.run_until_quiescent(Duration::from_secs(600));
    let latency = sim
        .metrics()
        .latency(m)
        .expect("probe message must be delivered");
    LatencyProbeResult {
        protocol: protocol.label().to_string(),
        delta,
        latency,
        delta_multiples: latency.as_secs_f64() / delta.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DELTA: Duration = Duration::from_millis(10);

    fn close_to(multiples: f64, expected: f64) -> bool {
        (multiples - expected).abs() < 0.35
    }

    #[test]
    fn whitebox_collision_free_latency_is_three_delta() {
        let r = latency_probe(Protocol::WhiteBox, 2, DELTA);
        assert!(
            close_to(r.delta_multiples, 3.0),
            "expected ~3δ, measured {:.2}δ",
            r.delta_multiples
        );
    }

    #[test]
    fn fastcast_collision_free_latency_is_four_delta() {
        let r = latency_probe(Protocol::FastCast, 2, DELTA);
        assert!(
            close_to(r.delta_multiples, 4.0),
            "expected ~4δ, measured {:.2}δ",
            r.delta_multiples
        );
    }

    #[test]
    fn ftskeen_collision_free_latency_is_six_delta() {
        let r = latency_probe(Protocol::FtSkeen, 2, DELTA);
        assert!(
            close_to(r.delta_multiples, 6.0),
            "expected ~6δ, measured {:.2}δ",
            r.delta_multiples
        );
    }

    #[test]
    fn plain_skeen_collision_free_latency_is_two_delta() {
        let r = latency_probe(Protocol::Skeen, 2, DELTA);
        assert!(
            close_to(r.delta_multiples, 2.0),
            "expected ~2δ, measured {:.2}δ",
            r.delta_multiples
        );
    }

    #[test]
    fn convoy_increases_skeen_latency_towards_four_delta() {
        let collision_free = latency_probe(Protocol::Skeen, 2, DELTA).delta_multiples;
        let convoy = convoy_probe(Protocol::Skeen, DELTA).delta_multiples;
        assert!(
            convoy > collision_free + 0.5,
            "convoy ({convoy:.2}δ) should exceed collision-free ({collision_free:.2}δ)"
        );
        assert!(
            convoy <= 4.2,
            "Skeen's failure-free latency is bounded by 4δ"
        );
    }

    #[test]
    fn convoy_penalty_is_smaller_for_whitebox_than_for_baselines() {
        let wb = convoy_probe(Protocol::WhiteBox, DELTA).delta_multiples;
        let fc = convoy_probe(Protocol::FastCast, DELTA).delta_multiples;
        let fts = convoy_probe(Protocol::FtSkeen, DELTA).delta_multiples;
        assert!(
            wb <= 5.2,
            "white-box failure-free latency must stay ≤ 5δ, got {wb:.2}δ"
        );
        assert!(
            wb < fc && fc < fts,
            "expected WbCast < FastCast < FT-Skeen under collisions, got {wb:.2} / {fc:.2} / {fts:.2}"
        );
    }
}
