//! Shared helpers for the figure-reproduction binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a corresponding binary
//! in `src/bin/` (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results):
//!
//! | experiment | binary |
//! |---|---|
//! | "Table 1" — collision-free / failure-free latencies | `table1_latency` |
//! | Figure 2 — convoy effect in Skeen's protocol | `fig2_convoy` |
//! | Figure 5 — white-box message flow (3δ / 4δ) | `fig5_flow` |
//! | Figure 7 — LAN latency & throughput sweep | `fig7_lan` |
//! | Figure 8 — WAN latency & throughput sweep | `fig8_wan` |
//! | Ablation A1 — speculative clock update | `ablation_speculative_clock` |
//! | Ablation A2 — genuine scalability | `ablation_genuine_scaling` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Duration;

/// Returns the experiment scale factor from the `WBAM_SCALE` environment
/// variable (default 1). The Figure 7/8 sweeps multiply their client counts
/// and run durations by this factor, so `WBAM_SCALE=5` approaches the paper's
/// client counts at the cost of much longer simulations.
pub fn scale() -> u64 {
    std::env::var("WBAM_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v >= 1)
        .unwrap_or(1)
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Prints a section header in the style used by all experiment binaries.
pub fn header(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    #[test]
    fn ms_formats_two_decimals() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
    }
}
