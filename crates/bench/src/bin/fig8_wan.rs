//! Figure 8: latency and throughput of WbCast, FastCast and fault-tolerant
//! Skeen in a WAN (10 groups replicated across Oregon, N. Virginia and
//! England; RTTs 60 / 75 / 130 ms) as client counts and destination-group
//! counts vary.
//!
//! Set `WBAM_SCALE` to increase client counts and run durations.

use std::time::Duration;

use wbam_bench::{header, scale};
use wbam_harness::{sweep, SweepSpec};

fn main() {
    header("Figure 8 — WAN latency / throughput sweep");
    let s = scale() as usize;
    let client_counts: Vec<usize> = [10, 25, 50].iter().map(|c| c * s).collect();
    let dest_group_counts = vec![2, 6];
    let mut spec = SweepSpec::wan(client_counts.clone(), dest_group_counts.clone());
    spec.workload.duration = Duration::from_secs(2 * scale());
    spec.workload.warmup = Duration::from_millis(500);
    println!(
        "clients: {client_counts:?}; destination groups: {dest_group_counts:?}; \
         (WBAM_SCALE={})\n",
        scale()
    );
    let result = sweep(&spec);
    println!("{}", result.to_table());
    println!("Expected shape (paper Figure 8): WbCast delivers in ~3 one-way WAN delays");
    println!("versus 4 for FastCast and 6 for fault-tolerant Skeen, which translates into");
    println!("roughly 1.3–2× lower latency and correspondingly higher saturation");
    println!("throughput at equal client counts.");
}
