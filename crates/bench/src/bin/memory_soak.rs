//! Bounded-memory soak benchmark: resident record counts and restart-recovery
//! cost with compaction on versus off, for every protocol, appended as
//! machine-readable JSON-lines records to `BENCH_memory.json`.
//!
//! The benchmark drives a paced multicast load through a 3×3 cluster twice
//! per protocol — once with compaction disabled (the paper's unbounded
//! behaviour: every record since genesis stays resident) and once with a
//! watermark exchange every 50 deliveries and a 100-record lag window — and
//! records:
//!
//! * `resident_records_max` / `resident_records_final`: the peak / final
//!   record count over all replicas (the quantity compaction bounds), and
//! * `restart_recovery_wall_ms`: the *host* wall-clock cost of draining a
//!   follower crash/restart scheduled after the load — the recovery
//!   handshake ships and merges the resident history, so this is the
//!   O(history) → O(suffix) restart-work measurement.
//!
//! Usage:
//!
//! ```text
//! memory_soak            # full profile (30k messages per run)
//! memory_soak --smoke    # CI profile (4k messages) + regression gate:
//!                        # exits non-zero if the compacted run's resident
//!                        # record count is not bounded (or never pruned)
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use wbam_bench::header;
use wbam_harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam_simnet::LatencyModel;
use wbam_types::GroupId;

const BENCH_FILE: &str = "BENCH_memory.json";
const INTERVAL: u64 = 50;
const LAG: usize = 100;

/// One machine-readable record, one JSON object per line of
/// `BENCH_memory.json` (append-only, like `BENCH_throughput.json`).
#[derive(Debug, Serialize, Deserialize)]
struct MemoryRecord {
    bench: String,
    protocol: String,
    messages: usize,
    compaction_interval: u64,
    compaction_lag: usize,
    resident_records_max: usize,
    resident_records_final: usize,
    pruned_total: u64,
    restart_recovery_wall_ms: f64,
}

struct RunOutcome {
    resident_max: usize,
    resident_final: usize,
    pruned: u64,
    restart_wall: Duration,
}

fn spec(compaction: bool) -> ClusterSpec {
    let mut spec = ClusterSpec {
        num_groups: 3,
        group_size: 3,
        num_clients: 2,
        num_sites: 1,
        latency: LatencyModel::constant(Duration::from_micros(500)),
        service_time: Duration::ZERO,
        seed: 77,
        max_batch: 1,
        batch_delay: Duration::ZERO,
        nemesis: wbam_types::NemesisPlan::quiet(),
        record_trace: false,
        auto_election: false,
        compaction_interval: 0,
        compaction_lag: 0,
    };
    if compaction {
        spec = spec.with_compaction(INTERVAL, LAG);
    }
    spec
}

fn max_resident(sim: &ProtocolSim) -> usize {
    sim.cluster()
        .groups()
        .iter()
        .flat_map(|g| g.members())
        .filter_map(|m| sim.live_records(*m))
        .max()
        .unwrap_or(0)
}

/// Drives `messages` paced multicasts (70% single-group, 30% two-group),
/// sampling the peak resident record count, then crashes and restarts a
/// group-0 follower and measures the wall-clock cost of draining recovery.
fn run(protocol: Protocol, messages: usize, compaction: bool) -> RunOutcome {
    let mut sim = ProtocolSim::build(protocol, &spec(compaction));
    let pace = Duration::from_micros(250);
    for i in 0..messages {
        let dest: Vec<GroupId> = if i % 10 < 7 {
            vec![GroupId((i % 3) as u32)]
        } else {
            vec![GroupId((i % 3) as u32), GroupId(((i + 1) % 3) as u32)]
        };
        sim.submit(pace * (i as u32 / 2), i % 2, &dest, 20);
    }
    // Sample the resident peak every ~4k submissions' worth of time.
    let total = pace * (messages as u32 / 2);
    let mut resident_max = 0usize;
    let step = total / 8 + Duration::from_millis(1);
    let mut at = step;
    while at < total {
        sim.run_until_quiescent(at);
        resident_max = resident_max.max(max_resident(&sim));
        at += step;
    }
    sim.run_until_quiescent(total + Duration::from_secs(5));
    resident_max = resident_max.max(max_resident(&sim));

    // Crash + restart a follower of group 0 after the load; the wall-clock
    // cost of the drain is dominated by the recovery handshake shipping and
    // merging the resident history (checkpoint + suffix when compacted).
    let victim = sim.cluster().group(GroupId(0)).unwrap().members()[1];
    let down = total + Duration::from_secs(6);
    let up = total + Duration::from_secs(7);
    sim.crash(down, victim);
    sim.restart(up, victim);
    let start = Instant::now();
    sim.run_until_quiescent(Duration::from_secs(3_600));
    let restart_wall = start.elapsed();

    let metrics = sim.metrics();
    RunOutcome {
        resident_max,
        resident_final: max_resident(&sim),
        pruned: metrics.gauge("pruned_total").unwrap_or(0.0) as u64,
        restart_wall,
    }
}

fn append_record(record: &MemoryRecord) {
    use std::io::Write;
    let line = match serde_json::to_string(record) {
        Ok(line) => line,
        Err(e) => {
            eprintln!("failed to encode record: {e}");
            return;
        }
    };
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(BENCH_FILE)
    {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("failed to write {BENCH_FILE}: {e}");
            }
        }
        Err(e) => eprintln!("failed to open {BENCH_FILE}: {e}"),
    }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let messages = if smoke { 4_000 } else { 30_000 };
    header(&format!(
        "memory_soak — resident records & restart cost, {messages} messages \
         (interval {INTERVAL}, lag {LAG})"
    ));
    println!(
        "{:<10} {:>11} {:>13} {:>13} {:>11} {:>14}",
        "protocol", "compaction", "resident max", "resident end", "pruned", "restart (ms)"
    );
    let mut gate_ok = true;
    // Generous smoke bound: the lag window plus a few STABLE intervals of
    // not-yet-stable deliveries plus the in-flight window.
    let bound = LAG + 8 * INTERVAL as usize + 64;
    for protocol in Protocol::evaluated() {
        for compaction in [false, true] {
            let outcome = run(protocol, messages, compaction);
            println!(
                "{:<10} {:>11} {:>13} {:>13} {:>11} {:>14.2}",
                protocol.label(),
                if compaction { "on" } else { "off" },
                outcome.resident_max,
                outcome.resident_final,
                outcome.pruned,
                outcome.restart_wall.as_secs_f64() * 1e3,
            );
            append_record(&MemoryRecord {
                bench: "memory_soak".to_string(),
                protocol: protocol.label().to_string(),
                messages,
                compaction_interval: if compaction { INTERVAL } else { 0 },
                compaction_lag: if compaction { LAG } else { 0 },
                resident_records_max: outcome.resident_max,
                resident_records_final: outcome.resident_final,
                pruned_total: outcome.pruned,
                restart_recovery_wall_ms: outcome.restart_wall.as_secs_f64() * 1e3,
            });
            if compaction && (outcome.resident_max > bound || outcome.pruned == 0) {
                eprintln!(
                    "REGRESSION: {} compacted run resident max {} (bound {}), pruned {}",
                    protocol.label(),
                    outcome.resident_max,
                    bound,
                    outcome.pruned
                );
                gate_ok = false;
            }
        }
    }
    println!("records appended to {BENCH_FILE}");
    if gate_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
