//! Closed-loop throughput/latency of a *deployed* loopback TCP cluster — the
//! repo's first real-hardware numbers, sitting beside the simulated
//! `BENCH_throughput.json` trajectory.
//!
//! ```text
//! net_throughput [--smoke] [--messages N] [--wire binary|json|both] [--out FILE]
//!                [--latency-gate P50_MS]
//! ```
//!
//! Each measured point launches a fresh 2-group × 3-replica white-box cluster
//! as seven separate OS processes (six `wbamd` replicas + one `wbamd`
//! closed-loop client) over loopback TCP, runs the client to completion and
//! parses its summary. One JSON record per point is appended to
//! `BENCH_net.json` (same record shape as the simulated benches, environment
//! `"loopback-tcp"`, `wire` naming the codec). Unlike the simulated benches,
//! these numbers include real syscalls, real framing and real scheduler noise.
//!
//! Every point runs a warm-up pass first (`wbamd --warmup`): the client's
//! dials, preamble exchanges and first protocol round-trips complete before
//! the measured window opens, so short runs are not polluted by one-time
//! connection cost.
//!
//! `--wire` selects the codec(s) to measure (default `binary`; `both` runs
//! the whole sweep twice). `--smoke` shrinks the per-point message count for
//! CI and gates on basic sanity (every point completed, non-zero throughput).
//!
//! Idle-path latency is a first-class metric, not a by-product of the
//! throughput sweep: a dedicated depth-1 point (1 group, 1 outstanding, no
//! batching — the paper's 3-delay fast path with nothing queued behind it)
//! runs first for every codec and is recorded as bench `"net_latency"`.
//! `--latency-gate P50_MS` turns it into a regression gate: the run fails if
//! the *binary*-codec depth-1 p50 exceeds the bound on the best of up to
//! three attempts. Best-of-N is deliberate — on a shared CI core, scheduler
//! preemption can add ~0.1 ms to a ~0.2 ms path in any one run, but noise
//! does not reproduce across runs, while the regression this gate guards
//! against (a timed-park poller) is a *floor* that every attempt hits. Only
//! the best attempt's record is kept.
//!
//! The `wbamd` binary is expected next to this one in the target directory:
//! build it first with `cargo build --release -p wbam-harness --bin wbamd`.

use std::path::PathBuf;
use std::process::{Command, Stdio};

use wbam_bench::header;
use wbam_harness::{BenchRecord, ChildGuard, ClientSummary, DeploySpec, Protocol};
use wbam_types::wire::{from_json, WireCodec};

struct Config {
    label: &'static str,
    dest_groups: usize,
    outstanding: u64,
    max_batch: usize,
    batch_delay_ms: u64,
}

/// The dedicated idle-path latency point: a depth-1 closed loop into one
/// group with no batching, so every recorded latency is one unpipelined
/// 3-delay fast path — exactly what the wake-on-ready poller is for.
const LATENCY_CONFIG: Config = Config {
    label: "latency: 1-group, 1 outstanding",
    dest_groups: 1,
    outstanding: 1,
    max_batch: 1,
    batch_delay_ms: 0,
};

const CONFIGS: &[Config] = &[
    Config {
        label: "1-group, 1 outstanding",
        dest_groups: 1,
        outstanding: 1,
        max_batch: 1,
        batch_delay_ms: 0,
    },
    Config {
        label: "1-group, 16 outstanding",
        dest_groups: 1,
        outstanding: 16,
        max_batch: 1,
        batch_delay_ms: 0,
    },
    Config {
        label: "2-group, 1 outstanding",
        dest_groups: 2,
        outstanding: 1,
        max_batch: 1,
        batch_delay_ms: 0,
    },
    Config {
        label: "2-group, 16 outstanding",
        dest_groups: 2,
        outstanding: 16,
        max_batch: 1,
        batch_delay_ms: 0,
    },
    Config {
        label: "2-group, 16 outstanding, batch 16",
        dest_groups: 2,
        outstanding: 16,
        max_batch: 16,
        batch_delay_ms: 1,
    },
    Config {
        label: "1-group, 64 outstanding",
        dest_groups: 1,
        outstanding: 64,
        max_batch: 1,
        batch_delay_ms: 0,
    },
    // The peak-throughput shape on a small host: a deep closed-loop pipeline
    // with large protocol batches, so the per-message cost is almost entirely
    // amortized (one coalesced handoff and one socket write per batch).
    Config {
        label: "1-group, 512 outstanding, batch 128",
        dest_groups: 1,
        outstanding: 512,
        max_batch: 128,
        batch_delay_ms: 1,
    },
];

fn wbamd_path() -> PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.set_file_name("wbamd");
    assert!(
        path.exists(),
        "wbamd not found at {path:?}; build it first: \
         cargo build --release -p wbam-harness --bin wbamd"
    );
    path
}

fn run_point(
    wbamd: &PathBuf,
    dir: &std::path::Path,
    cfg: &Config,
    codec: WireCodec,
    messages: u64,
) -> ClientSummary {
    let mut spec = DeploySpec::loopback_free_ports(Protocol::WhiteBox, 2, 3, 1)
        .expect("reserve loopback ports");
    spec.wire = Some(codec.name().to_string());
    spec.max_batch = cfg.max_batch;
    spec.batch_delay_ms = cfg.batch_delay_ms;
    // Benchmarks never kill processes; a conservatively long election timeout
    // keeps scheduler hiccups from triggering spurious failovers mid-run.
    spec.heartbeat_ms = 100;
    spec.election_timeout_ms = 2000;
    let spec_path = dir.join("cluster.json");
    std::fs::write(&spec_path, spec.to_json().expect("serialise spec")).expect("write spec");

    // ChildGuards kill the replica processes on drop, so a panicking run
    // cannot leak them.
    let mut replicas: Vec<ChildGuard> = Vec::new();
    for id in 0..6u32 {
        replicas.push(ChildGuard(
            Command::new(wbamd)
                .arg("--spec")
                .arg(&spec_path)
                .arg("--id")
                .arg(id.to_string())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn wbamd replica"),
        ));
    }

    let dest = if cfg.dest_groups == 1 { "0" } else { "0,1" };
    // Enough warm-up traffic to dial every connection and drain the first
    // protocol round-trips before the measured window opens; scaled with the
    // pipeline depth so deeper pipelines also reach steady state.
    let warmup = (cfg.outstanding * 4).max(32);
    let summary_path = dir.join("summary.json");
    let status = Command::new(wbamd)
        .arg("--spec")
        .arg(&spec_path)
        .arg("--id")
        .arg("6")
        .arg("--multicast")
        .arg(messages.to_string())
        .arg("--warmup")
        .arg(warmup.to_string())
        .arg("--outstanding")
        .arg(cfg.outstanding.to_string())
        .arg("--dest")
        .arg(dest)
        .arg("--summary")
        .arg(&summary_path)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .expect("run wbamd client");
    assert!(status.success(), "client exited with {status}");
    let json = std::fs::read_to_string(&summary_path).expect("read summary");
    from_json(&json).expect("parse summary")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut messages: u64 = if smoke { 200 } else { 2000 };
    let mut out = "BENCH_net.json".to_string();
    let mut wire = "binary".to_string();
    let mut latency_gate: Option<f64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--messages" => {
                messages = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--messages N");
            }
            "--out" => out = iter.next().expect("--out FILE").clone(),
            "--wire" => wire = iter.next().expect("--wire binary|json|both").clone(),
            "--latency-gate" => {
                latency_gate = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--latency-gate P50_MS"),
                );
            }
            "--smoke" => {}
            other => panic!("unknown argument {other:?}"),
        }
    }
    let codecs: Vec<WireCodec> = match wire.as_str() {
        "both" => vec![WireCodec::Binary, WireCodec::Json],
        name => vec![WireCodec::from_name(name)
            .unwrap_or_else(|| panic!("unknown --wire {name:?} (expected binary, json or both)"))],
    };

    header("Loopback TCP deployment: closed-loop throughput & latency");
    println!(
        "2 groups x 3 replicas + 1 client, separate OS processes, {} messages/point\n",
        messages
    );
    println!(
        "{:<36} {:>7} {:>12} {:>10} {:>10} {:>10}",
        "configuration", "wire", "msg/s", "p50 ms", "p99 ms", "mean ms"
    );

    let wbamd = wbamd_path();
    let dir = std::env::temp_dir().join(format!("wbam-net-throughput-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut records = Vec::new();
    fn measure(
        wbamd: &PathBuf,
        dir: &std::path::Path,
        messages: u64,
        records: &mut Vec<BenchRecord>,
        cfg: &Config,
        codec: WireCodec,
        bench: &str,
    ) -> ClientSummary {
        let summary = run_point(wbamd, dir, cfg, codec, messages);
        assert_eq!(summary.completed, messages, "{}: incomplete run", cfg.label);
        assert!(
            summary.throughput_msg_s > 0.0,
            "{}: zero throughput",
            cfg.label
        );
        // Benchmarks never kill processes, so the fair-lossy escape hatch
        // must stay unused — a drop here means latencies include protocol
        // retries and the numbers are not what they claim to be.
        assert_eq!(
            summary.dropped_frames, 0,
            "{}: transport dropped frames during a fault-free bench run",
            cfg.label
        );
        println!(
            "{:<36} {:>7} {:>12.1} {:>10.3} {:>10.3} {:>10.3}",
            cfg.label,
            codec.name(),
            summary.throughput_msg_s,
            summary.latency_p50_ms,
            summary.latency_p99_ms,
            summary.latency_mean_ms
        );
        records.push(BenchRecord {
            bench: bench.to_string(),
            environment: "loopback-tcp".to_string(),
            wire: Some(codec.name().to_string()),
            protocol: Protocol::WhiteBox.label().to_string(),
            max_batch: cfg.max_batch,
            clients: 1,
            dest_groups: cfg.dest_groups,
            throughput_msg_s: summary.throughput_msg_s,
            latency_p50_ms: summary.latency_p50_ms,
            latency_p99_ms: summary.latency_p99_ms,
            latency_mean_ms: summary.latency_mean_ms,
        });
        summary
    }
    for &codec in &codecs {
        // The latency point first, while the host is coolest.
        let mut latency = measure(
            &wbamd,
            &dir,
            messages,
            &mut records,
            &LATENCY_CONFIG,
            codec,
            "net_latency",
        );
        if codec == WireCodec::Binary {
            if let Some(gate) = latency_gate {
                // Best of up to three attempts (see module docs): scheduler
                // noise does not reproduce, a park regression does. Keep only
                // the best attempt's record.
                for _ in 0..2 {
                    if latency.latency_p50_ms <= gate {
                        break;
                    }
                    println!(
                        "  (p50 {:.3} ms over the {gate:.3} ms gate — re-running the \
                         latency point to rule out scheduler noise)",
                        latency.latency_p50_ms
                    );
                    let retry = measure(
                        &wbamd,
                        &dir,
                        messages,
                        &mut records,
                        &LATENCY_CONFIG,
                        codec,
                        "net_latency",
                    );
                    let worse_back_offset = if retry.latency_p50_ms < latency.latency_p50_ms {
                        latency = retry;
                        2 // the previous attempt's record
                    } else {
                        1 // the retry's record
                    };
                    records.remove(records.len() - worse_back_offset);
                }
                assert!(
                    latency.latency_p50_ms <= gate,
                    "latency gate: depth-1 binary p50 {:.3} ms exceeds the {gate:.3} ms bound \
                     on every attempt — the idle-path wake regression is back",
                    latency.latency_p50_ms
                );
            }
        }
        for cfg in CONFIGS {
            measure(
                &wbamd,
                &dir,
                messages,
                &mut records,
                cfg,
                codec,
                "net_throughput",
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&out)
            .expect("open bench output");
        for record in &records {
            let line = serde_json::to_string(record).expect("serialise record");
            writeln!(file, "{line}").expect("write record");
        }
    }
    println!("\nappended {} records to {out}", records.len());
}
