//! Figure 7: latency and throughput of WbCast, FastCast and fault-tolerant
//! Skeen in a LAN (10 groups × 3 replicas, ~0.1 ms RTT) as the number of
//! closed-loop clients and the number of destination groups vary.
//!
//! By default the sweep is scaled down so it completes in minutes of wall
//! clock; set `WBAM_SCALE=5` (or higher) to approach the paper's client
//! counts.

use std::time::Duration;

use wbam_bench::{header, scale};
use wbam_harness::{sweep, SweepSpec};

fn main() {
    header("Figure 7 — LAN latency / throughput sweep");
    let s = scale() as usize;
    let client_counts: Vec<usize> = [10, 25, 50, 100].iter().map(|c| c * s).collect();
    let dest_group_counts = vec![1, 2, 6];
    let mut spec = SweepSpec::lan(client_counts.clone(), dest_group_counts.clone());
    spec.workload.duration = Duration::from_millis(250 * scale());
    spec.workload.warmup = Duration::from_millis(50);
    println!(
        "clients: {client_counts:?}; destination groups: {dest_group_counts:?}; \
         (WBAM_SCALE={})\n",
        scale()
    );
    let result = sweep(&spec);
    println!("{}", result.to_table());
    println!("Expected shape (paper Figure 7): for every destination-group count,");
    println!("WbCast sustains lower latency and higher throughput than FastCast and");
    println!("fault-tolerant Skeen; in a LAN FastCast trails Skeen slightly due to its");
    println!("extra parallel messages.");
}
