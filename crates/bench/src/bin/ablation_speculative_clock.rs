//! Ablation A1: the speculative clock update (Figure 4, line 14).
//!
//! The white-box protocol advances a replica's clock past a message's future
//! global timestamp as soon as the full set of `ACCEPT`s is received — before
//! the timestamps are durable. Disabling that update makes newly arriving
//! conflicting messages receive low local timestamps for longer, recreating
//! the convoy-induced latency degradation that black-box designs suffer.

use std::time::Duration;

use wbam_bench::header;
use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxReplica};
use wbam_simnet::{LatencyModel, SimConfig, Simulation};
use wbam_types::{AppMessage, ClusterConfig, Destination, GroupId, MsgId, Payload};

fn run(speculative: bool, delta: Duration) -> f64 {
    let cluster = ClusterConfig::builder().groups(2, 3).clients(2).build();
    let mut sim = Simulation::new(SimConfig {
        latency: LatencyModel::constant(delta),
        ..SimConfig::default()
    });
    for gc in cluster.groups() {
        for member in gc.members() {
            let mut cfg =
                ReplicaConfig::new(*member, gc.id(), cluster.clone()).without_auto_election();
            if !speculative {
                cfg = cfg.without_speculative_clock_update();
            }
            sim.add_replica(
                Box::new(WhiteBoxReplica::new(cfg)),
                gc.id(),
                cluster.site_of(*member),
            );
        }
    }
    for client in cluster.clients() {
        sim.add_client(Box::new(MulticastClient::new(ClientConfig::new(
            *client,
            cluster.clone(),
        ))));
    }
    let c0 = cluster.clients()[0];
    let c1 = cluster.clients()[1];
    let dest = Destination::new(vec![GroupId(0), GroupId(1)]).unwrap();
    // Prime group 1's clock so the probed message's global timestamp is high.
    for seq in 0..4u64 {
        sim.schedule_multicast(
            Duration::ZERO,
            c1,
            AppMessage::new(
                MsgId::new(c1, seq),
                Destination::single(GroupId(1)),
                Payload::zeros(20),
            ),
        );
    }
    let start = delta * 40;
    let probe = AppMessage::new(MsgId::new(c0, 0), dest.clone(), Payload::zeros(20));
    sim.schedule_multicast(start, c0, probe.clone());
    // Conflicting message timed to arrive at group 0's leader ~3δ after the
    // probe was multicast: with the speculative update the leader's clock has
    // already passed the probe's global timestamp (at 2δ) and nothing blocks;
    // without it the clock only advances at commit/delivery time and the
    // conflicting message blocks the probe.
    let conflict = AppMessage::new(MsgId::new(c1, 10), dest, Payload::zeros(20));
    sim.schedule_multicast(start + delta + delta / 2, c1, conflict);
    sim.run_until_quiescent(Duration::from_secs(600));
    let latency = sim.metrics().latency(probe.id).expect("probe delivered");
    latency.as_secs_f64() / delta.as_secs_f64()
}

fn main() {
    header("Ablation A1 — speculative clock update (Figure 4, line 14)");
    let delta = Duration::from_millis(10);
    let with = run(true, delta);
    let without = run(false, delta);
    println!("probe-message latency with a conflicting arrival at ~2.5δ (after multicast):");
    println!("  speculative clock update ON  : {with:.2}δ (paper bound: 5δ failure-free)");
    println!("  speculative clock update OFF : {without:.2}δ (degrades towards 2× behaviour)");
    println!();
    println!("The speculative update is what keeps the white-box protocol's failure-free");
    println!("latency at 5δ instead of ~2× its collision-free latency.");
}
