//! "Table 1": collision-free and failure-free delivery latencies of every
//! protocol, in multiples of the one-way delay δ, compared against the paper's
//! analytical claims (§I, §V, §VI).

use std::time::Duration;

use wbam_bench::header;
use wbam_harness::{convoy_probe, latency_probe, Protocol};

fn main() {
    header("Table 1 — delivery latency in message delays (δ)");
    let delta = Duration::from_millis(10);
    println!(
        "{:<10} {:>18} {:>12} {:>18} {:>12}",
        "protocol", "collision-free", "paper", "failure-free*", "paper"
    );
    let rows = [
        (Protocol::Skeen, "2δ", "4δ"),
        (Protocol::WhiteBox, "3δ", "5δ"),
        (Protocol::FastCast, "4δ", "8δ"),
        (Protocol::FtSkeen, "6δ", "12δ"),
    ];
    for (protocol, cf_paper, ff_paper) in rows {
        let cf = latency_probe(protocol, 2, delta);
        let ff = convoy_probe(protocol, delta);
        println!(
            "{:<10} {:>17.2}δ {:>12} {:>17.2}δ {:>12}",
            protocol.label(),
            cf.delta_multiples,
            cf_paper,
            ff.delta_multiples,
            ff_paper
        );
    }
    println!();
    println!("* measured under the adversarial collision schedule of the convoy probe;");
    println!("  the simulated client cannot reproduce the paper's worst-case asymmetric");
    println!("  MULTICAST delivery, so measured values sit ~1δ below the analytical bound.");
}
