//! Figure 5: message flow of the white-box protocol in a collision-free run —
//! MULTICAST → ACCEPT → ACCEPT_ACK → (commit at the leaders) → DELIVER.
//! Delivery happens after 3δ at the destination-group leaders and one δ later
//! at their followers.

use std::time::Duration;

use wbam_bench::header;
use wbam_harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam_types::GroupId;

fn main() {
    header("Figure 5 — white-box message flow (collision-free)");
    let delta = Duration::from_millis(10);
    let spec = ClusterSpec::constant_delta(2, 3, delta);
    let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);
    let id = sim.submit(Duration::ZERO, 0, &[GroupId(0), GroupId(1)], 20);
    sim.run_until_quiescent(Duration::from_secs(10));
    let cluster = sim.cluster().clone();
    let metrics = sim.metrics();

    println!("one-way delay δ = {delta:?}\n");
    println!(
        "{:<10} {:<9} {:>16} {:>12}",
        "process", "group", "delivery time", "in δ"
    );
    for gc in cluster.groups() {
        for member in gc.members() {
            let time = metrics
                .deliveries()
                .iter()
                .find(|d| d.process == *member && d.msg_id == id)
                .map(|d| d.time);
            match time {
                Some(t) => println!(
                    "{:<10} {:<9} {:>13.1} ms {:>11.1}δ",
                    member.to_string(),
                    gc.id().to_string(),
                    t.as_secs_f64() * 1e3,
                    t.as_secs_f64() / delta.as_secs_f64()
                ),
                None => println!(
                    "{:<10} {:<9} {:>16}",
                    member.to_string(),
                    gc.id().to_string(),
                    "—"
                ),
            }
        }
    }
    println!();
    println!("Expected per the paper: 3δ at each group's leader (the first member of");
    println!("each group), 4δ at the followers, matching Figure 5.");
}
