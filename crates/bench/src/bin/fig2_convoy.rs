//! Figure 2: the convoy effect in Skeen's protocol — a conflicting message
//! arriving just before a committed message is delivered blocks it, pushing
//! the failure-free latency towards 2× the collision-free latency.

use std::time::Duration;

use wbam_bench::header;
use wbam_harness::{convoy_probe, latency_probe, Protocol};

fn main() {
    header("Figure 2 — convoy effect in Skeen's protocol");
    let delta = Duration::from_millis(10);
    let collision_free = latency_probe(Protocol::Skeen, 2, delta);
    let convoy = convoy_probe(Protocol::Skeen, delta);
    println!("one-way delay δ                   : {:?}", delta);
    println!(
        "collision-free delivery latency   : {:.2}δ (paper: 2δ)",
        collision_free.delta_multiples
    );
    println!(
        "latency under the convoy schedule : {:.2}δ (paper worst case: 4δ)",
        convoy.delta_multiples
    );
    println!();
    println!("The conflicting multicast received just before commit receives a local");
    println!("timestamp below the first message's global timestamp and therefore blocks");
    println!("its delivery until the conflicting message itself commits.");
}
