//! Throughput under batched, pipelined ordering: sweeps batch size × client
//! count for the white-box protocol and fault-tolerant Skeen on the LAN and
//! WAN models, and appends one machine-readable JSON record per sweep point
//! to `BENCH_throughput.json`.
//!
//! Per-message ordering pays a full `ACCEPT`/`ACCEPT_ACK` round (white-box)
//! or consensus round (baselines) per multicast, so simulated throughput
//! saturates on per-message CPU cost. Batching amortises that cost: the
//! leader accumulates up to `max_batch` messages (flushing a partial batch
//! after `batch_delay`) and orders them in a single round.
//!
//! Usage:
//!
//! ```text
//! throughput_batching            # full sweep (LAN + WAN), appends JSON records
//! throughput_batching --smoke    # tiny LAN sweep (<2 min) + regression gate:
//!                                # exits non-zero if batched peak throughput
//!                                # fell below the unbatched peak
//! ```
//!
//! `WBAM_SCALE` scales the client counts of the full sweep, as in `fig7_lan`.

use std::process::ExitCode;
use std::time::Duration;

use wbam_bench::{header, scale};
use wbam_harness::{sweep, ClusterSpec, Protocol, SweepResult, SweepSpec};

/// File the machine-readable records are appended to, one JSON object per
/// line. CI uploads it as a workflow artifact.
const BENCH_FILE: &str = "BENCH_throughput.json";

/// Destination groups per multicast (the paper's default comparison point).
const DEST_GROUPS: usize = 2;

struct EnvPlan {
    label: &'static str,
    base: ClusterSpec,
    /// Flush timeout used whenever `max_batch > 1`.
    batch_delay: Duration,
    batch_sizes: Vec<usize>,
    client_counts: Vec<usize>,
    duration: Duration,
    warmup: Duration,
}

/// Runs the batch-size × client-count sweep of one environment and returns
/// all points in a single result.
fn run_env(plan: &EnvPlan) -> SweepResult {
    let mut combined = SweepResult::default();
    for &batch in &plan.batch_sizes {
        // `max_batch = 1` runs with a zero delay: the exact per-message
        // behaviour of Figure 4, which is the baseline batching must beat.
        let delay = if batch > 1 {
            plan.batch_delay
        } else {
            Duration::ZERO
        };
        let spec = SweepSpec {
            base: plan.base.clone().with_batching(batch, delay),
            protocols: vec![Protocol::WhiteBox, Protocol::FtSkeen],
            client_counts: plan.client_counts.clone(),
            dest_group_counts: vec![DEST_GROUPS],
            workload: wbam_harness::ClosedLoopWorkload {
                duration: plan.duration,
                warmup: plan.warmup,
                ..wbam_harness::ClosedLoopWorkload::default()
            },
        };
        let result = sweep(&spec);
        combined.points.extend(result.points);
    }
    combined
}

/// Peak (over client counts) throughput of `protocol` at `max_batch`.
fn peak_throughput(result: &SweepResult, protocol: &str, max_batch: usize) -> f64 {
    result
        .points
        .iter()
        .filter(|p| p.protocol == protocol && p.max_batch == max_batch)
        .map(|p| p.throughput())
        .fold(0.0, f64::max)
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header("Throughput under batched ordering (batch size × clients)");

    let s = scale() as usize;
    let plans = if smoke {
        vec![EnvPlan {
            label: "lan",
            base: ClusterSpec::lan(0),
            batch_delay: Duration::from_micros(200),
            batch_sizes: vec![1, 16],
            client_counts: vec![160],
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(60),
        }]
    } else {
        vec![
            EnvPlan {
                label: "lan",
                base: ClusterSpec::lan(0),
                batch_delay: Duration::from_micros(200),
                batch_sizes: vec![1, 4, 16, 64],
                client_counts: [16, 64, 160, 320].iter().map(|c| c * s).collect(),
                duration: Duration::from_millis(400),
                warmup: Duration::from_millis(80),
            },
            EnvPlan {
                label: "wan",
                base: ClusterSpec::wan(0),
                batch_delay: Duration::from_millis(5),
                batch_sizes: vec![1, 16],
                client_counts: [64, 256].iter().map(|c| c * s).collect(),
                duration: Duration::from_secs(4),
                warmup: Duration::from_secs(1),
            },
        ]
    };

    let mut lan_result: Option<SweepResult> = None;
    for plan in &plans {
        println!(
            "\n[{}] batch sizes {:?}, clients {:?}, {} destination groups",
            plan.label, plan.batch_sizes, plan.client_counts, DEST_GROUPS
        );
        let result = run_env(plan);
        print!("{}", result.to_table());
        match result.append_json_records(BENCH_FILE, "throughput_batching", plan.label) {
            Ok(n) => println!("appended {n} records to {BENCH_FILE}"),
            Err(e) => {
                eprintln!("failed to write {BENCH_FILE}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if plan.label == "lan" {
            lan_result = Some(result);
        }
    }

    // Regression gate on the LAN model: batching must not lose to the
    // per-message baseline, and at max_batch >= 16 the white-box protocol's
    // peak should be well above it (the PR's acceptance bar is >= 2x).
    let lan = lan_result.expect("LAN environment always runs");
    let wb = Protocol::WhiteBox.label();
    let unbatched = peak_throughput(&lan, wb, 1);
    // The bar is on the best batched configuration with max_batch >= 16, not
    // on the largest swept batch size (over-batching may peak lower).
    let (best_batch, batched) = lan
        .points
        .iter()
        .filter(|p| p.protocol == wb && p.max_batch >= 16)
        .map(|p| p.max_batch)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|b| (b, peak_throughput(&lan, wb, b)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("a batch size >= 16 is always swept");
    let speedup = batched / unbatched;
    println!(
        "\nLAN peak white-box throughput: {unbatched:.0} msg/s unbatched, \
         {batched:.0} msg/s at max_batch={best_batch} ({speedup:.2}x)"
    );
    if batched < unbatched {
        eprintln!("REGRESSION: batched throughput fell below the unbatched baseline");
        return ExitCode::FAILURE;
    }
    if !smoke && speedup < 2.0 {
        eprintln!("REGRESSION: batched speedup {speedup:.2}x is below the recorded 2x bar");
        return ExitCode::FAILURE;
    }
    println!("ok: batched ordering beats the per-message baseline");
    ExitCode::SUCCESS
}
