//! Ablation A2: genuineness and scalability (paper §I motivation).
//!
//! Messages addressed to disjoint destination groups are ordered completely
//! independently, so aggregate throughput grows with the number of groups when
//! the workload is partitionable. This binary measures throughput with all
//! clients multicasting to disjoint group pairs as the number of groups grows.

use std::time::Duration;

use wbam_bench::header;
use wbam_harness::{ClusterSpec, Protocol, ProtocolSim};
use wbam_simnet::LatencyModel;
use wbam_types::GroupId;

fn run(num_groups: usize) -> f64 {
    let spec = ClusterSpec {
        num_groups,
        group_size: 3,
        num_clients: num_groups, // one client per group pair keeps load per group constant
        num_sites: 1,
        latency: LatencyModel::constant(Duration::from_micros(100)),
        service_time: Duration::from_micros(10),
        seed: 5,
        max_batch: 1,
        batch_delay: Duration::ZERO,
        nemesis: wbam_types::NemesisPlan::quiet(),
        record_trace: false,
        auto_election: false,
        compaction_interval: 0,
        compaction_lag: 0,
    };
    let mut sim = ProtocolSim::build(Protocol::WhiteBox, &spec);
    let horizon = Duration::from_millis(200);
    // Each client multicasts to its own disjoint pair of groups, closed loop.
    let pair_of = |client: usize| -> Vec<GroupId> {
        let first = (2 * client) % num_groups;
        let second = (2 * client + 1) % num_groups;
        if first == second {
            vec![GroupId(first as u32)]
        } else {
            vec![GroupId(first as u32), GroupId(second as u32)]
        }
    };
    for client in 0..num_groups {
        sim.submit(Duration::ZERO, client, &pair_of(client), 20);
    }
    loop {
        if !sim.step() || sim.now() > horizon {
            break;
        }
        let now = sim.now();
        for (client, _) in sim.drain_client_completions() {
            let idx = sim
                .cluster()
                .clients()
                .iter()
                .position(|c| *c == client)
                .unwrap();
            sim.submit(now, idx, &pair_of(idx), 20);
        }
    }
    sim.run_until_quiescent(horizon + Duration::from_secs(5));
    sim.metrics()
        .throughput_in_window(Duration::from_millis(20), horizon)
        .messages_per_second
}

fn main() {
    header("Ablation A2 — genuine multicast scales with disjoint destination sets");
    println!("{:<10} {:>22}", "groups", "throughput (msg/s)");
    let mut base = None;
    for groups in [2usize, 4, 6, 8, 10] {
        let tput = run(groups);
        if base.is_none() {
            base = Some(tput);
        }
        println!(
            "{:<10} {:>22.0}   ({:.1}x of 2 groups)",
            groups,
            tput,
            tput / base.unwrap()
        );
    }
    println!();
    println!("Because only destination groups participate in ordering a message, disjoint");
    println!("traffic scales near-linearly with the number of groups (genuineness, §I).");
}
