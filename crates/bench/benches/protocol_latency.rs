//! Criterion benchmark: single-message delivery latency of every protocol
//! under a constant one-way delay (the simulated counterpart of "Table 1" and
//! Figure 5). The measured quantity is wall-clock time to *simulate* the
//! delivery, but the reported auxiliary output is the simulated latency in δ.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbam_harness::{latency_probe, Protocol};

fn bench_delivery_latency(c: &mut Criterion) {
    let delta = Duration::from_millis(10);
    let mut group = c.benchmark_group("collision_free_delivery");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for protocol in [
        Protocol::Skeen,
        Protocol::WhiteBox,
        Protocol::FastCast,
        Protocol::FtSkeen,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, protocol| {
                b.iter(|| {
                    let r = latency_probe(*protocol, 2, delta);
                    assert!(r.delta_multiples > 1.0);
                    r
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_delivery_latency);
criterion_main!(benches);
