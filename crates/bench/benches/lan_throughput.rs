//! Criterion benchmark: a miniature version of the Figure 7 LAN experiment —
//! closed-loop clients over 4 groups — comparing the three fault-tolerant
//! protocols. Wall-clock time per iteration tracks the number of simulated
//! protocol messages, so the relative cost of the protocols is visible
//! directly in the benchmark results.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbam_harness::{run_closed_loop, ClosedLoopWorkload, ClusterSpec, Protocol, ProtocolSim};
use wbam_simnet::LatencyModel;

fn bench_lan_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("lan_closed_loop");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for protocol in Protocol::evaluated() {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, protocol| {
                b.iter(|| {
                    let spec = ClusterSpec {
                        num_groups: 4,
                        group_size: 3,
                        num_clients: 8,
                        num_sites: 1,
                        latency: LatencyModel::constant(Duration::from_micros(100)),
                        service_time: Duration::from_micros(10),
                        seed: 11,
                        max_batch: 1,
                        batch_delay: Duration::ZERO,
                        nemesis: wbam_types::NemesisPlan::quiet(),
                        record_trace: false,
                        auto_election: false,
                        compaction_interval: 0,
                        compaction_lag: 0,
                    };
                    let mut sim = ProtocolSim::build(*protocol, &spec);
                    let workload = ClosedLoopWorkload {
                        dest_groups: 2,
                        duration: Duration::from_millis(100),
                        warmup: Duration::from_millis(20),
                        ..ClosedLoopWorkload::default()
                    };
                    let result = run_closed_loop(&mut sim, &workload);
                    assert!(result.latency.count > 0);
                    result
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lan_throughput);
criterion_main!(benches);
