//! A partitioned, replicated key-value store driven by atomic multicast.
//!
//! This crate is the motivating application of the paper (§I): a data store
//! partitioned across process groups, where every partition is replicated for
//! fault tolerance and multi-partition operations must be applied in a single
//! total order. Atomic multicast gives exactly that: every replica of every
//! partition applies the operations addressed to its partition in the
//! projection of one system-wide total order, so replicas of a partition stay
//! identical and cross-partition operations (such as transfers between
//! accounts living on different partitions) are never interleaved
//! inconsistently.
//!
//! The store is deliberately simple — string keys, integer values, `Put`,
//! `Get`, `Add` and multi-key `Transfer` operations — because its purpose is
//! to demonstrate and test the multicast layer, not to be a database. Keys are
//! assigned to partitions by hashing.
//!
//! # Example
//!
//! ```
//! use wbam_kvstore::{KvCommand, KvStore, Partitioner};
//! use wbam_types::GroupId;
//!
//! let partitioner = Partitioner::new(3);
//! // The same key always maps to the same partition.
//! assert_eq!(partitioner.partition_of("alice"), partitioner.partition_of("alice"));
//!
//! let mut store = KvStore::new(GroupId(0));
//! store.apply(&KvCommand::put("x", 7));
//! store.apply(&KvCommand::add("x", 3));
//! assert_eq!(store.get("x"), Some(10));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod history;

pub use history::{KvApply, KvHistory, KvOp, LinearizabilityViolation, OracleReport};

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};
use wbam_types::{AppMessage, Destination, GroupId, MsgId, Payload, ProcessId, WbamError};

/// Maps keys to partitions (groups) by hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    partitions: u32,
}

impl Partitioner {
    /// Creates a partitioner over `partitions` partitions (one per group).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(partitions: u32) -> Self {
        assert!(partitions > 0, "at least one partition is required");
        Partitioner { partitions }
    }

    /// Number of partitions this partitioner hashes over.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// The partition (group) responsible for `key`.
    pub fn partition_of(&self, key: &str) -> GroupId {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        GroupId((hasher.finish() % self.partitions as u64) as u32)
    }

    /// The destination group set of a command touching `keys`.
    ///
    /// # Errors
    ///
    /// Returns an error if `keys` is empty.
    pub fn destination_of<'a, I>(&self, keys: I) -> Result<Destination, WbamError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        Destination::new(keys.into_iter().map(|k| self.partition_of(k)))
    }
}

/// A command applied to the store through atomic multicast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvCommand {
    /// Set `key` to `value`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: i64,
    },
    /// Add `delta` to `key` (missing keys start at zero).
    Add {
        /// The key.
        key: String,
        /// The amount to add (may be negative).
        delta: i64,
    },
    /// Atomically move `amount` from `from` to `to` — the canonical
    /// multi-partition operation when the two keys hash to different groups.
    Transfer {
        /// Source key.
        from: String,
        /// Destination key.
        to: String,
        /// Amount to move.
        amount: i64,
    },
    /// Read `key` at the command's position in the total order. The observed
    /// value is what the linearizability oracle checks against a replay of
    /// the global-timestamp order (see [`history`]).
    Get {
        /// The key.
        key: String,
    },
}

impl KvCommand {
    /// Convenience constructor for [`KvCommand::Put`].
    pub fn put(key: &str, value: i64) -> Self {
        KvCommand::Put {
            key: key.to_string(),
            value,
        }
    }

    /// Convenience constructor for [`KvCommand::Add`].
    pub fn add(key: &str, delta: i64) -> Self {
        KvCommand::Add {
            key: key.to_string(),
            delta,
        }
    }

    /// Convenience constructor for [`KvCommand::Transfer`].
    pub fn transfer(from: &str, to: &str, amount: i64) -> Self {
        KvCommand::Transfer {
            from: from.to_string(),
            to: to.to_string(),
            amount,
        }
    }

    /// Convenience constructor for [`KvCommand::Get`].
    pub fn get(key: &str) -> Self {
        KvCommand::Get {
            key: key.to_string(),
        }
    }

    /// The keys this command touches.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            KvCommand::Put { key, .. } | KvCommand::Add { key, .. } | KvCommand::Get { key } => {
                vec![key]
            }
            KvCommand::Transfer { from, to, .. } => vec![from, to],
        }
    }

    /// Whether the command is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, KvCommand::Get { .. })
    }

    /// Encodes the command as an [`AppMessage`] addressed to the partitions of
    /// its keys.
    ///
    /// # Errors
    ///
    /// Returns an error if serialisation fails (it does not for this type).
    pub fn to_message(
        &self,
        id: MsgId,
        partitioner: &Partitioner,
    ) -> Result<AppMessage, WbamError> {
        let dest = partitioner.destination_of(self.keys())?;
        let body = serde_json::to_vec(self).map_err(|e| WbamError::Codec(e.to_string()))?;
        Ok(AppMessage::new(id, dest, Payload::from(body)))
    }

    /// Decodes a command from a delivered application message.
    ///
    /// # Errors
    ///
    /// Returns an error if the payload is not a valid encoded command.
    pub fn from_message(msg: &AppMessage) -> Result<Self, WbamError> {
        serde_json::from_slice(msg.payload.as_bytes()).map_err(|e| WbamError::Codec(e.to_string()))
    }
}

/// A serializable snapshot of a [`KvStore`], produced by
/// [`KvStore::to_snapshot`] and consumed by [`KvStore::restore`] /
/// [`KvStore::from_snapshot`]. Checkpoints embed it (serialized) as the
/// opaque application state shipped during state transfer, so a recovering
/// replica installs the store at the watermark instead of replaying every
/// command since genesis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvSnapshot {
    /// The partition the snapshotted store belongs to.
    pub group: GroupId,
    /// The materialised key/value pairs.
    pub data: BTreeMap<String, i64>,
    /// Number of commands applied when the snapshot was taken.
    pub applied: u64,
    /// Number of partitions of the partitioner, if the store was
    /// partition-aware (zero means no partitioner).
    pub partitions: u32,
}

impl KvSnapshot {
    /// Serialises the snapshot to bytes (for embedding in a
    /// [`wbam_types::Checkpoint`]'s `app_state`).
    ///
    /// # Errors
    ///
    /// Returns an error if serialisation fails (it does not for this type).
    pub fn to_bytes(&self) -> Result<Vec<u8>, WbamError> {
        serde_json::to_vec(self).map_err(|e| WbamError::Codec(e.to_string()))
    }

    /// Deserialises a snapshot from bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if the bytes are not a valid encoded snapshot.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WbamError> {
        serde_json::from_slice(bytes).map_err(|e| WbamError::Codec(e.to_string()))
    }
}

/// One partition replica's materialised state.
///
/// Every replica of a partition applies, in delivery order, the commands
/// delivered to its group; only the parts of a command that concern this
/// partition are applied (each group receives the projection of the total
/// order, and applies the projection of each command).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    group: GroupId,
    data: BTreeMap<String, i64>,
    applied: u64,
    partitioner: Option<Partitioner>,
}

impl KvStore {
    /// Creates an empty store for the partition owned by `group`.
    pub fn new(group: GroupId) -> Self {
        KvStore {
            group,
            data: BTreeMap::new(),
            applied: 0,
            partitioner: None,
        }
    }

    /// Creates a store that knows the system's partitioning and therefore only
    /// applies the parts of commands whose keys belong to its own partition.
    pub fn with_partitioner(group: GroupId, partitioner: Partitioner) -> Self {
        KvStore {
            group,
            data: BTreeMap::new(),
            applied: 0,
            partitioner: Some(partitioner),
        }
    }

    /// The partition this store belongs to.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Number of commands applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<i64> {
        self.data.get(key).copied()
    }

    /// All key/value pairs, for assertions in tests.
    pub fn snapshot(&self) -> &BTreeMap<String, i64> {
        &self.data
    }

    /// Captures the store's full state as a serializable [`KvSnapshot`].
    pub fn to_snapshot(&self) -> KvSnapshot {
        KvSnapshot {
            group: self.group,
            data: self.data.clone(),
            applied: self.applied,
            partitions: self.partitioner.map(|p| p.partitions()).unwrap_or(0),
        }
    }

    /// Rebuilds a store from a snapshot. The restored store is observably
    /// equivalent to the snapshotted one: same partition, same data, same
    /// applied count, same partition-awareness.
    pub fn from_snapshot(snap: KvSnapshot) -> Self {
        KvStore {
            group: snap.group,
            data: snap.data,
            applied: snap.applied,
            partitioner: if snap.partitions > 0 {
                Some(Partitioner::new(snap.partitions))
            } else {
                None
            },
        }
    }

    /// Replaces this store's state with a snapshot's (checkpoint
    /// installation during state transfer).
    pub fn restore(&mut self, snap: KvSnapshot) {
        *self = KvStore::from_snapshot(snap);
    }

    /// A stable digest of the store's observable state (partition, data,
    /// applied count). Equal digests mean observably equivalent stores; used
    /// by the checkpoint round-trip property tests.
    pub fn digest(&self) -> u64 {
        // FNV-1a over a canonical rendering of the state.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut write = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        write(&self.group.0.to_le_bytes());
        write(&self.applied.to_le_bytes());
        for (k, v) in &self.data {
            write(k.as_bytes());
            write(&[0xff]);
            write(&v.to_le_bytes());
        }
        hash
    }

    fn owns(&self, key: &str) -> bool {
        match &self.partitioner {
            None => true,
            Some(p) => p.partition_of(key) == self.group,
        }
    }

    /// Applies a command (the projection of it that concerns this partition).
    pub fn apply(&mut self, cmd: &KvCommand) {
        let _ = self.apply_read(cmd);
    }

    /// Applies a command and, if it is a [`KvCommand::Get`] for a key this
    /// partition owns, returns `Some(observed)` — the value the read sees at
    /// this point in the replica's apply order (`None` inside the `Some` for
    /// an absent key). Returns `None` for writes and for reads of keys owned
    /// by other partitions.
    pub fn apply_read(&mut self, cmd: &KvCommand) -> Option<Option<i64>> {
        self.applied += 1;
        match cmd {
            KvCommand::Put { key, value } => {
                if self.owns(key) {
                    self.data.insert(key.clone(), *value);
                }
                None
            }
            KvCommand::Add { key, delta } => {
                if self.owns(key) {
                    *self.data.entry(key.clone()).or_insert(0) += delta;
                }
                None
            }
            KvCommand::Transfer { from, to, amount } => {
                if self.owns(from) {
                    *self.data.entry(from.clone()).or_insert(0) -= amount;
                }
                if self.owns(to) {
                    *self.data.entry(to.clone()).or_insert(0) += amount;
                }
                None
            }
            KvCommand::Get { key } => {
                if self.owns(key) {
                    Some(self.data.get(key).copied())
                } else {
                    None
                }
            }
        }
    }

    /// Applies a delivered multicast message (decoding the command first).
    ///
    /// # Errors
    ///
    /// Returns an error if the payload does not decode to a [`KvCommand`].
    pub fn apply_message(&mut self, msg: &AppMessage) -> Result<(), WbamError> {
        let cmd = KvCommand::from_message(msg)?;
        self.apply(&cmd);
        Ok(())
    }

    /// Total of all values in this partition (used by balance-invariant tests).
    pub fn total(&self) -> i64 {
        self.data.values().sum()
    }
}

/// Helper that assigns message identifiers for a client issuing KV commands.
#[derive(Debug, Clone)]
pub struct KvClient {
    id: ProcessId,
    next_seq: u64,
    partitioner: Partitioner,
}

impl KvClient {
    /// Creates a client.
    pub fn new(id: ProcessId, partitioner: Partitioner) -> Self {
        KvClient {
            id,
            next_seq: 0,
            partitioner,
        }
    }

    /// Encodes the next command as a multicast message.
    ///
    /// # Errors
    ///
    /// Returns an error if the command cannot be encoded.
    pub fn encode(&mut self, cmd: &KvCommand) -> Result<AppMessage, WbamError> {
        let id = MsgId::new(self.id, self.next_seq);
        self.next_seq += 1;
        cmd.to_message(id, &self.partitioner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_deterministic_and_in_range() {
        let p = Partitioner::new(4);
        for key in ["a", "b", "alice", "bob", "x1", "x2"] {
            let g = p.partition_of(key);
            assert!(g.0 < 4);
            assert_eq!(g, p.partition_of(key));
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = Partitioner::new(0);
    }

    #[test]
    fn destination_covers_all_touched_keys() {
        let p = Partitioner::new(8);
        let cmd = KvCommand::transfer("alice", "bob", 10);
        let dest = p.destination_of(cmd.keys()).unwrap();
        assert!(dest.contains(p.partition_of("alice")));
        assert!(dest.contains(p.partition_of("bob")));
    }

    #[test]
    fn put_add_and_get() {
        let mut s = KvStore::new(GroupId(0));
        s.apply(&KvCommand::put("x", 5));
        s.apply(&KvCommand::add("x", -2));
        s.apply(&KvCommand::add("y", 7));
        assert_eq!(s.get("x"), Some(3));
        assert_eq!(s.get("y"), Some(7));
        assert_eq!(s.get("z"), None);
        assert_eq!(s.applied(), 3);
    }

    #[test]
    fn transfer_moves_value() {
        let mut s = KvStore::new(GroupId(0));
        s.apply(&KvCommand::put("a", 100));
        s.apply(&KvCommand::put("b", 0));
        s.apply(&KvCommand::transfer("a", "b", 30));
        assert_eq!(s.get("a"), Some(70));
        assert_eq!(s.get("b"), Some(30));
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn partition_aware_store_applies_projection_only() {
        let p = Partitioner::new(2);
        let ga = p.partition_of("acct-a");
        // Find a key living on the other partition.
        let mut other_key = None;
        for i in 0..100 {
            let k = format!("acct-{i}");
            if p.partition_of(&k) != ga {
                other_key = Some(k);
                break;
            }
        }
        let other_key = other_key.expect("some key hashes to the other partition");
        let mut store_a = KvStore::with_partitioner(ga, p);
        let cmd = KvCommand::transfer("acct-a", &other_key, 25);
        store_a.apply(&KvCommand::put("acct-a", 100));
        store_a.apply(&cmd);
        // Only the debit side lives on partition A.
        assert_eq!(store_a.get("acct-a"), Some(75));
        assert_eq!(store_a.get(&other_key), None);
    }

    #[test]
    fn commands_round_trip_through_app_messages() {
        let p = Partitioner::new(4);
        let mut client = KvClient::new(ProcessId(30), p);
        let cmd = KvCommand::transfer("alice", "bob", 42);
        let msg = client.encode(&cmd).unwrap();
        assert_eq!(msg.id, MsgId::new(ProcessId(30), 0));
        let decoded = KvCommand::from_message(&msg).unwrap();
        assert_eq!(decoded, cmd);
        let msg2 = client.encode(&KvCommand::put("alice", 1)).unwrap();
        assert_eq!(msg2.id.seq, 1);
    }

    #[test]
    fn malformed_payload_is_rejected() {
        let msg = AppMessage::new(
            MsgId::new(ProcessId(1), 0),
            Destination::single(GroupId(0)),
            Payload::from("not json"),
        );
        assert!(KvCommand::from_message(&msg).is_err());
        let mut s = KvStore::new(GroupId(0));
        assert!(s.apply_message(&msg).is_err());
    }
}
