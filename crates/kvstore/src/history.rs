//! History recording and the linearizability oracle.
//!
//! A [`KvHistory`] records one run of the key-value store over atomic
//! multicast from two viewpoints:
//!
//! * **Client operations** ([`KvOp`]): when each command was invoked and when
//!   its first completion reply reached the client.
//! * **Replica applies** ([`KvApply`]): each replica's application of each
//!   command, in that replica's own apply order, with the global timestamp
//!   the protocol assigned and — for reads — the value the replica observed.
//!
//! [`KvHistory::check`] is a *white-box* linearizability oracle: atomic
//! multicast exhibits the linearization order it claims (the global-timestamp
//! order), so instead of searching all interleavings (NP-hard in general) the
//! oracle verifies that this one order is a legal witness:
//!
//! 1. **Agreement** — every apply of an operation carries the same global
//!    timestamp, and no two operations share one.
//! 2. **Per-replica sanity** — every replica applies operations of its own
//!    partition, at most once, in strictly increasing timestamp order.
//! 3. **Real time** (*opt-in*, [`KvHistory::check_strict`]) — if operation
//!    `a` completed (at its client) before operation `b` was invoked, then
//!    `a` is ordered before `b`. This is deliberately not part of the default
//!    check: *genuine* atomic multicast orders messages through per-group
//!    logical clocks that only synchronise where destination sets intersect,
//!    so a completed multi-group operation can legitimately be ordered after
//!    a later operation whose groups never saw it (the classic
//!    genuineness-vs-strictness trade-off). The default oracle therefore
//!    verifies that the claimed order is a *serialization* that explains
//!    every observation; the strict variant exists for histories that are
//!    supposed to be real-time linearizable (e.g. single-group workloads).
//! 4. **Read semantics** — replaying each partition's projection of the
//!    order through a reference store predicts every read; each replica's
//!    observed reads must match, as long as the replica's apply sequence is a
//!    gap-free prefix of its partition's order. A gap (a missed delivery) is
//!    tolerated only when the environment can explain it — the replica
//!    crashed during the run, or the run lost messages (drops/partitions);
//!    at a correct replica of a fault-free run a gap is itself a violation.
//!
//! If all checks pass, the global-timestamp order is a linearization of the
//! client history, so the history is linearizable.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

use wbam_types::{GroupId, MsgId, ProcessId, Timestamp};

use crate::{KvCommand, KvStore, Partitioner};

/// One client operation of a recorded history.
#[derive(Debug, Clone, PartialEq)]
pub struct KvOp {
    /// The multicast message carrying the command.
    pub id: MsgId,
    /// The command.
    pub cmd: KvCommand,
    /// When the client submitted it.
    pub invoked_at: Duration,
    /// When the client received its first completion reply; `None` if the
    /// operation was still in flight when the run ended.
    pub completed_at: Option<Duration>,
}

/// One replica-side application of an operation.
#[derive(Debug, Clone, PartialEq)]
pub struct KvApply {
    /// The applied operation.
    pub op: MsgId,
    /// The applying replica.
    pub process: ProcessId,
    /// The replica's partition (group).
    pub group: GroupId,
    /// The global timestamp the protocol delivered the operation with.
    pub global_ts: Timestamp,
    /// For a [`KvCommand::Get`] of a key this partition owns: the value the
    /// replica observed (`Some(None)` for an absent key). `None` for writes.
    pub read: Option<Option<i64>>,
}

/// A recorded run: operations, applies and the partitioning they ran under.
#[derive(Debug, Clone, Default)]
pub struct KvHistory {
    /// Number of partitions (groups) keys were hashed over.
    pub partitions: u32,
    /// Client operations.
    pub ops: Vec<KvOp>,
    /// Replica applies. Entries of the same process must appear in that
    /// process's apply order; interleaving between processes is irrelevant.
    pub applies: Vec<KvApply>,
}

/// A violation found by the linearizability oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum LinearizabilityViolation {
    /// An apply referenced an operation the history never invoked.
    UnknownOp {
        /// The unknown operation.
        op: MsgId,
        /// The replica that applied it.
        process: ProcessId,
    },
    /// Two applies of one operation disagree on its global timestamp.
    ConflictingGlobalTs {
        /// The operation.
        op: MsgId,
        /// The two timestamps.
        timestamps: (Timestamp, Timestamp),
    },
    /// Two different operations were applied with the same global timestamp.
    SharedGlobalTs {
        /// The two operations.
        ops: (MsgId, MsgId),
        /// The shared timestamp.
        ts: Timestamp,
    },
    /// A replica applied an operation not addressed to its partition.
    WrongPartition {
        /// The replica.
        process: ProcessId,
        /// Its partition.
        group: GroupId,
        /// The misdelivered operation.
        op: MsgId,
    },
    /// A replica applied the same operation twice.
    DuplicateApply {
        /// The replica.
        process: ProcessId,
        /// The operation.
        op: MsgId,
    },
    /// A replica applied operations out of global-timestamp order.
    OutOfOrderApply {
        /// The replica.
        process: ProcessId,
        /// The operation applied earlier despite the larger timestamp.
        earlier: MsgId,
        /// The operation applied later despite the smaller timestamp.
        later: MsgId,
    },
    /// Real-time order violated: `first` completed before `second` was
    /// invoked, yet the linearization orders `second` first.
    RealTimeViolation {
        /// The operation that completed first.
        first: MsgId,
        /// The operation invoked after `first` completed.
        second: MsgId,
    },
    /// An operation completed at its client but no replica recorded applying
    /// it — a reply without a delivery.
    CompletedWithoutApply {
        /// The operation.
        op: MsgId,
    },
    /// A read observed a value different from the reference replay.
    StaleRead {
        /// The replica that read.
        process: ProcessId,
        /// The read operation.
        op: MsgId,
        /// The value the reference replay predicts.
        expected: Option<i64>,
        /// The value the replica observed.
        observed: Option<i64>,
    },
    /// A replica that never crashed, in a run that never lost messages,
    /// skipped an operation of its partition.
    MissedDelivery {
        /// The replica.
        process: ProcessId,
        /// The first operation it skipped.
        op: MsgId,
    },
}

impl fmt::Display for LinearizabilityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use LinearizabilityViolation::*;
        match self {
            UnknownOp { op, process } => {
                write!(f, "{process} applied {op} which was never invoked")
            }
            ConflictingGlobalTs { op, timestamps } => write!(
                f,
                "{op} applied with global timestamps {} and {}",
                timestamps.0, timestamps.1
            ),
            SharedGlobalTs { ops, ts } => write!(
                f,
                "{} and {} both applied with global timestamp {ts}",
                ops.0, ops.1
            ),
            WrongPartition { process, group, op } => write!(
                f,
                "{process} (partition {group}) applied {op}, which is not addressed to {group}"
            ),
            DuplicateApply { process, op } => write!(f, "{process} applied {op} twice"),
            OutOfOrderApply {
                process,
                earlier,
                later,
            } => write!(
                f,
                "{process} applied {earlier} before {later} despite a larger global timestamp"
            ),
            RealTimeViolation { first, second } => write!(
                f,
                "real-time order violated: {first} completed before {second} was invoked but is \
                 linearized after it"
            ),
            CompletedWithoutApply { op } => {
                write!(f, "{op} completed at its client but was never applied")
            }
            StaleRead {
                process,
                op,
                expected,
                observed,
            } => write!(
                f,
                "stale read at {process}: {op} observed {observed:?}, linearization predicts \
                 {expected:?}"
            ),
            MissedDelivery { process, op } => write!(
                f,
                "{process} never applied {op} although it never crashed and no message was lost"
            ),
        }
    }
}

impl std::error::Error for LinearizabilityViolation {}

/// Summary statistics of a successful oracle pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleReport {
    /// Reads whose observed value was checked against the reference replay.
    pub checked_reads: usize,
    /// Reads skipped because they happened after an (excused) delivery gap.
    pub skipped_reads: usize,
    /// Replicas whose apply sequence had an excused gap.
    pub gapped_processes: usize,
    /// Operations with a global timestamp (applied somewhere).
    pub ordered_ops: usize,
}

impl KvHistory {
    /// Records an operation invocation.
    pub fn invoke(&mut self, id: MsgId, cmd: KvCommand, at: Duration) {
        self.ops.push(KvOp {
            id,
            cmd,
            invoked_at: at,
            completed_at: None,
        });
    }

    /// Records the first completion of an operation (later calls win only if
    /// earlier — the client's view is the *first* reply).
    pub fn complete(&mut self, id: MsgId, at: Duration) {
        if let Some(op) = self.ops.iter_mut().find(|o| o.id == id) {
            op.completed_at = Some(match op.completed_at {
                Some(existing) => existing.min(at),
                None => at,
            });
        }
    }

    /// Records a replica-side apply. Calls for one process must arrive in
    /// that process's apply order.
    pub fn applied(
        &mut self,
        op: MsgId,
        process: ProcessId,
        group: GroupId,
        global_ts: Timestamp,
        read: Option<Option<i64>>,
    ) {
        self.applies.push(KvApply {
            op,
            process,
            group,
            global_ts,
            read,
        });
    }

    /// Runs the linearizability oracle over the history.
    ///
    /// `faulty` lists processes that crashed at some point during the run and
    /// `lossy` says whether the run could lose messages (drops or
    /// partitions); both only *excuse delivery gaps* — every other check is
    /// unconditional. Real-time order is *not* checked (see the module docs
    /// and [`Self::check_strict`]).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(
        &self,
        faulty: &BTreeSet<ProcessId>,
        lossy: bool,
    ) -> Result<OracleReport, LinearizabilityViolation> {
        self.check_internal(faulty, lossy, false, &BTreeMap::new(), &BTreeMap::new())
    }

    /// Like [`Self::check`], but additionally excuses *pruned* history:
    ///
    /// * a process with an excusal watermark `W` in `excused` may skip
    ///   operations whose global timestamp is `<= W` — it recovered via
    ///   checkpoint-based state transfer, so the history below the watermark
    ///   was installed, not missing;
    /// * a process may skip the specific operations listed for it in
    ///   `excused_ops` — pending records it dropped on a `STABLE_PRUNED`
    ///   notice (delivered everywhere else and pruned).
    ///
    /// Everything else is held to the normal gap rules; the excusals are
    /// deliberately narrow so genuine missed deliveries stay visible. Reads
    /// after an excused skip are not checked, like reads after any excused
    /// gap, because the replica's store was installed rather than replayed.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_excusing(
        &self,
        faulty: &BTreeSet<ProcessId>,
        lossy: bool,
        excused: &BTreeMap<ProcessId, Timestamp>,
        excused_ops: &BTreeMap<ProcessId, BTreeSet<MsgId>>,
    ) -> Result<OracleReport, LinearizabilityViolation> {
        self.check_internal(faulty, lossy, false, excused, excused_ops)
    }

    /// Like [`Self::check`] but additionally enforces real-time order:
    /// an operation that completed at its client before another was invoked
    /// must be linearized before it. Genuine multi-group multicast does not
    /// promise this across groups (see the module docs); use the strict
    /// variant for workloads where it should hold.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_strict(
        &self,
        faulty: &BTreeSet<ProcessId>,
        lossy: bool,
    ) -> Result<OracleReport, LinearizabilityViolation> {
        self.check_internal(faulty, lossy, true, &BTreeMap::new(), &BTreeMap::new())
    }

    fn check_internal(
        &self,
        faulty: &BTreeSet<ProcessId>,
        lossy: bool,
        strict_real_time: bool,
        excused: &BTreeMap<ProcessId, Timestamp>,
        excused_ops: &BTreeMap<ProcessId, BTreeSet<MsgId>>,
    ) -> Result<OracleReport, LinearizabilityViolation> {
        let partitioner = Partitioner::new(self.partitions.max(1));
        let op_index: BTreeMap<MsgId, &KvOp> = self.ops.iter().map(|o| (o.id, o)).collect();

        // 1. Global-timestamp agreement and uniqueness.
        let mut gts_of: BTreeMap<MsgId, Timestamp> = BTreeMap::new();
        let mut op_of: BTreeMap<Timestamp, MsgId> = BTreeMap::new();
        for apply in &self.applies {
            let Some(op) = op_index.get(&apply.op) else {
                return Err(LinearizabilityViolation::UnknownOp {
                    op: apply.op,
                    process: apply.process,
                });
            };
            match gts_of.get(&apply.op) {
                None => {
                    gts_of.insert(apply.op, apply.global_ts);
                }
                Some(existing) if *existing == apply.global_ts => {}
                Some(existing) => {
                    return Err(LinearizabilityViolation::ConflictingGlobalTs {
                        op: apply.op,
                        timestamps: (*existing, apply.global_ts),
                    });
                }
            }
            match op_of.get(&apply.global_ts) {
                None => {
                    op_of.insert(apply.global_ts, apply.op);
                }
                Some(existing) if *existing == apply.op => {}
                Some(existing) => {
                    return Err(LinearizabilityViolation::SharedGlobalTs {
                        ops: (*existing, apply.op),
                        ts: apply.global_ts,
                    });
                }
            }
            // 2a. Partition membership.
            let dest = partitioner
                .destination_of(op.cmd.keys())
                .expect("commands touch at least one key");
            if !dest.contains(apply.group) {
                return Err(LinearizabilityViolation::WrongPartition {
                    process: apply.process,
                    group: apply.group,
                    op: apply.op,
                });
            }
        }

        // 2b. Per-replica order and uniqueness.
        let mut per_process: BTreeMap<ProcessId, Vec<&KvApply>> = BTreeMap::new();
        for apply in &self.applies {
            per_process.entry(apply.process).or_default().push(apply);
        }
        for (process, seq) in &per_process {
            let mut seen: BTreeSet<MsgId> = BTreeSet::new();
            let mut last: Option<(MsgId, Timestamp)> = None;
            for apply in seq {
                if !seen.insert(apply.op) {
                    return Err(LinearizabilityViolation::DuplicateApply {
                        process: *process,
                        op: apply.op,
                    });
                }
                if let Some((prev_op, prev_ts)) = last {
                    if prev_ts > apply.global_ts {
                        return Err(LinearizabilityViolation::OutOfOrderApply {
                            process: *process,
                            earlier: prev_op,
                            later: apply.op,
                        });
                    }
                }
                last = Some((apply.op, apply.global_ts));
            }
        }

        // 3. Real time: for operations in linearization (gts) order, no
        // later-ordered operation may have completed before an
        // earlier-ordered one was invoked. Using a suffix-minimum of the
        // completion times keeps this O(n log n).
        let mut ordered: Vec<(Timestamp, &KvOp)> = self
            .ops
            .iter()
            .filter_map(|o| gts_of.get(&o.id).map(|ts| (*ts, o)))
            .collect();
        ordered.sort_by_key(|(ts, _)| *ts);
        for op in &self.ops {
            if op.completed_at.is_some() && !gts_of.contains_key(&op.id) {
                return Err(LinearizabilityViolation::CompletedWithoutApply { op: op.id });
            }
        }
        let mut suffix_min_complete: Vec<Duration> = vec![Duration::MAX; ordered.len() + 1];
        for i in (0..ordered.len()).rev() {
            let complete = ordered[i].1.completed_at.unwrap_or(Duration::MAX);
            suffix_min_complete[i] = complete.min(suffix_min_complete[i + 1]);
        }
        for (i, (_, op)) in ordered.iter().enumerate() {
            if strict_real_time && suffix_min_complete[i + 1] < op.invoked_at {
                // Some operation ordered after `op` completed before `op` was
                // invoked; find it for the report.
                let witness = ordered[i + 1..]
                    .iter()
                    .find(|(_, o)| o.completed_at.unwrap_or(Duration::MAX) < op.invoked_at)
                    .map(|(_, o)| o.id)
                    .expect("suffix minimum came from some operation");
                return Err(LinearizabilityViolation::RealTimeViolation {
                    first: witness,
                    second: op.id,
                });
            }
        }

        // 4. Read semantics via reference replay. Per partition: the
        // projection of the linearization and the predicted value of every
        // read.
        type PartitionReplay = (KvStore, Vec<(MsgId, Option<Option<i64>>)>);
        let mut reference: BTreeMap<GroupId, PartitionReplay> = BTreeMap::new();
        for (_, op) in &ordered {
            let dest = partitioner
                .destination_of(op.cmd.keys())
                .expect("commands touch at least one key");
            for group in dest.iter() {
                let (store, order) = reference
                    .entry(group)
                    .or_insert_with(|| (KvStore::with_partitioner(group, partitioner), Vec::new()));
                let predicted = store.apply_read(&op.cmd);
                order.push((op.id, predicted));
            }
        }
        let mut report = OracleReport {
            ordered_ops: ordered.len(),
            ..OracleReport::default()
        };
        for (process, seq) in &per_process {
            let group = seq[0].group;
            let empty = (KvStore::new(group), Vec::new());
            let (_, order) = reference.get(&group).unwrap_or(&empty);
            // Compare the replica's sequence against its partition's
            // projection of the linearization: element by element until the
            // first gap.
            let mut cursor = 0usize;
            let mut gapped = false;
            for apply in seq {
                // Advance the cursor to this apply's position in the
                // projection; skipped entries are gaps.
                let mut skipped_here = false;
                while cursor < order.len() && order[cursor].0 != apply.op {
                    skipped_here = true;
                    let missed = order[cursor].0;
                    // Pruned history: a process that recovered via
                    // checkpoint-based state transfer installed everything
                    // below its excusal watermark instead of replaying it —
                    // skips down there are excused, not missing.
                    let below_watermark = match (excused.get(process), gts_of.get(&missed)) {
                        (Some(w), Some(gts)) => *gts <= *w,
                        _ => false,
                    };
                    let op_excused = excused_ops
                        .get(process)
                        .map(|ops| ops.contains(&missed))
                        .unwrap_or(false);
                    if !gapped
                        && !faulty.contains(process)
                        && !lossy
                        && !below_watermark
                        && !op_excused
                    {
                        return Err(LinearizabilityViolation::MissedDelivery {
                            process: *process,
                            op: missed,
                        });
                    }
                    cursor += 1;
                }
                gapped |= skipped_here;
                debug_assert!(cursor < order.len(), "apply order verified above");
                let predicted = order[cursor].1;
                cursor += 1;
                if let Some(observed) = apply.read {
                    if gapped {
                        // After a gap the replica's state legitimately
                        // diverges from the reference; its reads cannot be
                        // checked against the linearization.
                        report.skipped_reads += 1;
                    } else {
                        report.checked_reads += 1;
                        let expected =
                            predicted.expect("read recorded for a non-read or unowned key");
                        if expected != observed {
                            return Err(LinearizabilityViolation::StaleRead {
                                process: *process,
                                op: apply.op,
                                expected,
                                observed,
                            });
                        }
                    }
                }
            }
            if gapped {
                report.gapped_processes += 1;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_types::GroupId;

    fn op_id(seq: u64) -> MsgId {
        MsgId::new(ProcessId(100), seq)
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t, GroupId(0))
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// A single-partition history: put x=1, get x → 1, both applied in order
    /// at two replicas of partition 0.
    fn linearizable_history() -> KvHistory {
        let mut h = KvHistory {
            partitions: 1,
            ..KvHistory::default()
        };
        h.invoke(op_id(0), KvCommand::put("x", 1), ms(0));
        h.complete(op_id(0), ms(10));
        h.invoke(op_id(1), KvCommand::get("x"), ms(20));
        h.complete(op_id(1), ms(30));
        for p in [ProcessId(0), ProcessId(1)] {
            h.applied(op_id(0), p, GroupId(0), ts(1), None);
            h.applied(op_id(1), p, GroupId(0), ts(2), Some(Some(1)));
        }
        h
    }

    #[test]
    fn accepts_a_linearizable_history() {
        let report = linearizable_history()
            .check(&BTreeSet::new(), false)
            .expect("history is linearizable");
        assert_eq!(report.checked_reads, 2);
        assert_eq!(report.skipped_reads, 0);
        assert_eq!(report.ordered_ops, 2);
    }

    #[test]
    fn rejects_a_stale_read() {
        let mut h = linearizable_history();
        // Replica 1 observes the pre-put value.
        h.applies
            .iter_mut()
            .find(|a| a.process == ProcessId(1) && a.op == op_id(1))
            .unwrap()
            .read = Some(None);
        let err = h.check(&BTreeSet::new(), false).unwrap_err();
        assert!(
            matches!(
                err,
                LinearizabilityViolation::StaleRead { observed: None, .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn rejects_a_real_time_inversion() {
        // op 0 completes at 10 ms, op 1 is invoked at 20 ms — but the
        // linearization orders op 1 *before* op 0.
        let mut h = KvHistory {
            partitions: 1,
            ..KvHistory::default()
        };
        h.invoke(op_id(0), KvCommand::put("x", 1), ms(0));
        h.complete(op_id(0), ms(10));
        h.invoke(op_id(1), KvCommand::put("x", 2), ms(20));
        h.complete(op_id(1), ms(30));
        h.applied(op_id(0), ProcessId(0), GroupId(0), ts(5), None);
        h.applied(op_id(1), ProcessId(0), GroupId(0), ts(2), None);
        let err = h.check(&BTreeSet::new(), false).unwrap_err();
        assert!(
            matches!(
                err,
                LinearizabilityViolation::OutOfOrderApply { .. }
                    | LinearizabilityViolation::RealTimeViolation { .. }
            ),
            "got {err}"
        );
        // The same inversion observed only through a second replica (so both
        // per-replica sequences are locally ordered) is caught by the
        // real-time check proper.
        let mut h2 = KvHistory {
            partitions: 1,
            ..KvHistory::default()
        };
        h2.invoke(op_id(0), KvCommand::put("x", 1), ms(0));
        h2.complete(op_id(0), ms(10));
        h2.invoke(op_id(1), KvCommand::put("x", 2), ms(20));
        h2.complete(op_id(1), ms(30));
        for p in [ProcessId(0), ProcessId(1)] {
            h2.applied(op_id(1), p, GroupId(0), ts(2), None);
            h2.applied(op_id(0), p, GroupId(0), ts(5), None);
        }
        let err = h2.check_strict(&BTreeSet::new(), false).unwrap_err();
        assert!(
            matches!(err, LinearizabilityViolation::RealTimeViolation { first, second }
                if first == op_id(0) && second == op_id(1)),
            "got {err}"
        );
        // The default oracle deliberately tolerates the inversion: genuine
        // multicast only promises a serialization (see module docs).
        assert!(h2.check(&BTreeSet::new(), false).is_ok());
    }

    #[test]
    fn rejects_conflicting_and_shared_global_timestamps() {
        let mut h = linearizable_history();
        h.applies[2].global_ts = ts(9); // replica 1's apply of op 0 disagrees
        assert!(matches!(
            h.check(&BTreeSet::new(), false).unwrap_err(),
            LinearizabilityViolation::ConflictingGlobalTs { .. }
        ));

        let mut h = linearizable_history();
        // Give op 1 the same timestamp as op 0 everywhere.
        for a in h.applies.iter_mut().filter(|a| a.op == op_id(1)) {
            a.global_ts = ts(1);
        }
        assert!(matches!(
            h.check(&BTreeSet::new(), false).unwrap_err(),
            LinearizabilityViolation::SharedGlobalTs { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_and_unknown_applies() {
        let mut h = linearizable_history();
        let dup = h.applies[0].clone();
        h.applies.push(dup);
        assert!(matches!(
            h.check(&BTreeSet::new(), false).unwrap_err(),
            LinearizabilityViolation::DuplicateApply { .. }
        ));

        let mut h = linearizable_history();
        h.applied(op_id(77), ProcessId(0), GroupId(0), ts(9), None);
        assert!(matches!(
            h.check(&BTreeSet::new(), false).unwrap_err(),
            LinearizabilityViolation::UnknownOp { .. }
        ));
    }

    #[test]
    fn completed_operations_must_have_been_applied() {
        let mut h = KvHistory {
            partitions: 1,
            ..KvHistory::default()
        };
        h.invoke(op_id(0), KvCommand::put("x", 1), ms(0));
        h.complete(op_id(0), ms(10));
        assert!(matches!(
            h.check(&BTreeSet::new(), false).unwrap_err(),
            LinearizabilityViolation::CompletedWithoutApply { .. }
        ));
    }

    #[test]
    fn gaps_are_rejected_at_correct_replicas_and_excused_at_faulty_ones() {
        let gap_history = || {
            let mut h = linearizable_history();
            // Replica 1 misses op 0 entirely: drop its first apply.
            h.applies
                .retain(|a| !(a.process == ProcessId(1) && a.op == op_id(0)));
            // Its read therefore observes the pre-put state.
            h.applies
                .iter_mut()
                .find(|a| a.process == ProcessId(1))
                .unwrap()
                .read = Some(None);
            h
        };
        // Fault-free, loss-free: the gap is a violation.
        assert!(matches!(
            gap_history().check(&BTreeSet::new(), false).unwrap_err(),
            LinearizabilityViolation::MissedDelivery { process, .. } if process == ProcessId(1)
        ));
        // The replica crashed during the run: the gap (and the now-unverifiable
        // read) are excused.
        let faulty: BTreeSet<ProcessId> = [ProcessId(1)].into_iter().collect();
        let report = gap_history().check(&faulty, false).unwrap();
        assert_eq!(report.gapped_processes, 1);
        assert_eq!(report.skipped_reads, 1);
        assert_eq!(report.checked_reads, 1);
        // A lossy network excuses it too.
        assert!(gap_history().check(&BTreeSet::new(), true).is_ok());
    }

    #[test]
    fn watermark_and_per_op_excusals_are_narrow() {
        let gap_history = || {
            let mut h = linearizable_history();
            // Replica 1 misses op 0 (gts 1) entirely; its later read is
            // unverifiable after the gap.
            h.applies
                .retain(|a| !(a.process == ProcessId(1) && a.op == op_id(0)));
            h.applies
                .iter_mut()
                .find(|a| a.process == ProcessId(1))
                .unwrap()
                .read = None;
            h
        };
        // A transfer watermark at or above the missed op's timestamp excuses
        // the gap at that process...
        let mut excused = BTreeMap::new();
        excused.insert(ProcessId(1), ts(1));
        assert!(gap_history()
            .check_excusing(&BTreeSet::new(), false, &excused, &BTreeMap::new())
            .is_ok());
        // ...a watermark below it does not...
        let mut low = BTreeMap::new();
        low.insert(ProcessId(1), ts(0));
        assert!(matches!(
            gap_history()
                .check_excusing(&BTreeSet::new(), false, &low, &BTreeMap::new())
                .unwrap_err(),
            LinearizabilityViolation::MissedDelivery { .. }
        ));
        // ...and neither does another process's watermark.
        let mut other = BTreeMap::new();
        other.insert(ProcessId(0), ts(9));
        assert!(gap_history()
            .check_excusing(&BTreeSet::new(), false, &other, &BTreeMap::new())
            .is_err());
        // Per-op excusal: exactly the dropped message is excused, nothing
        // else at the process.
        let mut ops = BTreeMap::new();
        ops.insert(
            ProcessId(1),
            [op_id(0)].into_iter().collect::<BTreeSet<_>>(),
        );
        assert!(gap_history()
            .check_excusing(&BTreeSet::new(), false, &BTreeMap::new(), &ops)
            .is_ok());
        let mut wrong_op = BTreeMap::new();
        wrong_op.insert(
            ProcessId(1),
            [op_id(1)].into_iter().collect::<BTreeSet<_>>(),
        );
        assert!(gap_history()
            .check_excusing(&BTreeSet::new(), false, &BTreeMap::new(), &wrong_op)
            .is_err());
    }

    #[test]
    fn multi_partition_transfer_reads_check_out() {
        // Two partitions; find keys on each.
        let p = Partitioner::new(2);
        let key_a = (0..100)
            .map(|i| format!("a{i}"))
            .find(|k| p.partition_of(k) == GroupId(0))
            .unwrap();
        let key_b = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| p.partition_of(k) == GroupId(1))
            .unwrap();
        let mut h = KvHistory {
            partitions: 2,
            ..KvHistory::default()
        };
        h.invoke(op_id(0), KvCommand::put(&key_a, 100), ms(0));
        h.invoke(op_id(1), KvCommand::transfer(&key_a, &key_b, 30), ms(1));
        h.invoke(op_id(2), KvCommand::get(&key_a), ms(2));
        h.invoke(op_id(3), KvCommand::get(&key_b), ms(3));
        for id in 0..4 {
            h.complete(op_id(id), ms(50 + id));
        }
        // Partition 0 applies ops 0, 1, 2; partition 1 applies ops 1, 3.
        h.applied(op_id(0), ProcessId(0), GroupId(0), ts(1), None);
        h.applied(op_id(1), ProcessId(0), GroupId(0), ts(2), None);
        h.applied(op_id(2), ProcessId(0), GroupId(0), ts(3), Some(Some(70)));
        h.applied(op_id(1), ProcessId(3), GroupId(1), ts(2), None);
        h.applied(op_id(3), ProcessId(3), GroupId(1), ts(4), Some(Some(30)));
        let report = h.check(&BTreeSet::new(), false).unwrap();
        assert_eq!(report.checked_reads, 2);
        assert_eq!(report.ordered_ops, 4);

        // A wrong transfer observation is caught.
        h.applies
            .iter_mut()
            .find(|a| a.op == op_id(3))
            .unwrap()
            .read = Some(Some(29));
        assert!(matches!(
            h.check(&BTreeSet::new(), false).unwrap_err(),
            LinearizabilityViolation::StaleRead { .. }
        ));
    }
}
