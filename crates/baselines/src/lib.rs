//! Baseline genuine atomic multicast protocols used in the paper's evaluation
//! (§VI, "Competitor protocols"):
//!
//! * [`FtSkeenReplica`] — the classical **fault-tolerant Skeen** protocol
//!   [Fritzke et al., 2001]: each group is replicated with black-box consensus
//!   (our `wbam-consensus` multi-Paxos). Every Skeen step at a group — the
//!   assignment of a local timestamp, and the recording of the global
//!   timestamp with the accompanying clock advance — is first agreed by the
//!   group through a consensus instance. Collision-free latency **6δ**,
//!   failure-free latency ~**12δ**.
//! * [`FastCastReplica`] — **FastCast** [Coelho et al., DSN 2017]: the same
//!   structure, but the leader *speculatively* forwards its local timestamp to
//!   the other destination groups before consensus on it finishes, and
//!   speculatively starts the second consensus; leaders exchange confirmations
//!   once the first consensus completes. Collision-free latency **4δ**,
//!   failure-free latency ~**8δ**.
//!
//! Both baselines share the wire message type [`BaselineMsg`] and the
//! replicated command type [`Command`], and are sans-IO [`Node`](wbam_types::Node)s runnable on
//! the simulator or the threaded runtime, so the three protocols (these two
//! plus the white-box protocol in `wbam-core`) can be compared on an identical
//! substrate — this is what the Figure 7 / Figure 8 benchmarks do.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod common;
pub mod fastcast;
pub mod ftskeen;

pub use common::{BaselineClient, BaselineMsg, Command};
pub use fastcast::FastCastReplica;
pub use ftskeen::FtSkeenReplica;
