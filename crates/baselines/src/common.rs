//! Shared machinery of the two baseline protocols.
//!
//! Both fault-tolerant Skeen and FastCast have the same overall structure —
//! each group is a multi-Paxos replicated state machine whose commands are
//! "assign local timestamp" and "record global timestamp", and group leaders
//! exchange timestamp proposals — and differ only in *when* things happen:
//! FastCast forwards proposals and starts the second consensus speculatively
//! and compensates with an extra confirmation exchange. [`BaselineReplica`]
//! implements both behaviours, selected by [`Mode`]; the `ftskeen` and
//! `fastcast` modules wrap it in protocol-specific types.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use wbam_consensus::{PaxosConfig, PaxosMsg, PaxosOutput, PaxosReplica, Slot};
use wbam_types::{
    Action, AppMessage, Ballot, Checkpoint, ClusterConfig, ConfigError, DeliveredFilter,
    DeliveredMessage, Event, GroupId, MsgId, Node, Phase, ProcessId, TimerId, Timestamp,
};

/// Timer used by a batching baseline leader to flush a partial batch.
const BATCH_TIMER: TimerId = TimerId(1);

/// Timer pumping a restarted follower's catch-up request until the leader's
/// `STATE_TRANSFER` arrives (either message may be lost; the slots the
/// follower slept through can be below the leader's compacted log frontier,
/// so normal Paxos traffic alone can never fill the gap).
const CATCHUP_TIMER: TimerId = TimerId(2);

/// How long a restarted follower waits for a `STATE_TRANSFER` before
/// re-sending its catch-up request.
const CATCHUP_RETRY: Duration = Duration::from_millis(500);

/// Commands replicated within a group by the baselines' consensus layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Persist the local timestamp this group assigns to a message
    /// (the consensus-wrapped version of Figure 1 lines 9–10).
    AssignLocal {
        /// The application message.
        msg: AppMessage,
        /// The local timestamp assigned by this group's leader.
        local_ts: Timestamp,
    },
    /// Persist the message's global timestamp and the clock advance
    /// (the consensus-wrapped version of Figure 1 lines 14–15).
    CommitGlobal {
        /// The message.
        msg_id: MsgId,
        /// The global timestamp.
        global_ts: Timestamp,
    },
}

/// Wire messages of the baseline protocols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BaselineMsg {
    /// A client submits a message to a group leader.
    Multicast {
        /// The application message.
        msg: AppMessage,
    },
    /// Leader-to-leader exchange of a local timestamp proposal
    /// (the `PROPOSE` message of Skeen's protocol).
    Propose {
        /// The application message (carried so the remote group learns it even
        /// if the client's `MULTICAST` to it was lost).
        msg: AppMessage,
        /// The proposing group.
        group: GroupId,
        /// The proposed local timestamp.
        local_ts: Timestamp,
    },
    /// FastCast only: group `group` confirms that consensus on its local
    /// timestamp for `msg_id` has completed.
    Confirm {
        /// The message.
        msg_id: MsgId,
        /// The confirming group.
        group: GroupId,
    },
    /// The group leader instructs its followers to deliver a committed
    /// message (delivery is leader-driven so that every member of a group
    /// delivers in exactly the order the leader decided).
    Deliver {
        /// The message to deliver.
        msg_id: MsgId,
        /// Its global timestamp.
        global_ts: Timestamp,
    },
    /// An intra-group consensus message.
    Paxos(PaxosMsg<Command>),
    /// Compaction: a member reports its delivery progress to the group
    /// leader, who folds it into the group's delivery watermark (the
    /// baselines' counterpart of the white-box `STABLE_REPORT`, so the three
    /// protocols stay comparable under long runs).
    StableReport {
        /// The reporting member's group.
        group: GroupId,
        /// The member's highest delivered global timestamp.
        delivered_gts: Timestamp,
    },
    /// Compaction: a leader disseminates its watermark knowledge to its group
    /// members and to remote leaders. Receivers merge pointwise by maximum
    /// and prune records (and the consensus-log prefix) covered by every
    /// destination group's watermark.
    StableAdvance {
        /// Per-group delivery watermarks.
        watermarks: BTreeMap<GroupId, Timestamp>,
    },
    /// Compaction: a restarted (or lagging) replica asks its leader for a
    /// catch-up.
    CatchupRequest {
        /// The requesting replica's group.
        group: GroupId,
        /// The requester's delivery progress.
        delivered_gts: Timestamp,
        /// The requester's next undecided consensus slot.
        next_slot: Slot,
    },
    /// Compaction: the leader's catch-up reply — a checkpoint plus the
    /// resident consensus-log suffix, instead of per-message replay. A
    /// requester below the checkpoint's watermark installs the checkpoint
    /// (jumping its delivery progress) and replays only the suffix.
    StateTransfer {
        /// The leader's ordering-layer checkpoint.
        checkpoint: Checkpoint,
        /// The leader's log-compaction frontier (slots below it are gone;
        /// their effects are covered by the checkpoint).
        frontier: Slot,
        /// The resident chosen log suffix at or above the frontier.
        log: Vec<(Slot, Command)>,
    },
    /// Reply to the message's original sender after delivery.
    ClientReply {
        /// The delivered message.
        msg_id: MsgId,
        /// The replying replica's group.
        group: GroupId,
        /// The global timestamp the message was delivered with.
        global_ts: Timestamp,
    },
}

/// Which baseline behaviour a [`BaselineReplica`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Fault-tolerant Skeen: proposals are exchanged only after the first
    /// consensus completes; no confirmation round (6δ collision-free).
    FtSkeen,
    /// FastCast: proposals are forwarded and the second consensus started
    /// speculatively; leaders additionally exchange confirmations once the
    /// first consensus completes (4δ collision-free).
    FastCast,
}

/// Per-message state at a baseline replica.
#[derive(Debug, Clone)]
struct BaselineRecord {
    msg: AppMessage,
    phase: Phase,
    local_ts: Timestamp,
    global_ts: Timestamp,
    delivered: bool,
    /// Local-timestamp proposals received from destination groups (leader only).
    proposals: BTreeMap<GroupId, Timestamp>,
    /// Groups whose first consensus is confirmed (FastCast leader only).
    confirms: BTreeSet<GroupId>,
    /// Whether this leader has already proposed `AssignLocal` for the message.
    assign_proposed: bool,
    /// The tentative local timestamp chosen by the leader when it proposed
    /// `AssignLocal` (before the command is decided). Needed so the leader
    /// treats the message as pending for the delivery rule straight away.
    tentative_lts: Timestamp,
    /// Whether this leader has already proposed `CommitGlobal` for the message.
    commit_proposed: bool,
    /// Whether `CommitGlobal` has been decided locally.
    commit_decided: bool,
}

impl BaselineRecord {
    fn new(msg: AppMessage) -> Self {
        BaselineRecord {
            msg,
            phase: Phase::Start,
            local_ts: Timestamp::BOTTOM,
            global_ts: Timestamp::BOTTOM,
            delivered: false,
            proposals: BTreeMap::new(),
            confirms: BTreeSet::new(),
            assign_proposed: false,
            tentative_lts: Timestamp::BOTTOM,
            commit_proposed: false,
            commit_decided: false,
        }
    }
}

/// A replica of one of the baseline protocols (see [`Mode`]).
pub struct BaselineReplica {
    id: ProcessId,
    group: GroupId,
    cluster: ClusterConfig,
    mode: Mode,
    paxos: PaxosReplica<Command>,
    group_members: Vec<ProcessId>,
    /// Clock used by the leader to assign fresh local timestamps. Crucially,
    /// it is advanced past a message's *global* timestamp only when the second
    /// consensus (`CommitGlobal`) completes — this is what gives both
    /// baselines their ~2× failure-free latency degradation (paper §VI).
    clock: u64,
    records: BTreeMap<MsgId, BaselineRecord>,
    notify_sender: bool,
    delivered_count: u64,
    /// Highest global timestamp delivered at this replica (duplicate filter
    /// for leader-driven delivery).
    max_delivered_gts: Timestamp,
    /// FastCast confirmations that arrived before this leader had heard of the
    /// message itself (possible with jittery links); merged into the record as
    /// soon as it is created.
    pending_confirms: BTreeMap<MsgId, BTreeSet<GroupId>>,
    /// Maximum number of multicasts accumulated before a batched Paxos
    /// proposal is flushed (see [`Self::with_batching`]).
    max_batch: usize,
    /// How long a partial batch waits for more multicasts before flushing.
    /// Zero disables batching (per-message consensus, the paper's behaviour).
    batch_delay: Duration,
    /// Multicasts with assigned tentative timestamps awaiting the next
    /// batched `AssignLocal` consensus round (leader only).
    batch_buffer: Vec<MsgId>,
    /// Whether the batch-flush timer is armed.
    batch_timer_armed: bool,
    /// Compaction: deliveries between `STABLE` rounds (zero disables).
    compaction_interval: u64,
    /// Compaction: recently delivered records retained below the watermark.
    compaction_lag: usize,
    /// Compaction: per-group delivery watermarks as currently known.
    stable_watermarks: BTreeMap<GroupId, Timestamp>,
    /// Compaction (leader): latest reported delivery progress per member.
    member_delivered: BTreeMap<ProcessId, Timestamp>,
    /// Compaction: deliveries since the last report/recompute.
    deliveries_since_stable: u64,
    /// Compaction: delivered-but-not-pruned records in timestamp order.
    delivered_index: BTreeSet<(Timestamp, MsgId)>,
    /// Compaction: bounded filter of delivered message identifiers.
    dedup: DeliveredFilter,
    /// Compaction: decided consensus slots and the message each concerns —
    /// the map that lets record pruning advance the consensus-log frontier.
    slot_msgs: BTreeMap<Slot, MsgId>,
    /// Records pruned so far.
    pruned_count: u64,
    /// Catch-ups that jumped this replica's progress over pruned history.
    transfer_recoveries: u64,
    /// Highest watermark a catch-up jumped this replica's progress to.
    transfer_excused_below: Timestamp,
    /// Whether a catch-up request is outstanding (retried on
    /// [`CATCHUP_TIMER`] until a `STATE_TRANSFER` lands).
    catchup_pending: bool,
}

impl BaselineReplica {
    /// Creates a baseline replica.
    ///
    /// # Panics
    ///
    /// Panics if the group does not exist in the cluster or does not contain
    /// the replica. Use [`Self::try_new`] to handle misconfigurations as
    /// values instead.
    pub fn new(id: ProcessId, group: GroupId, cluster: ClusterConfig, mode: Mode) -> Self {
        Self::try_new(id, group, cluster, mode).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a baseline replica, reporting misconfigurations as a typed
    /// [`ConfigError`] instead of aborting.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownGroup`] if the group does not exist in
    /// the cluster and [`ConfigError::NotAMember`] if it does not contain the
    /// replica.
    pub fn try_new(
        id: ProcessId,
        group: GroupId,
        cluster: ClusterConfig,
        mode: Mode,
    ) -> Result<Self, ConfigError> {
        let gc = cluster
            .group(group)
            .ok_or(ConfigError::UnknownGroup { group })?;
        if !gc.contains(id) {
            return Err(ConfigError::NotAMember { process: id, group });
        }
        let members = gc.members().to_vec();
        Ok(BaselineReplica {
            id,
            group,
            mode,
            paxos: PaxosReplica::new(PaxosConfig::new(id, members.clone())),
            group_members: members,
            clock: 0,
            records: BTreeMap::new(),
            notify_sender: true,
            delivered_count: 0,
            max_delivered_gts: Timestamp::BOTTOM,
            pending_confirms: BTreeMap::new(),
            max_batch: 1,
            batch_delay: Duration::ZERO,
            batch_buffer: Vec::new(),
            batch_timer_armed: false,
            compaction_interval: 0,
            compaction_lag: 0,
            stable_watermarks: BTreeMap::new(),
            member_delivered: BTreeMap::new(),
            deliveries_since_stable: 0,
            delivered_index: BTreeSet::new(),
            dedup: DeliveredFilter::new(),
            slot_msgs: BTreeMap::new(),
            pruned_count: 0,
            transfer_recoveries: 0,
            transfer_excused_below: Timestamp::BOTTOM,
            catchup_pending: false,
            cluster,
        })
    }

    /// Disables delivery replies to message senders.
    pub fn without_sender_notification(mut self) -> Self {
        self.notify_sender = false;
        self
    }

    /// Enables batched ordering: the leader accumulates up to `max_batch`
    /// multicasts (flushing earlier after `batch_delay`) and persists their
    /// local-timestamp assignments through a *single* batched Paxos proposal
    /// ([`PaxosReplica::propose_all`]). The baselines' counterpart of the
    /// white-box protocol's `ACCEPT_BATCH`, so throughput comparisons stay
    /// apples-to-apples. A zero `batch_delay` disables batching.
    pub fn with_batching(mut self, max_batch: usize, batch_delay: Duration) -> Self {
        self.max_batch = max_batch.max(1);
        self.batch_delay = batch_delay;
        self
    }

    /// Whether batched ordering is enabled.
    pub fn batching_enabled(&self) -> bool {
        !self.batch_delay.is_zero() && self.max_batch > 1
    }

    /// Enables record + consensus-log compaction, mirroring
    /// `ReplicaConfig::with_compaction` of the white-box protocol so the
    /// baselines stay comparable on long runs. A zero `interval` disables it.
    pub fn with_compaction(mut self, interval: u64, lag: usize) -> Self {
        self.compaction_interval = interval;
        self.compaction_lag = lag;
        self
    }

    /// Whether compaction is enabled.
    pub fn compaction_enabled(&self) -> bool {
        self.compaction_interval > 0
    }

    /// Number of message records currently resident.
    pub fn live_records(&self) -> usize {
        self.records.len()
    }

    /// Number of consensus-log entries currently resident.
    pub fn log_len(&self) -> usize {
        self.paxos.log_len()
    }

    /// This replica's own group's delivery watermark.
    pub fn watermark(&self) -> Timestamp {
        self.stable_watermarks
            .get(&self.group)
            .copied()
            .unwrap_or(Timestamp::BOTTOM)
    }

    /// Records pruned by compaction so far.
    pub fn pruned_count(&self) -> u64 {
        self.pruned_count
    }

    /// Catch-ups that jumped this replica's delivery progress over pruned
    /// history.
    pub fn transfer_recoveries(&self) -> u64 {
        self.transfer_recoveries
    }

    /// The highest watermark a catch-up jumped this replica's progress to
    /// (deliveries at or below it were installed, not replayed).
    pub fn transfer_excused_below(&self) -> Timestamp {
        self.transfer_excused_below
    }

    /// The replica's ordering-layer checkpoint (the baselines have no
    /// per-message ballots; the checkpoint ballot slot carries bottom).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            group: self.group,
            ballot: Ballot::BOTTOM,
            clock: self.clock,
            watermarks: self.stable_watermarks.clone(),
            max_delivered_gts: self.max_delivered_gts,
            delivered_count: self.delivered_count,
            dedup: self.dedup.clone(),
            app_state: Vec::new(),
        }
    }

    /// Whether this replica is its group's (consensus) leader.
    pub fn is_leader(&self) -> bool {
        self.paxos.is_leader()
    }

    /// The baseline behaviour this replica implements.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of application messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// The phase of a message at this replica, if known.
    pub fn phase_of(&self, m: MsgId) -> Option<Phase> {
        self.records.get(&m).map(|r| r.phase)
    }

    /// The replica's timestamp-assignment clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The highest global timestamp this replica has delivered.
    pub fn max_delivered_gts(&self) -> Timestamp {
        self.max_delivered_gts
    }

    fn leader_of(&self, g: GroupId) -> Option<ProcessId> {
        self.cluster.group(g).map(|gc| gc.initial_leader())
    }

    fn record_entry(&mut self, msg: &AppMessage) -> &mut BaselineRecord {
        self.records
            .entry(msg.id)
            .or_insert_with(|| BaselineRecord::new(msg.clone()))
    }

    fn convert_paxos(&mut self, out: PaxosOutput<Command>) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        for (to, msg) in out.outgoing {
            actions.push(Action::send(to, BaselineMsg::Paxos(msg)));
        }
        for (slot, cmd) in out.decided {
            // Remember which message each decided slot concerns, so pruning a
            // record can advance the consensus-log compaction frontier once
            // every slot below it belongs to pruned history.
            if self.compaction_enabled() {
                let subject = match &cmd {
                    Command::AssignLocal { msg, .. } => msg.id,
                    Command::CommitGlobal { msg_id, .. } => *msg_id,
                };
                self.slot_msgs.insert(slot, subject);
            }
            actions.extend(self.apply(cmd));
        }
        actions
    }

    /// Leader entry point: a client (or remote leader) submitted `m`.
    fn handle_multicast(&mut self, msg: AppMessage) -> Vec<Action<BaselineMsg>> {
        self.handle_multicast_inner(msg, true)
    }

    /// `retryable` distinguishes a real `MULTICAST` (client submission or
    /// retry — worth answering with recovery re-sends) from the internal call
    /// made while handling a remote leader's `PROPOSE`. Re-sending our own
    /// proposal in the latter case would let two leaders' duplicate handlers
    /// re-trigger each other forever (a PROPOSE ping-pong storm).
    fn handle_multicast_inner(
        &mut self,
        msg: AppMessage,
        retryable: bool,
    ) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        if !msg.is_addressed_to(self.group) {
            return actions;
        }
        if !self.paxos.is_leader() {
            // Forward to the group's leader.
            if let Some(leader) = self.leader_of(self.group) {
                if leader != self.id {
                    actions.push(Action::send(leader, BaselineMsg::Multicast { msg }));
                }
            }
            return actions;
        }
        let group = self.group;
        if !self.records.contains_key(&msg.id) && self.dedup.contains(msg.id) {
            // Duplicate of a message delivered everywhere and pruned:
            // re-proposing would deliver it twice. Answer retries from the
            // bounded delivered filter (the actual timestamp went with the
            // record; clients treat the ⊥ reply like any completion).
            if retryable && self.notify_sender && !self.group_members.contains(&msg.id.sender) {
                actions.push(Action::send(
                    msg.id.sender,
                    BaselineMsg::ClientReply {
                        msg_id: msg.id,
                        group,
                        global_ts: Timestamp::BOTTOM,
                    },
                ));
            }
            return actions;
        }
        let stashed_confirms = self.pending_confirms.remove(&msg.id);
        let clock = &mut self.clock;
        let record = self
            .records
            .entry(msg.id)
            .or_insert_with(|| BaselineRecord::new(msg.clone()));
        if let Some(confirms) = stashed_confirms {
            record.confirms.extend(confirms);
        }
        if record.assign_proposed {
            if !retryable {
                return actions;
            }
            // Message recovery on a duplicate MULTICAST (a client or remote
            // leader retry): a delivered record re-sends the client reply
            // (the original may have been lost, or the client restarted); an
            // in-flight record whose local timestamp is already decided
            // re-sends this group's proposal to the other destination
            // leaders, so one lost PROPOSE does not stall the message
            // forever. Both are idempotent at the receiver.
            let delivered = record.delivered;
            let global_ts = record.global_ts;
            let local_ts = record.local_ts;
            let stored = record.msg.clone();
            if delivered {
                if self.notify_sender && !self.group_members.contains(&stored.id.sender) {
                    actions.push(Action::send(
                        stored.id.sender,
                        BaselineMsg::ClientReply {
                            msg_id: stored.id,
                            group,
                            global_ts,
                        },
                    ));
                }
            } else if local_ts != Timestamp::BOTTOM {
                actions.extend(self.send_proposals(&stored, local_ts));
            }
            return actions;
        }
        record.assign_proposed = true;
        *clock += 1;
        let local_ts = Timestamp::new(*clock, group);
        record.tentative_lts = local_ts;
        if self.batching_enabled() {
            // Buffer the assignment; it is persisted through one batched
            // consensus round when the buffer fills or the timer fires. The
            // tentative timestamp already blocks delivery of later messages,
            // so buffering cannot reorder anything.
            self.batch_buffer.push(msg.id);
            if self.batch_buffer.len() >= self.max_batch {
                actions.extend(self.flush_batch());
            } else if !self.batch_timer_armed {
                self.batch_timer_armed = true;
                actions.push(Action::SetTimer {
                    id: BATCH_TIMER,
                    delay: self.batch_delay,
                });
            }
            return actions;
        }
        // Persist the assignment through consensus.
        let out = self.paxos.propose(Command::AssignLocal {
            msg: msg.clone(),
            local_ts,
        });
        actions.extend(self.convert_paxos(out));
        if self.mode == Mode::FastCast {
            // Speculation: forward the (not yet durable) proposal right away.
            actions.extend(self.send_proposals(&msg, local_ts));
            actions.extend(self.note_proposal(&msg, self.group, local_ts));
        }
        actions
    }

    /// Flushes the batch buffer: one batched Paxos proposal covering every
    /// buffered `AssignLocal`, plus (FastCast) the speculative cross-group
    /// proposal exchange for each flushed message.
    fn flush_batch(&mut self) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        if self.batch_timer_armed {
            self.batch_timer_armed = false;
            actions.push(Action::CancelTimer(BATCH_TIMER));
        }
        if !self.paxos.is_leader() {
            // Deposed with a non-empty buffer: forget the tentative
            // assignments so a retried MULTICAST can be proposed afresh
            // (by the new leader, or by us if re-elected).
            for id in std::mem::take(&mut self.batch_buffer) {
                if let Some(record) = self.records.get_mut(&id) {
                    record.assign_proposed = false;
                }
            }
            return actions;
        }
        if self.batch_buffer.is_empty() {
            return actions;
        }
        let ids = std::mem::take(&mut self.batch_buffer);
        let mut flushed: Vec<(AppMessage, Timestamp)> = Vec::new();
        let mut cmds = Vec::new();
        for id in ids {
            let Some(record) = self.records.get(&id) else {
                continue;
            };
            let msg = record.msg.clone();
            let local_ts = record.tentative_lts;
            cmds.push(Command::AssignLocal {
                msg: msg.clone(),
                local_ts,
            });
            flushed.push((msg, local_ts));
        }
        let out = self.paxos.propose_all(cmds);
        actions.extend(self.convert_paxos(out));
        if self.mode == Mode::FastCast {
            for (msg, local_ts) in flushed {
                actions.extend(self.send_proposals(&msg, local_ts));
                actions.extend(self.note_proposal(&msg, self.group, local_ts));
            }
        }
        actions
    }

    /// Sends this group's local-timestamp proposal to the other destination
    /// groups' leaders.
    fn send_proposals(&self, msg: &AppMessage, local_ts: Timestamp) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        for g in msg.dest.iter() {
            if g == self.group {
                continue;
            }
            if let Some(leader) = self.leader_of(g) {
                actions.push(Action::send(
                    leader,
                    BaselineMsg::Propose {
                        msg: msg.clone(),
                        group: self.group,
                        local_ts,
                    },
                ));
            }
        }
        actions
    }

    /// Records a proposal (own or remote) at the leader and, once proposals
    /// from every destination group are known, starts the second consensus.
    fn note_proposal(
        &mut self,
        msg: &AppMessage,
        group: GroupId,
        local_ts: Timestamp,
    ) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        if !self.paxos.is_leader() {
            return actions;
        }
        if !self.records.contains_key(&msg.id) && self.dedup.contains(msg.id) {
            // A stale proposal for pruned, globally delivered history: do not
            // resurrect a record nothing will ever deliver or prune again.
            return actions;
        }
        let mode = self.mode;
        let record = self.record_entry(msg);
        record.proposals.insert(group, local_ts);
        let complete = msg.dest.iter().all(|g| record.proposals.contains_key(&g));
        if !complete || record.commit_proposed {
            return actions;
        }
        // Fault-tolerant Skeen additionally waits for its own assignment to be
        // durable (the first consensus) before computing the global timestamp;
        // FastCast computes it speculatively.
        if mode == Mode::FtSkeen && record.phase == Phase::Start {
            return actions;
        }
        record.commit_proposed = true;
        let gts = Timestamp::global_of(record.proposals.values().copied());
        let msg_id = msg.id;
        let out = self.paxos.propose(Command::CommitGlobal {
            msg_id,
            global_ts: gts,
        });
        actions.extend(self.convert_paxos(out));
        actions
    }

    /// Applies a decided command to the group's replicated state.
    fn apply(&mut self, cmd: Command) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        match cmd {
            Command::AssignLocal { msg, local_ts } => {
                let is_leader = self.paxos.is_leader();
                let group = self.group;
                {
                    let record = self.record_entry(&msg);
                    if record.phase == Phase::Start {
                        record.phase = Phase::Proposed;
                        record.local_ts = local_ts;
                    }
                }
                self.clock = self.clock.max(local_ts.time());
                if is_leader {
                    match self.mode {
                        Mode::FtSkeen => {
                            // Only now is the proposal durable; exchange it.
                            actions.extend(self.send_proposals(&msg, local_ts));
                            actions.extend(self.note_proposal(&msg, group, local_ts));
                        }
                        Mode::FastCast => {
                            // The proposal went out speculatively; confirm that
                            // consensus on it has now completed.
                            for g in msg.dest.iter() {
                                if g == group {
                                    actions.extend(self.note_confirm(msg.id, group));
                                } else if let Some(leader) = self.leader_of(g) {
                                    actions.push(Action::send(
                                        leader,
                                        BaselineMsg::Confirm {
                                            msg_id: msg.id,
                                            group,
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            Command::CommitGlobal { msg_id, global_ts } => {
                if let Some(record) = self.records.get_mut(&msg_id) {
                    record.commit_decided = true;
                    record.global_ts = global_ts;
                    if record.phase < Phase::Committed {
                        record.phase = Phase::Committed;
                    }
                }
                // The clock advances past the global timestamp only here, i.e.
                // only after the second consensus — the source of the 2×
                // failure-free latency degradation of the baselines.
                self.clock = self.clock.max(global_ts.time());
                actions.extend(self.try_deliver());
            }
        }
        actions
    }

    /// Records a FastCast confirmation at the leader.
    fn note_confirm(&mut self, msg_id: MsgId, group: GroupId) -> Vec<Action<BaselineMsg>> {
        match self.records.get_mut(&msg_id) {
            Some(record) => {
                record.confirms.insert(group);
            }
            None if !self.dedup.contains(msg_id) => {
                // The confirmation outran the message itself; remember it.
                self.pending_confirms
                    .entry(msg_id)
                    .or_default()
                    .insert(group);
            }
            // A confirmation for pruned history needs no bookkeeping.
            None => {}
        }
        self.try_deliver()
    }

    /// Skeen's delivery rule over the leader's state: deliver committed
    /// messages in global-timestamp order once no pending message can be
    /// ordered before them. FastCast leaders additionally wait for
    /// confirmations from every destination group. Delivery is leader-driven:
    /// the leader delivers locally and instructs its followers with
    /// [`BaselineMsg::Deliver`], which guarantees that every member of the
    /// group delivers in exactly the leader's order.
    fn try_deliver(&mut self) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        if !self.paxos.is_leader() {
            return actions;
        }
        // A message is "pending" — and thus blocks the delivery of committed
        // messages with higher global timestamps — from the moment the leader
        // assigns it a (tentative) local timestamp, not only once consensus on
        // that assignment completes.
        let min_pending = self
            .records
            .values()
            .filter_map(|r| {
                if r.phase == Phase::Proposed {
                    Some(r.local_ts)
                } else if r.phase == Phase::Start && r.assign_proposed {
                    Some(r.tentative_lts)
                } else {
                    None
                }
            })
            .min();
        let mode = self.mode;
        let mut candidates: Vec<(Timestamp, MsgId)> = self
            .records
            .values()
            .filter(|r| r.phase == Phase::Committed && r.commit_decided && !r.delivered)
            .map(|r| (r.global_ts, r.msg.id))
            .collect();
        candidates.sort();
        for (gts, id) in candidates {
            if let Some(pending) = min_pending {
                if pending <= gts {
                    break;
                }
            }
            // FastCast: the leader must also have confirmations from every
            // destination group before acting on the speculative order. An
            // unconfirmed message also blocks everything ordered after it —
            // otherwise a higher-timestamped message could overtake it and the
            // group would deliver out of timestamp order.
            if mode == Mode::FastCast {
                let confirmed = {
                    let r = &self.records[&id];
                    r.msg.dest.iter().all(|g| r.confirms.contains(&g))
                };
                if !confirmed {
                    break;
                }
            }
            actions.extend(self.deliver_one(id, gts));
            // Tell the followers.
            for member in self.group_members.clone() {
                if member != self.id {
                    actions.push(Action::send(
                        member,
                        BaselineMsg::Deliver {
                            msg_id: id,
                            global_ts: gts,
                        },
                    ));
                }
            }
        }
        actions
    }

    // ------------------------------------------------------------------
    // Compaction: the STABLE exchange, pruning and catch-up
    // ------------------------------------------------------------------

    /// Counts a local delivery towards the next `STABLE` round; every
    /// `compaction_interval` deliveries followers report their progress and
    /// the leader recomputes the group watermark.
    fn note_delivery(&mut self) -> Vec<Action<BaselineMsg>> {
        if !self.compaction_enabled() {
            return Vec::new();
        }
        self.deliveries_since_stable += 1;
        if self.deliveries_since_stable < self.compaction_interval {
            return Vec::new();
        }
        self.deliveries_since_stable = 0;
        if self.paxos.is_leader() {
            return self.recompute_watermark();
        }
        match self.leader_of(self.group) {
            Some(leader) if leader != self.id => vec![Action::send(
                leader,
                BaselineMsg::StableReport {
                    group: self.group,
                    delivered_gts: self.max_delivered_gts,
                },
            )],
            _ => Vec::new(),
        }
    }

    /// Leader handler for `STABLE_REPORT`.
    fn handle_stable_report(
        &mut self,
        from: ProcessId,
        group: GroupId,
        delivered_gts: Timestamp,
    ) -> Vec<Action<BaselineMsg>> {
        if !self.paxos.is_leader() || group != self.group || !self.group_members.contains(&from) {
            return Vec::new();
        }
        let entry = self
            .member_delivered
            .entry(from)
            .or_insert(Timestamp::BOTTOM);
        if delivered_gts > *entry {
            *entry = delivered_gts;
        }
        self.recompute_watermark()
    }

    /// Recomputes the own-group watermark as the quorum-th highest delivery
    /// progress (see the white-box replica for why quorum-based trimming is
    /// both safe — quorum intersection — and live under a crashed member).
    fn recompute_watermark(&mut self) -> Vec<Action<BaselineMsg>> {
        self.member_delivered
            .insert(self.id, self.max_delivered_gts);
        let mut progress: Vec<Timestamp> = self
            .group_members
            .iter()
            .map(|m| {
                self.member_delivered
                    .get(m)
                    .copied()
                    .unwrap_or(Timestamp::BOTTOM)
            })
            .collect();
        progress.sort_unstable_by(|a, b| b.cmp(a));
        let quorum = self.group_members.len() / 2 + 1;
        let watermark = progress[quorum - 1];
        let current = self.watermark();
        if watermark <= current {
            return Vec::new();
        }
        self.stable_watermarks.insert(self.group, watermark);
        self.prune();
        self.broadcast_watermarks()
    }

    /// Sends the watermark map to the group's followers and remote leaders.
    fn broadcast_watermarks(&mut self) -> Vec<Action<BaselineMsg>> {
        let advance = BaselineMsg::StableAdvance {
            watermarks: self.stable_watermarks.clone(),
        };
        let mut actions = Vec::new();
        for member in &self.group_members {
            if *member != self.id {
                actions.push(Action::send(*member, advance.clone()));
            }
        }
        for gc in self.cluster.groups() {
            let g = gc.id();
            if g != self.group && gc.initial_leader() != self.id {
                actions.push(Action::send(gc.initial_leader(), advance.clone()));
            }
        }
        actions
    }

    /// Merges a received watermark map (pointwise maximum) and prunes;
    /// leaders re-broadcast new knowledge so it reaches their followers.
    fn handle_stable_advance(
        &mut self,
        watermarks: BTreeMap<GroupId, Timestamp>,
    ) -> Vec<Action<BaselineMsg>> {
        if !wbam_types::checkpoint::merge_watermarks(&mut self.stable_watermarks, &watermarks) {
            return Vec::new();
        }
        self.prune();
        if self.paxos.is_leader() {
            self.broadcast_watermarks()
        } else {
            Vec::new()
        }
    }

    /// Prunes delivered records covered by every destination group's
    /// watermark (keeping the `compaction_lag` most recent ones) and advances
    /// the consensus-log frontier over slots whose messages are pruned.
    fn prune(&mut self) {
        if !self.compaction_enabled() {
            return;
        }
        while self.delivered_index.len() > self.compaction_lag {
            let &(gts, id) = self.delivered_index.first().expect("len checked");
            let covered = match self.records.get(&id) {
                None => true,
                Some(record) => record.msg.dest.iter().all(|g| {
                    self.stable_watermarks
                        .get(&g)
                        .map(|w| gts <= *w)
                        .unwrap_or(false)
                }),
            };
            if !covered {
                break;
            }
            self.delivered_index.pop_first();
            if self.records.remove(&id).is_some() {
                self.pruned_count += 1;
            }
        }
        // The log prefix whose every slot concerns pruned history can go.
        let mut frontier = self.paxos.compacted_below();
        while let Some((&slot, &mid)) = self.slot_msgs.iter().next() {
            if self.records.contains_key(&mid) || !self.dedup.contains(mid) {
                break;
            }
            self.slot_msgs.remove(&slot);
            frontier = slot + 1;
        }
        self.paxos.compact_below(frontier);
    }

    /// Sends (or re-sends) this follower's catch-up request to the group
    /// leader and re-arms the retry timer.
    fn send_catchup_request(&mut self) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        if let Some(leader) = self.leader_of(self.group) {
            if leader != self.id {
                actions.push(Action::send(
                    leader,
                    BaselineMsg::CatchupRequest {
                        group: self.group,
                        delivered_gts: self.max_delivered_gts,
                        next_slot: self.paxos.decided_len(),
                    },
                ));
                actions.push(Action::SetTimer {
                    id: CATCHUP_TIMER,
                    delay: CATCHUP_RETRY,
                });
            }
        }
        actions
    }

    /// Leader handler for a catch-up request: reply with checkpoint + the
    /// resident log suffix at or above the requester's progress.
    fn handle_catchup_request(
        &mut self,
        from: ProcessId,
        group: GroupId,
        next_slot: Slot,
    ) -> Vec<Action<BaselineMsg>> {
        if !self.paxos.is_leader() || group != self.group || from == self.id {
            return Vec::new();
        }
        let frontier = self.paxos.compacted_below();
        let log: Vec<(Slot, Command)> = self
            .paxos
            .chosen_suffix()
            .into_iter()
            .filter(|(slot, _)| *slot >= next_slot.max(frontier))
            .collect();
        vec![Action::send(
            from,
            BaselineMsg::StateTransfer {
                checkpoint: self.checkpoint(),
                frontier,
                log,
            },
        )]
    }

    /// Installs a catch-up reply: merge the checkpoint (watermarks, filter,
    /// a delivery-progress jump over pruned history) and replay the log
    /// suffix through the consensus learner; then self-deliver every
    /// committed record up to the leader's delivery progress — the `DELIVER`
    /// instructions lost while down, reconstructed from the checkpoint
    /// (delivery order is global-timestamp order, so this is exactly the
    /// order the leader instructed).
    fn handle_state_transfer(
        &mut self,
        checkpoint: Checkpoint,
        frontier: Slot,
        log: Vec<(Slot, Command)>,
    ) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        if self.catchup_pending {
            self.catchup_pending = false;
            actions.push(Action::CancelTimer(CATCHUP_TIMER));
        }
        self.dedup.merge(&checkpoint.dedup);
        wbam_types::checkpoint::merge_watermarks(
            &mut self.stable_watermarks,
            &checkpoint.watermarks,
        );
        let own_watermark = self.watermark();
        if self.max_delivered_gts < own_watermark {
            self.transfer_recoveries += 1;
            self.transfer_excused_below = self.transfer_excused_below.max(own_watermark);
            self.max_delivered_gts = own_watermark;
        }
        let out = self.paxos.install_snapshot(frontier, log);
        actions.extend(self.convert_paxos(out));
        // Re-deliver what the leader already delivered: committed records at
        // or below the leader's progress, in timestamp order (deliver_one
        // filters anything at or below our own progress).
        let deliverable: Vec<(Timestamp, MsgId)> = self
            .records
            .values()
            .filter(|r| {
                r.commit_decided && !r.delivered && r.global_ts <= checkpoint.max_delivered_gts
            })
            .map(|r| (r.global_ts, r.msg.id))
            .collect();
        let mut deliverable = deliverable;
        deliverable.sort_unstable();
        for (gts, id) in deliverable {
            actions.extend(self.deliver_one(id, gts));
        }
        self.prune();
        actions
    }

    /// Delivers one message locally (leader on its own decision, follower on a
    /// `Deliver` instruction), filtering duplicates via `max_delivered_gts`.
    fn deliver_one(&mut self, id: MsgId, gts: Timestamp) -> Vec<Action<BaselineMsg>> {
        let mut actions = Vec::new();
        if gts <= self.max_delivered_gts {
            return actions;
        }
        let notify = self.notify_sender;
        let group = self.group;
        let Some(record) = self.records.get_mut(&id) else {
            return actions;
        };
        if record.delivered {
            return actions;
        }
        record.delivered = true;
        record.phase = Phase::Committed;
        record.global_ts = gts;
        let msg = record.msg.clone();
        self.max_delivered_gts = gts;
        self.delivered_count += 1;
        self.dedup.insert(id);
        if self.compaction_enabled() {
            self.delivered_index.insert((gts, id));
        }
        actions.push(Action::Deliver(DeliveredMessage::with_timestamp(msg, gts)));
        let sender = id.sender;
        if notify && !self.group_members.contains(&sender) {
            actions.push(Action::send(
                sender,
                BaselineMsg::ClientReply {
                    msg_id: id,
                    group,
                    global_ts: gts,
                },
            ));
        }
        actions.extend(self.note_delivery());
        actions
    }
}

impl Node for BaselineReplica {
    type Msg = BaselineMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_event(&mut self, _now: Duration, event: Event<BaselineMsg>) -> Vec<Action<BaselineMsg>> {
        match event {
            Event::Multicast(msg) => self.handle_multicast(msg),
            Event::BecomeLeader => {
                let out = self.paxos.campaign();
                self.convert_paxos(out)
            }
            Event::Timer {
                id: BATCH_TIMER, ..
            } => {
                self.batch_timer_armed = false;
                self.flush_batch()
            }
            // A restarted replica keeps its durable state (records, Paxos
            // log, clock) but lost its volatile context: the batch buffer and
            // its flush timer died with the process. Re-flush anything that
            // was buffered — the records already carry tentative timestamps —
            // and, if this replica led its group's consensus, re-establish
            // the leadership through a fresh campaign so in-flight slots are
            // re-learned from a quorum.
            Event::Restart => {
                self.batch_timer_armed = false;
                self.catchup_pending = false;
                let mut actions = self.flush_batch();
                if self.paxos.is_leader() {
                    let out = self.paxos.campaign();
                    actions.extend(self.convert_paxos(out));
                } else if self.compaction_enabled() {
                    // A restarted follower asks its leader for a catch-up:
                    // with compaction on, the decisions (and DELIVER
                    // instructions) it slept through may be trimmed from the
                    // leader's log, so it recovers from checkpoint + suffix
                    // rather than per-message replay. The request is pumped
                    // by a retry timer until the transfer lands — either leg
                    // can be lost, and a gap below the compacted frontier is
                    // unrecoverable through normal Paxos traffic.
                    self.catchup_pending = true;
                    actions.extend(self.send_catchup_request());
                }
                actions
            }
            Event::Timer {
                id: CATCHUP_TIMER, ..
            } => {
                if self.catchup_pending {
                    self.send_catchup_request()
                } else {
                    Vec::new()
                }
            }
            Event::Message { from, msg } => match msg {
                BaselineMsg::Multicast { msg } => self.handle_multicast(msg),
                BaselineMsg::Propose {
                    msg,
                    group,
                    local_ts,
                } => {
                    // Make sure we are ordering the message ourselves too (the
                    // client's MULTICAST to us may still be in flight or lost).
                    let mut actions = self.handle_multicast_inner(msg.clone(), false);
                    actions.extend(self.note_proposal(&msg, group, local_ts));
                    actions
                }
                BaselineMsg::Confirm { msg_id, group } => self.note_confirm(msg_id, group),
                BaselineMsg::Deliver { msg_id, global_ts } => self.deliver_one(msg_id, global_ts),
                BaselineMsg::Paxos(m) => {
                    let out = self.paxos.handle(from, m);
                    self.convert_paxos(out)
                }
                BaselineMsg::StableReport {
                    group,
                    delivered_gts,
                } => self.handle_stable_report(from, group, delivered_gts),
                BaselineMsg::StableAdvance { watermarks } => self.handle_stable_advance(watermarks),
                BaselineMsg::CatchupRequest {
                    group, next_slot, ..
                } => self.handle_catchup_request(from, group, next_slot),
                BaselineMsg::StateTransfer {
                    checkpoint,
                    frontier,
                    log,
                } => self.handle_state_transfer(checkpoint, frontier, log),
                BaselineMsg::ClientReply { .. } => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A client for the baseline protocols: submits messages to the destination
/// groups' leaders, collects the first delivery reply per message and retries
/// on a timeout.
pub struct BaselineClient {
    id: ProcessId,
    cluster: ClusterConfig,
    retry_timeout: Duration,
    pending: BTreeMap<MsgId, (AppMessage, Duration)>,
    completed: Vec<(MsgId, Timestamp, Duration)>,
}

impl BaselineClient {
    /// Creates a client with the given retry timeout.
    pub fn new(id: ProcessId, cluster: ClusterConfig, retry_timeout: Duration) -> Self {
        BaselineClient {
            id,
            cluster,
            retry_timeout,
            pending: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// Completed multicasts: message, global timestamp, client-side latency.
    pub fn completed(&self) -> &[(MsgId, Timestamp, Duration)] {
        &self.completed
    }

    /// Number of in-flight multicasts.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    fn send_to_leaders(&self, msg: &AppMessage) -> Vec<Action<BaselineMsg>> {
        msg.dest
            .iter()
            .filter_map(|g| self.cluster.group(g).map(|gc| gc.initial_leader()))
            .map(|leader| Action::send(leader, BaselineMsg::Multicast { msg: msg.clone() }))
            .collect()
    }
}

impl Node for BaselineClient {
    type Msg = BaselineMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_event(&mut self, now: Duration, event: Event<BaselineMsg>) -> Vec<Action<BaselineMsg>> {
        match event {
            Event::Multicast(msg) => {
                let mut actions = self.send_to_leaders(&msg);
                actions.push(Action::SetTimer {
                    id: wbam_types::TimerId(msg.id.seq),
                    delay: self.retry_timeout,
                });
                self.pending.insert(msg.id, (msg, now));
                actions
            }
            Event::Timer { id, .. } => {
                let msg = self
                    .pending
                    .values()
                    .find(|(m, _)| m.id.seq == id.0)
                    .map(|(m, _)| m.clone());
                match msg {
                    Some(m) => {
                        let mut actions = self.send_to_leaders(&m);
                        actions.push(Action::SetTimer {
                            id,
                            delay: self.retry_timeout,
                        });
                        actions
                    }
                    None => Vec::new(),
                }
            }
            Event::Message {
                msg:
                    BaselineMsg::ClientReply {
                        msg_id, global_ts, ..
                    },
                ..
            } => {
                if let Some((msg, submitted)) = self.pending.remove(&msg_id) {
                    let latency = now.saturating_sub(submitted);
                    self.completed.push((msg_id, global_ts, latency));
                    return vec![
                        Action::CancelTimer(wbam_types::TimerId(msg_id.seq)),
                        Action::Deliver(DeliveredMessage::with_timestamp(msg, global_ts)),
                    ];
                }
                Vec::new()
            }
            // A restarted client lost its retry timers (and any replies that
            // arrived while it was down): re-send every in-flight multicast
            // and re-arm its timer. Replicas answer duplicates of delivered
            // messages with a fresh reply.
            Event::Restart => {
                let mut actions = Vec::new();
                let pending: Vec<AppMessage> =
                    self.pending.values().map(|(m, _)| m.clone()).collect();
                for msg in pending {
                    let id = msg.id;
                    actions.extend(self.send_to_leaders(&msg));
                    actions.push(Action::SetTimer {
                        id: wbam_types::TimerId(id.seq),
                        delay: self.retry_timeout,
                    });
                }
                actions
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_types::{Destination, Payload};

    fn cluster() -> ClusterConfig {
        ClusterConfig::builder().groups(2, 3).clients(1).build()
    }

    fn msg(seq: u64, dest: &[u32]) -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(6), seq),
            Destination::new(dest.iter().map(|g| GroupId(*g))).unwrap(),
            Payload::from("x"),
        )
    }

    #[test]
    fn leader_proposes_assignment_through_consensus() {
        let mut leader = BaselineReplica::new(ProcessId(0), GroupId(0), cluster(), Mode::FtSkeen);
        let actions = leader.on_event(
            Duration::ZERO,
            Event::message(
                ProcessId(6),
                BaselineMsg::Multicast {
                    msg: msg(0, &[0, 1]),
                },
            ),
        );
        // Three Paxos ACCEPTs, no cross-group traffic yet (FT-Skeen waits for
        // consensus to complete before exchanging proposals).
        let paxos_msgs = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: BaselineMsg::Paxos(_),
                        ..
                    }
                )
            })
            .count();
        let proposes = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: BaselineMsg::Propose { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(paxos_msgs, 3);
        assert_eq!(proposes, 0);
    }

    #[test]
    fn fastcast_sends_proposals_speculatively() {
        let mut leader = BaselineReplica::new(ProcessId(0), GroupId(0), cluster(), Mode::FastCast);
        let actions = leader.on_event(
            Duration::ZERO,
            Event::message(
                ProcessId(6),
                BaselineMsg::Multicast {
                    msg: msg(0, &[0, 1]),
                },
            ),
        );
        let proposes = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: BaselineMsg::Propose { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(
            proposes, 1,
            "the proposal to g1's leader goes out immediately"
        );
    }

    #[test]
    fn batching_leader_buffers_and_flushes_one_paxos_batch() {
        let mut leader = BaselineReplica::new(ProcessId(0), GroupId(0), cluster(), Mode::FtSkeen)
            .with_batching(2, Duration::from_millis(5));
        let m1 = msg(0, &[0]);
        let m2 = msg(1, &[0]);
        let actions = leader.on_event(
            Duration::ZERO,
            Event::message(ProcessId(6), BaselineMsg::Multicast { msg: m1 }),
        );
        // Buffered: no consensus traffic yet, only the flush timer.
        assert!(!actions.iter().any(|a| matches!(a, Action::Send { .. })));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                id: BATCH_TIMER,
                ..
            }
        )));
        let actions = leader.on_event(
            Duration::ZERO,
            Event::message(ProcessId(6), BaselineMsg::Multicast { msg: m2 }),
        );
        // The full batch goes out as ONE AcceptMany per member (3 wire
        // messages for 2 commands, instead of 6).
        let batched = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: BaselineMsg::Paxos(PaxosMsg::AcceptMany { .. }),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(batched, 3);
        assert_eq!(leader.clock(), 2);
    }

    #[test]
    fn batch_timer_flushes_partial_baseline_batch() {
        let mut leader = BaselineReplica::new(ProcessId(0), GroupId(0), cluster(), Mode::FtSkeen)
            .with_batching(8, Duration::from_millis(5));
        leader.on_event(
            Duration::ZERO,
            Event::message(ProcessId(6), BaselineMsg::Multicast { msg: msg(0, &[0]) }),
        );
        let actions = leader.on_event(
            Duration::from_millis(5),
            Event::Timer {
                id: BATCH_TIMER,
                now: Duration::from_millis(5),
            },
        );
        let batched = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: BaselineMsg::Paxos(PaxosMsg::AcceptMany { .. }),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(batched, 3);
    }

    #[test]
    fn follower_forwards_multicast_to_leader() {
        let mut follower = BaselineReplica::new(ProcessId(1), GroupId(0), cluster(), Mode::FtSkeen);
        let actions = follower.on_event(
            Duration::ZERO,
            Event::message(ProcessId(6), BaselineMsg::Multicast { msg: msg(0, &[0]) }),
        );
        assert!(matches!(
            &actions[0],
            Action::Send { to, msg: BaselineMsg::Multicast { .. } } if *to == ProcessId(0)
        ));
    }

    #[test]
    fn duplicate_multicast_is_proposed_once() {
        let mut leader = BaselineReplica::new(ProcessId(0), GroupId(0), cluster(), Mode::FtSkeen);
        let m = msg(0, &[0]);
        leader.on_event(
            Duration::ZERO,
            Event::message(ProcessId(6), BaselineMsg::Multicast { msg: m.clone() }),
        );
        let second = leader.on_event(
            Duration::ZERO,
            Event::message(ProcessId(6), BaselineMsg::Multicast { msg: m }),
        );
        assert!(second.is_empty());
        assert_eq!(leader.clock(), 1);
    }

    #[test]
    fn client_sends_to_destination_leaders_and_records_reply() {
        let mut c = BaselineClient::new(ProcessId(6), cluster(), Duration::from_millis(200));
        let m = msg(0, &[0, 1]);
        let actions = c.on_event(Duration::ZERO, Event::Multicast(m.clone()));
        let targets: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![ProcessId(0), ProcessId(3)]);
        let reply = BaselineMsg::ClientReply {
            msg_id: m.id,
            group: GroupId(1),
            global_ts: Timestamp::new(2, GroupId(1)),
        };
        let actions = c.on_event(
            Duration::from_millis(9),
            Event::message(ProcessId(3), reply),
        );
        assert!(actions.iter().any(Action::is_delivery));
        assert_eq!(c.completed().len(), 1);
        assert_eq!(c.completed()[0].2, Duration::from_millis(9));
        assert_eq!(c.pending_count(), 0);
    }

    #[test]
    fn client_retry_resends_to_leaders() {
        let mut c = BaselineClient::new(ProcessId(6), cluster(), Duration::from_millis(50));
        let m = msg(3, &[1]);
        c.on_event(Duration::ZERO, Event::Multicast(m));
        let actions = c.on_event(
            Duration::from_millis(50),
            Event::Timer {
                id: wbam_types::TimerId(3),
                now: Duration::from_millis(50),
            },
        );
        let resends = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: BaselineMsg::Multicast { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(resends, 1);
    }
}
