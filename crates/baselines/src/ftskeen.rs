//! Fault-tolerant Skeen over black-box consensus (Fritzke et al., 2001).
//!
//! Each group is a multi-Paxos replicated state machine. Ordering a message
//! addressed to `k` groups costs, per destination group and in the absence of
//! collisions: one message delay for the client's `MULTICAST`, one consensus
//! round trip (2δ) to persist the local timestamp, one message delay for the
//! leaders' `PROPOSE` exchange, and a second consensus round trip (2δ) to
//! persist the global timestamp — **6δ** in total. Because the group's clock
//! only advances past a message's global timestamp after the second consensus,
//! the failure-free latency degrades to roughly **12δ** under concurrency
//! (paper §VI).

use wbam_types::{ClusterConfig, GroupId, ProcessId};

use crate::common::{BaselineReplica, Mode};

/// A replica of the fault-tolerant Skeen protocol.
///
/// This is a thin wrapper that fixes [`Mode::FtSkeen`] on the shared
/// [`BaselineReplica`]; see that type for the full API.
pub type FtSkeenReplica = BaselineReplica;

/// Creates a fault-tolerant Skeen replica.
pub fn ft_skeen_replica(id: ProcessId, group: GroupId, cluster: ClusterConfig) -> FtSkeenReplica {
    BaselineReplica::new(id, group, cluster, Mode::FtSkeen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wbam_simnet::{LatencyModel, SimConfig, Simulation};
    use wbam_types::{AppMessage, Destination, GroupId, MsgId, Payload, SiteId};

    use crate::common::{BaselineClient, BaselineMsg};

    fn build_sim(delta_ms: u64) -> (Simulation<BaselineMsg>, ClusterConfig) {
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::constant(Duration::from_millis(delta_ms)),
            ..SimConfig::default()
        });
        for gc in cluster.groups() {
            for member in gc.members() {
                sim.add_replica(
                    Box::new(ft_skeen_replica(*member, gc.id(), cluster.clone())),
                    gc.id(),
                    SiteId(0),
                );
            }
        }
        for client in cluster.clients() {
            sim.add_client(Box::new(BaselineClient::new(
                *client,
                cluster.clone(),
                Duration::from_secs(10),
            )));
        }
        (sim, cluster)
    }

    fn msg(cluster: &ClusterConfig, seq: u64, dest: &[u32]) -> AppMessage {
        AppMessage::new(
            MsgId::new(cluster.clients()[0], seq),
            Destination::new(dest.iter().map(|g| GroupId(*g))).unwrap(),
            Payload::zeros(20),
        )
    }

    #[test]
    fn end_to_end_delivery_in_both_groups() {
        let (mut sim, cluster) = build_sim(1);
        let client = cluster.clients()[0];
        let m = msg(&cluster, 0, &[0, 1]);
        sim.schedule_multicast(Duration::ZERO, client, m.clone());
        sim.run_until_quiescent(Duration::from_secs(10));
        let metrics = sim.metrics();
        assert!(metrics.is_partially_delivered(m.id));
        // Every replica of both groups eventually delivers.
        for gc in cluster.groups() {
            for member in gc.members() {
                assert_eq!(metrics.delivery_order_at(*member), vec![m.id]);
            }
        }
    }

    #[test]
    fn collision_free_latency_is_six_delta_at_leaders() {
        let delta = Duration::from_millis(10);
        let (mut sim, cluster) = build_sim(10);
        let client = cluster.clients()[0];
        let m = msg(&cluster, 0, &[0, 1]);
        sim.schedule_multicast(Duration::ZERO, client, m.clone());
        sim.run_until_quiescent(Duration::from_secs(10));
        let metrics = sim.metrics();
        let latency = metrics.latency(m.id).expect("delivered");
        // 6δ, with a little slack for the follower-side DELIVER propagation
        // not being on the critical path (first delivery in each group).
        assert_eq!(latency, delta * 6, "collision-free latency must be 6δ");
    }

    #[test]
    fn disjoint_messages_are_ordered_independently() {
        let (mut sim, cluster) = build_sim(1);
        let client = cluster.clients()[0];
        let m0 = msg(&cluster, 0, &[0]);
        let m1 = msg(&cluster, 1, &[1]);
        sim.schedule_multicast(Duration::ZERO, client, m0.clone());
        sim.schedule_multicast(Duration::ZERO, client, m1.clone());
        sim.run_until_quiescent(Duration::from_secs(10));
        let metrics = sim.metrics();
        assert!(metrics.is_partially_delivered(m0.id));
        assert!(metrics.is_partially_delivered(m1.id));
        // Group 0's replicas never see m1 and vice versa (genuineness).
        assert_eq!(metrics.delivery_order_at(ProcessId(0)), vec![m0.id]);
        assert_eq!(metrics.delivery_order_at(ProcessId(3)), vec![m1.id]);
    }

    #[test]
    fn conflicting_messages_are_delivered_in_the_same_order_everywhere() {
        let (mut sim, cluster) = build_sim(1);
        let client = cluster.clients()[0];
        let mut msgs = Vec::new();
        for seq in 0..8 {
            let m = msg(&cluster, seq, &[0, 1]);
            sim.schedule_multicast(Duration::from_micros(seq * 100), client, m.clone());
            msgs.push(m);
        }
        sim.run_until_quiescent(Duration::from_secs(30));
        let metrics = sim.metrics();
        let reference = metrics.delivery_order_at(ProcessId(0));
        assert_eq!(reference.len(), 8);
        for p in [1, 2, 3, 4, 5] {
            assert_eq!(
                metrics.delivery_order_at(ProcessId(p)),
                reference,
                "replica p{p} disagrees on the delivery order"
            );
        }
    }
}
