//! FastCast (Coelho, Schiper, Pedone — DSN 2017).
//!
//! FastCast keeps the structure of fault-tolerant Skeen but removes one
//! consensus round trip from the critical path through speculation: upon
//! receiving an application message the group leader issues a tentative local
//! timestamp and *immediately* forwards it to the other destination groups'
//! leaders while consensus on it runs in the background; leaders speculatively
//! compute the global timestamp and start the second consensus, and exchange
//! confirmation messages once the first consensus completes. In the absence of
//! failures the speculation always succeeds and the collision-free latency is
//! **4δ**; the failure-free latency under concurrency is ~**8δ** because the
//! clock still only advances past a global timestamp after the second
//! consensus (paper §VI).

use wbam_types::{ClusterConfig, GroupId, ProcessId};

use crate::common::{BaselineReplica, Mode};

/// A replica of the FastCast protocol.
///
/// This is a thin wrapper that fixes [`Mode::FastCast`] on the shared
/// [`BaselineReplica`]; see that type for the full API.
pub type FastCastReplica = BaselineReplica;

/// Creates a FastCast replica.
pub fn fastcast_replica(id: ProcessId, group: GroupId, cluster: ClusterConfig) -> FastCastReplica {
    BaselineReplica::new(id, group, cluster, Mode::FastCast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wbam_simnet::{LatencyModel, SimConfig, Simulation};
    use wbam_types::{AppMessage, Destination, GroupId, MsgId, Payload, SiteId};

    use crate::common::{BaselineClient, BaselineMsg};

    fn build_sim(delta_ms: u64) -> (Simulation<BaselineMsg>, ClusterConfig) {
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let mut sim = Simulation::new(SimConfig {
            latency: LatencyModel::constant(Duration::from_millis(delta_ms)),
            ..SimConfig::default()
        });
        for gc in cluster.groups() {
            for member in gc.members() {
                sim.add_replica(
                    Box::new(fastcast_replica(*member, gc.id(), cluster.clone())),
                    gc.id(),
                    SiteId(0),
                );
            }
        }
        for client in cluster.clients() {
            sim.add_client(Box::new(BaselineClient::new(
                *client,
                cluster.clone(),
                Duration::from_secs(10),
            )));
        }
        (sim, cluster)
    }

    fn msg(cluster: &ClusterConfig, seq: u64, dest: &[u32]) -> AppMessage {
        AppMessage::new(
            MsgId::new(cluster.clients()[0], seq),
            Destination::new(dest.iter().map(|g| GroupId(*g))).unwrap(),
            Payload::zeros(20),
        )
    }

    #[test]
    fn end_to_end_delivery_in_both_groups() {
        let (mut sim, cluster) = build_sim(1);
        let client = cluster.clients()[0];
        let m = msg(&cluster, 0, &[0, 1]);
        sim.schedule_multicast(Duration::ZERO, client, m.clone());
        sim.run_until_quiescent(Duration::from_secs(10));
        let metrics = sim.metrics();
        assert!(metrics.is_partially_delivered(m.id));
    }

    #[test]
    fn collision_free_latency_is_four_delta_at_leaders() {
        let delta = Duration::from_millis(10);
        let (mut sim, cluster) = build_sim(10);
        let client = cluster.clients()[0];
        let m = msg(&cluster, 0, &[0, 1]);
        sim.schedule_multicast(Duration::ZERO, client, m.clone());
        sim.run_until_quiescent(Duration::from_secs(10));
        let metrics = sim.metrics();
        let latency = metrics.latency(m.id).expect("delivered");
        assert_eq!(latency, delta * 4, "collision-free latency must be 4δ");
    }

    #[test]
    fn fastcast_is_two_delta_faster_than_ft_skeen() {
        // Differential check against the FT-Skeen module on an identical run.
        let delta = Duration::from_millis(10);
        let run = |fast: bool| -> Duration {
            let cluster = ClusterConfig::builder().groups(3, 3).clients(1).build();
            let mut sim = Simulation::new(SimConfig {
                latency: LatencyModel::constant(delta),
                ..SimConfig::default()
            });
            for gc in cluster.groups() {
                for member in gc.members() {
                    let node: Box<dyn wbam_types::Node<Msg = BaselineMsg>> = if fast {
                        Box::new(fastcast_replica(*member, gc.id(), cluster.clone()))
                    } else {
                        Box::new(crate::ftskeen::ft_skeen_replica(
                            *member,
                            gc.id(),
                            cluster.clone(),
                        ))
                    };
                    sim.add_replica(node, gc.id(), SiteId(0));
                }
            }
            let client = cluster.clients()[0];
            sim.add_client(Box::new(BaselineClient::new(
                client,
                cluster.clone(),
                Duration::from_secs(10),
            )));
            let m = AppMessage::new(
                MsgId::new(client, 0),
                Destination::new(vec![GroupId(0), GroupId(1), GroupId(2)]).unwrap(),
                Payload::zeros(20),
            );
            sim.schedule_multicast(Duration::ZERO, client, m.clone());
            sim.run_until_quiescent(Duration::from_secs(10));
            sim.metrics().latency(m.id).expect("delivered")
        };
        let fastcast = run(true);
        let ftskeen = run(false);
        assert_eq!(ftskeen.saturating_sub(fastcast), delta * 2);
    }

    #[test]
    fn conflicting_messages_agree_on_order_across_groups() {
        let (mut sim, cluster) = build_sim(1);
        let client = cluster.clients()[0];
        for seq in 0..6 {
            let m = msg(&cluster, seq, &[0, 1]);
            sim.schedule_multicast(Duration::from_micros(seq * 50), client, m);
        }
        sim.run_until_quiescent(Duration::from_secs(30));
        let metrics = sim.metrics();
        let reference = metrics.delivery_order_at(ProcessId(0));
        assert_eq!(reference.len(), 6);
        for p in [1, 2, 3, 4, 5] {
            assert_eq!(metrics.delivery_order_at(ProcessId(p)), reference);
        }
    }
}
