//! Checkers for the key protocol invariants of Figure 6.
//!
//! These functions operate on a trace of sent protocol messages (as recorded
//! by the simulator with `SimConfig::record_trace` in `wbam-simnet`) and on the
//! delivery log. They are used by the integration and property tests to
//! validate runs of the protocol under random workloads, delays and crashes:
//!
//! * **Invariant 1** — for a given `(message, group, ballot)` at most one local
//!   timestamp is ever proposed in `ACCEPT` messages.
//! * **Invariant 3(a)** — all `DELIVER` messages for a message sent to the same
//!   group carry the same local timestamp.
//! * **Invariant 3(b)** — all `DELIVER` messages for a message carry the same
//!   global timestamp, across all groups.
//! * **Invariant 4** — distinct messages never share a global timestamp.
//! * **Ordering** — the per-process delivery sequences are consistent with the
//!   global-timestamp order (a direct consequence of the paper's Ordering
//!   property, checkable on deliveries that expose their timestamp).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use wbam_types::{Ballot, GroupId, MsgId, ProcessId, Timestamp};

use crate::messages::WhiteBoxMsg;

/// A violation of one of the checked invariants.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Invariant 1: two different local timestamps proposed for the same
    /// message by the same group in the same ballot.
    ConflictingAccepts {
        /// The message.
        msg_id: MsgId,
        /// The proposing group.
        group: GroupId,
        /// The ballot of both proposals.
        ballot: Ballot,
        /// The two conflicting timestamps.
        timestamps: (Timestamp, Timestamp),
    },
    /// Invariant 3(a): two `DELIVER`s for the same message and group with
    /// different local timestamps.
    ConflictingDeliverLocalTs {
        /// The message.
        msg_id: MsgId,
        /// The two conflicting local timestamps.
        timestamps: (Timestamp, Timestamp),
    },
    /// Invariant 3(b): two `DELIVER`s for the same message with different
    /// global timestamps.
    ConflictingDeliverGlobalTs {
        /// The message.
        msg_id: MsgId,
        /// The two conflicting global timestamps.
        timestamps: (Timestamp, Timestamp),
    },
    /// Invariant 4: two different messages delivered with the same global
    /// timestamp.
    DuplicateGlobalTs {
        /// The two messages.
        msgs: (MsgId, MsgId),
        /// The shared timestamp.
        ts: Timestamp,
    },
    /// A process delivered messages out of global-timestamp order.
    OutOfOrderDelivery {
        /// The delivering process.
        process: ProcessId,
        /// The message delivered earlier but with the higher timestamp.
        earlier: MsgId,
        /// The message delivered later but with the lower timestamp.
        later: MsgId,
    },
    /// A process delivered the same message more than once (Integrity).
    DuplicateDelivery {
        /// The process.
        process: ProcessId,
        /// The message.
        msg_id: MsgId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ConflictingAccepts { msg_id, group, ballot, timestamps } => write!(
                f,
                "invariant 1 violated: {msg_id} proposed twice by {group} in ballot {ballot}: {} vs {}",
                timestamps.0, timestamps.1
            ),
            Violation::ConflictingDeliverLocalTs { msg_id, timestamps } => write!(
                f,
                "invariant 3a violated: {msg_id} delivered with local timestamps {} and {}",
                timestamps.0, timestamps.1
            ),
            Violation::ConflictingDeliverGlobalTs { msg_id, timestamps } => write!(
                f,
                "invariant 3b violated: {msg_id} delivered with global timestamps {} and {}",
                timestamps.0, timestamps.1
            ),
            Violation::DuplicateGlobalTs { msgs, ts } => write!(
                f,
                "invariant 4 violated: {} and {} share global timestamp {ts}",
                msgs.0, msgs.1
            ),
            Violation::OutOfOrderDelivery { process, earlier, later } => write!(
                f,
                "ordering violated at {process}: {earlier} delivered before {later} despite a higher global timestamp"
            ),
            Violation::DuplicateDelivery { process, msg_id } => {
                write!(f, "integrity violated at {process}: {msg_id} delivered twice")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// A sent protocol message, as extracted from a simulator trace.
#[derive(Debug, Clone)]
pub struct SentMessage {
    /// The sender.
    pub from: ProcessId,
    /// The recipient.
    pub to: ProcessId,
    /// The message.
    pub msg: WhiteBoxMsg,
}

/// The proposals carried by a protocol message: one for a standalone
/// `ACCEPT`, one per entry for an `ACCEPT_BATCH`, none otherwise. Batch
/// entries are subject to exactly the same invariants as standalone accepts.
fn accept_views(msg: &WhiteBoxMsg) -> Vec<(MsgId, GroupId, Ballot, Timestamp)> {
    match msg {
        WhiteBoxMsg::Accept {
            msg,
            group,
            ballot,
            local_ts,
        } => vec![(msg.id, *group, *ballot, *local_ts)],
        WhiteBoxMsg::AcceptBatch {
            group,
            ballot,
            entries,
        } => entries
            .iter()
            .map(|e| (e.msg.id, *group, *ballot, e.local_ts))
            .collect(),
        _ => Vec::new(),
    }
}

/// The deliveries carried by a protocol message: one for a standalone
/// `DELIVER`, one per entry for a `DELIVER_BATCH`, none otherwise.
fn deliver_views(msg: &WhiteBoxMsg) -> Vec<(MsgId, Timestamp, Timestamp)> {
    match msg {
        WhiteBoxMsg::Deliver {
            msg,
            local_ts,
            global_ts,
            ..
        } => vec![(msg.id, *local_ts, *global_ts)],
        WhiteBoxMsg::DeliverBatch { entries, .. } => entries
            .iter()
            .map(|e| (e.msg.id, e.local_ts, e.global_ts))
            .collect(),
        _ => Vec::new(),
    }
}

/// Checks Invariant 1 over a trace: in a given ballot, a group proposes at
/// most one local timestamp per message. Batched accepts are checked entry by
/// entry.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_unique_proposals<'a, I>(trace: I) -> Result<(), Violation>
where
    I: IntoIterator<Item = &'a SentMessage>,
{
    let mut seen: BTreeMap<(MsgId, GroupId, Ballot), Timestamp> = BTreeMap::new();
    for entry in trace {
        for (msg_id, group, ballot, local_ts) in accept_views(&entry.msg) {
            match seen.get(&(msg_id, group, ballot)) {
                None => {
                    seen.insert((msg_id, group, ballot), local_ts);
                }
                Some(existing) if *existing == local_ts => {}
                Some(existing) => {
                    return Err(Violation::ConflictingAccepts {
                        msg_id,
                        group,
                        ballot,
                        timestamps: (*existing, local_ts),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks Invariants 3(a), 3(b) and 4 over a trace of `DELIVER` messages.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_deliver_agreement<'a, I>(trace: I) -> Result<(), Violation>
where
    I: IntoIterator<Item = &'a SentMessage>,
{
    let mut local: BTreeMap<MsgId, Timestamp> = BTreeMap::new();
    let mut global: BTreeMap<MsgId, Timestamp> = BTreeMap::new();
    let mut by_gts: BTreeMap<Timestamp, MsgId> = BTreeMap::new();
    for entry in trace {
        for (msg_id, local_ts, global_ts) in deliver_views(&entry.msg) {
            // Invariant 3(a): same local timestamp per group. Since each group
            // computes its own local timestamps, we key by message only within
            // traces of a single group's DELIVERs; across groups local
            // timestamps legitimately differ, so the caller should pass a
            // per-group trace. For whole-system traces we check 3(b) and 4.
            match global.get(&msg_id) {
                None => {
                    global.insert(msg_id, global_ts);
                }
                Some(existing) if *existing == global_ts => {}
                Some(existing) => {
                    return Err(Violation::ConflictingDeliverGlobalTs {
                        msg_id,
                        timestamps: (*existing, global_ts),
                    });
                }
            }
            match by_gts.get(&global_ts) {
                None => {
                    by_gts.insert(global_ts, msg_id);
                }
                Some(existing) if *existing == msg_id => {}
                Some(existing) => {
                    return Err(Violation::DuplicateGlobalTs {
                        msgs: (*existing, msg_id),
                        ts: global_ts,
                    });
                }
            }
            let _ = local.entry(msg_id).or_insert(local_ts);
        }
    }
    Ok(())
}

/// Checks Invariant 3(a) on a per-group basis: all `DELIVER`s addressed to
/// members of the same group carry the same local timestamp for a message.
///
/// `group_of` maps a process to its group.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_deliver_local_ts_per_group<'a, I, F>(trace: I, group_of: F) -> Result<(), Violation>
where
    I: IntoIterator<Item = &'a SentMessage>,
    F: Fn(ProcessId) -> Option<GroupId>,
{
    let mut seen: BTreeMap<(MsgId, GroupId), Timestamp> = BTreeMap::new();
    for entry in trace {
        for (msg_id, local_ts, _) in deliver_views(&entry.msg) {
            let Some(group) = group_of(entry.to) else {
                continue;
            };
            match seen.get(&(msg_id, group)) {
                None => {
                    seen.insert((msg_id, group), local_ts);
                }
                Some(existing) if *existing == local_ts => {}
                Some(existing) => {
                    return Err(Violation::ConflictingDeliverLocalTs {
                        msg_id,
                        timestamps: (*existing, local_ts),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks Integrity and timestamp-ordered delivery over per-process delivery
/// logs: every process delivers a message at most once, and in increasing
/// global-timestamp order.
///
/// `deliveries` lists, per process, the delivered messages in delivery order
/// together with their global timestamps.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_delivery_order(
    deliveries: &BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>>,
) -> Result<(), Violation> {
    for (process, seq) in deliveries {
        let mut seen: BTreeSet<MsgId> = BTreeSet::new();
        let mut last: Option<(MsgId, Timestamp)> = None;
        for (msg_id, ts) in seq {
            if !seen.insert(*msg_id) {
                return Err(Violation::DuplicateDelivery {
                    process: *process,
                    msg_id: *msg_id,
                });
            }
            if let Some((prev_id, prev_ts)) = last {
                if prev_ts > *ts {
                    return Err(Violation::OutOfOrderDelivery {
                        process: *process,
                        earlier: prev_id,
                        later: *msg_id,
                    });
                }
            }
            last = Some((*msg_id, *ts));
        }
    }
    Ok(())
}

/// Checks the paper's Ordering property directly on per-process delivery
/// sequences: there is a single total order (we use the global-timestamp
/// order) such that every process delivers the messages addressed to it in
/// that order. Equivalent to running [`check_delivery_order`] plus
/// [`check_deliver_agreement`]; provided as a convenience for tests that only
/// have delivery logs.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_total_order(
    deliveries: &BTreeMap<ProcessId, Vec<(MsgId, Timestamp)>>,
) -> Result<(), Violation> {
    // Global timestamps must agree across processes and be unique per message.
    let mut gts_of: BTreeMap<MsgId, Timestamp> = BTreeMap::new();
    let mut msg_of: BTreeMap<Timestamp, MsgId> = BTreeMap::new();
    for seq in deliveries.values() {
        for (msg_id, ts) in seq {
            match gts_of.get(msg_id) {
                None => {
                    gts_of.insert(*msg_id, *ts);
                }
                Some(existing) if existing == ts => {}
                Some(existing) => {
                    return Err(Violation::ConflictingDeliverGlobalTs {
                        msg_id: *msg_id,
                        timestamps: (*existing, *ts),
                    });
                }
            }
            match msg_of.get(ts) {
                None => {
                    msg_of.insert(*ts, *msg_id);
                }
                Some(existing) if existing == msg_id => {}
                Some(existing) => {
                    return Err(Violation::DuplicateGlobalTs {
                        msgs: (*existing, *msg_id),
                        ts: *ts,
                    });
                }
            }
        }
    }
    check_delivery_order(deliveries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_types::{AppMessage, Destination, Payload};

    fn msg(seq: u64) -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(9), seq),
            Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
            Payload::from("x"),
        )
    }

    fn accept(seq: u64, group: u32, ballot_round: u64, ts_time: u64) -> SentMessage {
        SentMessage {
            from: ProcessId(0),
            to: ProcessId(1),
            msg: WhiteBoxMsg::Accept {
                msg: msg(seq),
                group: GroupId(group),
                ballot: Ballot::new(ballot_round, ProcessId(0)),
                local_ts: Timestamp::new(ts_time, GroupId(group)),
            },
        }
    }

    fn deliver(seq: u64, to: u32, lts: u64, gts: u64, gts_group: u32) -> SentMessage {
        SentMessage {
            from: ProcessId(0),
            to: ProcessId(to),
            msg: WhiteBoxMsg::Deliver {
                msg: msg(seq),
                ballot: Ballot::new(1, ProcessId(0)),
                local_ts: Timestamp::new(lts, GroupId(0)),
                global_ts: Timestamp::new(gts, GroupId(gts_group)),
            },
        }
    }

    #[test]
    fn unique_proposals_accepts_identical_retransmissions() {
        let trace = vec![accept(1, 0, 1, 5), accept(1, 0, 1, 5), accept(1, 1, 1, 9)];
        assert!(check_unique_proposals(&trace).is_ok());
    }

    #[test]
    fn unique_proposals_detects_conflicts() {
        let trace = vec![accept(1, 0, 1, 5), accept(1, 0, 1, 6)];
        let err = check_unique_proposals(&trace).unwrap_err();
        assert!(matches!(err, Violation::ConflictingAccepts { .. }));
        assert!(err.to_string().contains("invariant 1"));
    }

    #[test]
    fn different_ballots_may_propose_differently() {
        let trace = vec![accept(1, 0, 1, 5), accept(1, 0, 2, 7)];
        assert!(check_unique_proposals(&trace).is_ok());
    }

    #[test]
    fn deliver_agreement_detects_global_ts_mismatch() {
        let trace = vec![deliver(1, 1, 5, 9, 1), deliver(1, 2, 5, 10, 1)];
        let err = check_deliver_agreement(&trace).unwrap_err();
        assert!(matches!(err, Violation::ConflictingDeliverGlobalTs { .. }));
    }

    #[test]
    fn deliver_agreement_detects_shared_global_ts() {
        let trace = vec![deliver(1, 1, 5, 9, 1), deliver(2, 1, 6, 9, 1)];
        let err = check_deliver_agreement(&trace).unwrap_err();
        assert!(matches!(err, Violation::DuplicateGlobalTs { .. }));
    }

    #[test]
    fn deliver_local_ts_checked_per_group() {
        let group_of = |p: ProcessId| {
            if p.0 < 3 {
                Some(GroupId(0))
            } else {
                Some(GroupId(1))
            }
        };
        // Same message, different local timestamps at different groups: fine.
        let ok = vec![deliver(1, 0, 5, 9, 1), deliver(1, 3, 7, 9, 1)];
        assert!(check_deliver_local_ts_per_group(&ok, group_of).is_ok());
        // Different local timestamps within one group: violation.
        let bad = vec![deliver(1, 0, 5, 9, 1), deliver(1, 1, 6, 9, 1)];
        assert!(check_deliver_local_ts_per_group(&bad, group_of).is_err());
    }

    #[test]
    fn delivery_order_detects_out_of_order_and_duplicates() {
        let mk = |seq: u64, t: u64| (MsgId::new(ProcessId(9), seq), Timestamp::new(t, GroupId(0)));
        let mut ok = BTreeMap::new();
        ok.insert(ProcessId(0), vec![mk(1, 1), mk(2, 2), mk(3, 5)]);
        assert!(check_delivery_order(&ok).is_ok());

        let mut out_of_order = BTreeMap::new();
        out_of_order.insert(ProcessId(0), vec![mk(2, 2), mk(1, 1)]);
        assert!(matches!(
            check_delivery_order(&out_of_order).unwrap_err(),
            Violation::OutOfOrderDelivery { .. }
        ));

        let mut duplicate = BTreeMap::new();
        duplicate.insert(ProcessId(0), vec![mk(1, 1), mk(1, 1)]);
        assert!(matches!(
            check_delivery_order(&duplicate).unwrap_err(),
            Violation::DuplicateDelivery { .. }
        ));
    }

    #[test]
    fn total_order_checks_agreement_across_processes() {
        let mk = |seq: u64, t: u64| (MsgId::new(ProcessId(9), seq), Timestamp::new(t, GroupId(0)));
        let mut good = BTreeMap::new();
        good.insert(ProcessId(0), vec![mk(1, 1), mk(2, 2)]);
        good.insert(ProcessId(3), vec![mk(2, 2)]);
        assert!(check_total_order(&good).is_ok());

        let mut disagree = BTreeMap::new();
        disagree.insert(ProcessId(0), vec![mk(1, 1)]);
        disagree.insert(
            ProcessId(3),
            vec![(MsgId::new(ProcessId(9), 1), Timestamp::new(4, GroupId(0)))],
        );
        assert!(check_total_order(&disagree).is_err());
    }

    #[test]
    fn violations_display_readably() {
        let v = Violation::DuplicateDelivery {
            process: ProcessId(2),
            msg_id: MsgId::new(ProcessId(9), 1),
        };
        assert!(v.to_string().contains("p2"));
    }
}
