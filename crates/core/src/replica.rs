//! The white-box atomic multicast replica (Figure 4 of the paper).
//!
//! A [`WhiteBoxReplica`] plays one process `pi ∈ g0` of the protocol. It is a
//! sans-IO [`Node`]: protocol messages and timer events go in, sends /
//! deliveries / timer requests come out. The handlers map one-to-one onto the
//! `when received ...` blocks of Figure 4 and are annotated with the
//! corresponding line numbers.
//!
//! # Roles
//!
//! Every replica is the *leader* of its group, a *follower*, or *recovering*
//! (during a leader change). Only the leader assigns local timestamps and
//! decides when to deliver; followers durably store its decisions so that a
//! new leader can take over after a crash (passive replication, as in
//! Viewstamped Replication and Zab).

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use wbam_types::{
    Action, AppMessage, Ballot, Checkpoint, ConfigError, DeliveredFilter, DeliveredMessage, Event,
    GroupId, MsgId, Node, Phase, ProcessId, TimerId, Timestamp,
};

use crate::config::ReplicaConfig;
use crate::messages::{
    ballot_vector, AcceptEntry, BallotVector, DeliverEntry, StateSnapshot, WhiteBoxMsg,
};
use crate::record::MessageRecord;

/// Timer used by a leader to send heartbeats to its followers.
const HEARTBEAT_TIMER: TimerId = TimerId(1);
/// Timer used by a follower to monitor its leader's liveness.
const ELECTION_TIMER: TimerId = TimerId(2);
/// Timer used by a batching leader to flush a partially filled batch.
const BATCH_TIMER: TimerId = TimerId(3);
/// Base for per-message retry timers; retry timer `n` is `RETRY_BASE + n`.
const RETRY_TIMER_BASE: u64 = 1_000;

/// The role a replica currently plays in its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// This replica computes timestamps and decides deliveries for its group.
    Leader,
    /// This replica follows its group's leader.
    Follower,
    /// This replica is establishing a new ballot (Figure 4, lines 35–65).
    Recovering,
}

/// Bookkeeping of an in-progress leader recovery at the prospective leader.
#[derive(Debug, Clone)]
struct RecoveryState {
    /// The ballot being established.
    ballot: Ballot,
    /// `NEWLEADER_ACK`s received so far, keyed by sender.
    acks: BTreeMap<ProcessId, NewLeaderAckData>,
    /// Whether the new state has been computed and `NEW_STATE` sent.
    installed: bool,
    /// Processes (including ourselves) that acknowledged the new state.
    state_acks: BTreeSet<ProcessId>,
}

#[derive(Debug, Clone)]
struct NewLeaderAckData {
    cballot: Ballot,
    checkpoint: Checkpoint,
    snapshot: StateSnapshot,
}

/// A replica of the white-box atomic multicast protocol.
///
/// See the [crate-level documentation](crate) for an overview and
/// `examples/quickstart.rs` for an end-to-end run.
pub struct WhiteBoxReplica {
    config: ReplicaConfig,
    status: Status,
    /// The logical clock used to generate local timestamps (Figure 3).
    clock: u64,
    /// The ballot this replica last synchronised with (`cballot`).
    cballot: Ballot,
    /// The highest ballot this replica has joined (`ballot`); `cballot ≤ ballot`.
    ballot: Ballot,
    /// Current best guess of the leader of every group (`Cur_leader`).
    cur_leader: BTreeMap<GroupId, ProcessId>,
    /// Highest global timestamp of a delivered message (`max_delivered_gts`).
    max_delivered_gts: Timestamp,
    /// Per-message protocol state.
    records: BTreeMap<MsgId, MessageRecord>,
    /// Members of this replica's group, in configuration order.
    group_members: Vec<ProcessId>,
    /// Quorum size of every group.
    quorum_sizes: BTreeMap<GroupId, usize>,
    /// In-progress recovery, if this replica is establishing a ballot.
    recovery: Option<RecoveryState>,
    /// Retry timers: timer id → message, and message → timer id.
    retry_timer_msgs: BTreeMap<TimerId, MsgId>,
    retry_timer_of: BTreeMap<MsgId, TimerId>,
    next_retry_timer: u64,
    /// Last time we heard from our group's leader (heartbeat or any message).
    last_leader_activity: Duration,
    /// Number of application messages this replica has delivered.
    delivered_count: u64,
    /// Proposed-but-unflushed multicasts awaiting the next batched `ACCEPT`
    /// round (leader only; empty unless batching is enabled).
    batch_buffer: Vec<MsgId>,
    /// Whether the batch-flush timer is currently armed.
    batch_timer_armed: bool,
    /// Delivery-condition index: the local timestamps of records whose phase
    /// is `PROPOSED` or `ACCEPTED`, ordered. Its minimum is the `min pending`
    /// bound of Figure 4 line 21; keeping it incrementally avoids a full
    /// record scan on every commit (O(log n) instead of O(n)).
    pending_lts: BTreeSet<(Timestamp, MsgId)>,
    /// Delivery-condition index: global timestamps of committed-but-not-yet
    /// delivered records, ordered — the delivery candidates of Figure 4
    /// line 21.
    committed_undelivered: BTreeSet<(Timestamp, MsgId)>,
    /// Compaction: every group's delivery watermark as currently known (all
    /// records with `global_ts <= stable_watermarks[g]` are delivered at
    /// every member of `g`). Advanced monotonically by the `STABLE` exchange.
    stable_watermarks: BTreeMap<GroupId, Timestamp>,
    /// Compaction (leader only): the latest delivery progress reported by
    /// each group member via `STABLE_REPORT` (own entry updated inline).
    member_delivered: BTreeMap<ProcessId, Timestamp>,
    /// Compaction: deliveries since the last `STABLE_REPORT` / recompute.
    deliveries_since_stable: u64,
    /// Compaction: delivered-but-not-yet-pruned records in global-timestamp
    /// order — the prune scan order, and the lag-window boundary.
    delivered_index: BTreeSet<(Timestamp, MsgId)>,
    /// Compaction: bounded filter of every delivered message identifier,
    /// answering duplicate `MULTICAST`s (and fencing stale `ACCEPT`s) for
    /// records that have been pruned from the record map.
    dedup: DeliveredFilter,
    /// Total records pruned by compaction at this replica.
    pruned_count: u64,
    /// Number of recoveries in which this replica's delivery progress was
    /// jumped forward over pruned history by an installed checkpoint.
    transfer_recoveries: u64,
    /// The highest watermark this replica's progress was ever jumped to by a
    /// state transfer: deliveries at or below it were installed from a
    /// checkpoint rather than replayed (the linearizability oracle excuses
    /// this pruned history; see `KvHistory::check_excusing`).
    transfer_excused_below: Timestamp,
    /// Number of records examined by the most recent restart re-arm scan
    /// (regression guard: restart work must be proportional to the pending
    /// suffix, not the whole record history).
    last_restart_scan: usize,
    /// Pending records dropped on a `STABLE_PRUNED` notice: globally
    /// delivered history this replica will never apply locally. Tracked per
    /// message (not as a blanket watermark excusal) so the test oracles can
    /// excuse exactly these gaps and nothing else.
    pruned_dropped: BTreeSet<MsgId>,
}

impl WhiteBoxReplica {
    /// Creates a replica from its configuration.
    ///
    /// The first member of every group is the initial leader, and every member
    /// starts synchronised with ballot `(1, initial leader)`.
    ///
    /// # Panics
    ///
    /// Panics if the configured group does not exist in the cluster or does
    /// not contain the replica's own identifier. Use [`Self::try_new`] to
    /// handle misconfigurations as values instead.
    pub fn new(config: ReplicaConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a replica from its configuration, reporting misconfigurations
    /// as a typed [`ConfigError`] instead of aborting — randomized
    /// configuration exploration depends on this surfacing as a finding
    /// rather than a process abort.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownGroup`] if the configured group does not
    /// exist in the cluster and [`ConfigError::NotAMember`] if it does not
    /// contain the replica's own identifier.
    pub fn try_new(config: ReplicaConfig) -> Result<Self, ConfigError> {
        let group = config
            .cluster
            .group(config.group)
            .ok_or(ConfigError::UnknownGroup {
                group: config.group,
            })?;
        if !group.contains(config.id) {
            return Err(ConfigError::NotAMember {
                process: config.id,
                group: config.group,
            });
        }
        let initial_leader = group.initial_leader();
        let initial_ballot = Ballot::new(1, initial_leader);
        let status = if config.id == initial_leader {
            Status::Leader
        } else {
            Status::Follower
        };
        let cur_leader = config.cluster.initial_leaders();
        let quorum_sizes = config
            .cluster
            .groups()
            .iter()
            .map(|g| (g.id(), g.quorum_size()))
            .collect();
        let group_members = group.members().to_vec();
        Ok(WhiteBoxReplica {
            status,
            clock: 0,
            cballot: initial_ballot,
            ballot: initial_ballot,
            cur_leader,
            max_delivered_gts: Timestamp::BOTTOM,
            records: BTreeMap::new(),
            group_members,
            quorum_sizes,
            recovery: None,
            retry_timer_msgs: BTreeMap::new(),
            retry_timer_of: BTreeMap::new(),
            next_retry_timer: 0,
            last_leader_activity: Duration::ZERO,
            delivered_count: 0,
            batch_buffer: Vec::new(),
            batch_timer_armed: false,
            pending_lts: BTreeSet::new(),
            committed_undelivered: BTreeSet::new(),
            stable_watermarks: BTreeMap::new(),
            member_delivered: BTreeMap::new(),
            deliveries_since_stable: 0,
            delivered_index: BTreeSet::new(),
            dedup: DeliveredFilter::new(),
            pruned_count: 0,
            transfer_recoveries: 0,
            transfer_excused_below: Timestamp::BOTTOM,
            last_restart_scan: 0,
            pruned_dropped: BTreeSet::new(),
            config,
        })
    }

    /// Rebuilds the delivery-condition and compaction indexes from scratch.
    /// Called whenever the record map is replaced wholesale (leader
    /// recovery); with compaction enabled the replaced map holds only the
    /// suffix above the watermark, so this costs O(suffix), not O(history).
    fn rebuild_delivery_index(&mut self) {
        self.pending_lts = self
            .records
            .values()
            .filter(|r| r.is_pending())
            .map(|r| (r.local_ts, r.id()))
            .collect();
        self.committed_undelivered = self
            .records
            .values()
            .filter(|r| r.phase == Phase::Committed && !r.delivered)
            .map(|r| (r.global_ts, r.id()))
            .collect();
        self.delivered_index = if self.config.compaction_enabled() {
            self.records
                .values()
                .filter(|r| r.delivered)
                .map(|r| (r.global_ts, r.id()))
                .collect()
        } else {
            // Nothing reads the prune-scan index without compaction; don't
            // pay a second O(history) structure for it.
            BTreeSet::new()
        };
    }

    /// The replica's current role.
    pub fn status(&self) -> Status {
        self.status
    }

    /// The ballot the replica is currently synchronised with.
    pub fn current_ballot(&self) -> Ballot {
        self.cballot
    }

    /// The replica's logical clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of application messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// The phase of a message at this replica, if it has heard of it.
    pub fn phase_of(&self, m: MsgId) -> Option<Phase> {
        self.records.get(&m).map(|r| r.phase)
    }

    /// Every known record's `(phase, delivered)` state, for inspection by
    /// test harnesses and the schedule explorer's failure reports.
    pub fn record_states(&self) -> Vec<(MsgId, Phase, bool)> {
        self.records
            .values()
            .map(|r| (r.id(), r.phase, r.delivered))
            .collect()
    }

    /// Debug rendering of a message's full record at this replica.
    pub fn debug_record(&self, m: MsgId) -> Option<String> {
        self.records.get(&m).map(|r| format!("{r:?}"))
    }

    /// The global timestamp of a message at this replica, if committed.
    pub fn global_ts_of(&self, m: MsgId) -> Option<Timestamp> {
        self.records
            .get(&m)
            .filter(|r| r.phase.is_committed())
            .map(|r| r.global_ts)
    }

    /// The highest global timestamp this replica has delivered.
    pub fn max_delivered_gts(&self) -> Timestamp {
        self.max_delivered_gts
    }

    /// Number of message records currently resident — the quantity bounded by
    /// compaction (in-flight records plus the lag/interval window).
    pub fn live_records(&self) -> usize {
        self.records.len()
    }

    /// This replica's own group's delivery watermark
    /// ([`Timestamp::BOTTOM`] until the first `STABLE` exchange completes).
    pub fn watermark(&self) -> Timestamp {
        self.stable_watermarks
            .get(&self.config.group)
            .copied()
            .unwrap_or(Timestamp::BOTTOM)
    }

    /// Every group's delivery watermark as currently known to this replica.
    pub fn watermarks(&self) -> &BTreeMap<GroupId, Timestamp> {
        &self.stable_watermarks
    }

    /// Total records pruned by compaction at this replica.
    pub fn pruned_count(&self) -> u64 {
        self.pruned_count
    }

    /// Number of recoveries that jumped this replica's delivery progress over
    /// pruned history via an installed checkpoint (state transfer).
    pub fn transfer_recoveries(&self) -> u64 {
        self.transfer_recoveries
    }

    /// The highest watermark a state transfer ever jumped this replica's
    /// delivery progress to. Deliveries at or below it were installed from a
    /// checkpoint, not replayed — test oracles excuse (rather than flag) the
    /// corresponding gap in the replica's apply sequence.
    pub fn transfer_excused_below(&self) -> Timestamp {
        self.transfer_excused_below
    }

    /// Number of records examined by the most recent restart re-arm scan
    /// (the pending suffix, not the full history).
    pub fn last_restart_scan(&self) -> usize {
        self.last_restart_scan
    }

    /// Pending records this replica dropped on a `STABLE_PRUNED` notice —
    /// globally delivered history it will never apply locally. Test oracles
    /// excuse exactly these per-message gaps.
    pub fn pruned_dropped(&self) -> &BTreeSet<MsgId> {
        &self.pruned_dropped
    }

    /// The replica's current ordering-layer checkpoint: ballot, clock,
    /// watermarks, delivery progress and the delivered-message filter.
    /// `app_state` is left empty — the ordering layer does not interpret
    /// application state; embedders (e.g. a key-value store) fill it in.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            group: self.config.group,
            ballot: self.cballot,
            clock: self.clock,
            watermarks: self.stable_watermarks.clone(),
            max_delivered_gts: self.max_delivered_gts,
            delivered_count: self.delivered_count,
            dedup: self.dedup.clone(),
            app_state: Vec::new(),
        }
    }

    fn own_group(&self) -> GroupId {
        self.config.group
    }

    fn own_quorum(&self) -> usize {
        self.quorum_sizes[&self.own_group()]
    }

    /// Whether this replica currently acts as its group's leader.
    pub fn is_leader(&self) -> bool {
        self.status == Status::Leader
    }

    /// Processes of every destination group of `m`.
    fn destination_processes(&self, msg: &AppMessage) -> Vec<ProcessId> {
        let mut out = Vec::new();
        for g in msg.dest.iter() {
            if let Some(gc) = self.config.cluster.group(g) {
                out.extend_from_slice(gc.members());
            }
        }
        out
    }

    /// Current leaders of the destination groups of `m`.
    fn destination_leaders(&self, msg: &AppMessage) -> Vec<ProcessId> {
        msg.dest
            .iter()
            .filter_map(|g| self.cur_leader.get(&g).copied())
            .collect()
    }

    fn record_entry(&mut self, msg: &AppMessage) -> &mut MessageRecord {
        self.records
            .entry(msg.id)
            .or_insert_with(|| MessageRecord::new(msg.clone()))
    }

    // ------------------------------------------------------------------
    // Normal operation
    // ------------------------------------------------------------------

    /// Figure 4, lines 3–9: the leader handles `MULTICAST(m)`. `from` is the
    /// sending process when the request arrived over the wire (`None` for
    /// locally injected submissions and internal re-proposals); it matters
    /// only for pruned records, whose duplicate handling differs between
    /// clients (a completion reply) and retrying peer replicas (a
    /// `STABLE_PRUNED` notice).
    fn handle_multicast(
        &mut self,
        from: Option<ProcessId>,
        msg: AppMessage,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        if !msg.is_addressed_to(self.own_group()) {
            // Not for us; a client mis-addressed the message. Ignore.
            return actions;
        }
        match self.status {
            Status::Recovering => {
                // Figure 4 line 4 precondition: only the leader handles it. The
                // sender will retry; dropping is safe.
                return actions;
            }
            Status::Follower => {
                // Help clients with a stale leader guess: forward to our leader.
                let leader = self.cur_leader.get(&self.own_group()).copied();
                if let Some(leader) = leader {
                    if leader != self.config.id {
                        actions.push(Action::send(leader, WhiteBoxMsg::Multicast { msg }));
                    }
                }
                return actions;
            }
            Status::Leader => {}
        }
        let group = self.own_group();
        if !self.records.contains_key(&msg.id) && self.dedup.contains(msg.id) {
            // A duplicate MULTICAST for a message whose record was delivered
            // everywhere and pruned. Re-proposing it would order (and
            // deliver) it a second time — the delivered filter is what keeps
            // pruning from breaking Integrity. The actual global timestamp
            // was pruned with the record; the reply carries ⊥, which clients
            // treat like any completion.
            if self.config.notify_sender && !self.group_members.contains(&msg.id.sender) {
                actions.push(Action::send(
                    msg.id.sender,
                    WhiteBoxMsg::ClientReply {
                        msg_id: msg.id,
                        group,
                        global_ts: Timestamp::BOTTOM,
                    },
                ));
            }
            // A retry from a *peer replica* (a destination leader pumping
            // §IV message recovery for a record still pending over there)
            // needs more than a client reply: tell it the record is pruned,
            // globally delivered history, so it stops retrying and drops its
            // pending copy (which otherwise wedges its delivery convoy).
            if let Some(peer) = from {
                if peer != msg.id.sender {
                    actions.push(Action::send(
                        peer,
                        WhiteBoxMsg::StablePruned {
                            msg_id: msg.id,
                            watermarks: self.stable_watermarks.clone(),
                        },
                    ));
                }
            }
            return actions;
        }
        let cballot = self.cballot;
        let clock = &mut self.clock;
        let record = self
            .records
            .entry(msg.id)
            .or_insert_with(|| MessageRecord::new(msg.clone()));
        let fresh = record.phase == Phase::Start;
        if fresh {
            // Lines 5–8: assign a fresh local timestamp.
            *clock += 1;
            record.local_ts = Timestamp::new(*clock, group);
            record.phase = Phase::Proposed;
            let pending_entry = (record.local_ts, msg.id);
            self.pending_lts.insert(pending_entry);
        }
        if !fresh && self.records[&msg.id].phase == Phase::Committed {
            // A duplicate MULTICAST for a record that already committed here
            // tells us the sender may have lost our group's reply (or
            // restarted and re-sent its in-flight messages): re-send the
            // reply once delivered. Then fall through to the re-ACCEPT below
            // — another destination leader may still be waiting for our
            // proposal to complete its accept set (§IV, message recovery).
            let record = &self.records[&msg.id];
            if record.delivered
                && self.config.notify_sender
                && !self.group_members.contains(&msg.id.sender)
            {
                actions.push(Action::send(
                    msg.id.sender,
                    WhiteBoxMsg::ClientReply {
                        msg_id: msg.id,
                        group,
                        global_ts: record.global_ts,
                    },
                ));
            }
        }
        if self.config.batching_enabled() {
            if fresh {
                // Buffer the proposal; it goes out with the next batched
                // ACCEPT round (when the buffer fills or the timer fires).
                self.batch_buffer.push(msg.id);
                actions.extend(self.arm_retry_timer(msg.id));
                if self.batch_buffer.len() >= self.config.max_batch {
                    actions.extend(self.flush_batch());
                } else if !self.batch_timer_armed {
                    self.batch_timer_armed = true;
                    actions.push(Action::SetTimer {
                        id: BATCH_TIMER,
                        delay: self.config.batch_delay,
                    });
                }
                return actions;
            }
            if self.batch_buffer.contains(&msg.id) {
                // Duplicate MULTICAST for a still-buffered message: the stored
                // proposal will go out with the batch; nothing to re-send yet.
                return actions;
            }
            // Duplicate MULTICAST for an already-flushed message: fall through
            // and re-send the stored proposal as a standalone ACCEPT, which is
            // what makes message recovery work (§IV "Message recovery").
        }
        // Line 9: send ACCEPT to every process of every destination group.
        // (On a duplicate MULTICAST this re-sends the stored proposal.)
        let record = &self.records[&msg.id];
        let accept = WhiteBoxMsg::Accept {
            msg: record.msg.clone(),
            group,
            ballot: cballot,
            local_ts: record.local_ts,
        };
        let recipients = self.destination_processes(&msg);
        actions.extend(Action::send_to_all(recipients, accept));
        actions.extend(self.arm_retry_timer(msg.id));
        actions
    }

    /// Flushes the batch buffer: one `ACCEPT_BATCH` per destination process,
    /// each carrying only the entries addressed to that process's group (so
    /// batching never violates genuineness).
    fn flush_batch(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        if self.batch_timer_armed {
            self.batch_timer_armed = false;
            actions.push(Action::CancelTimer(BATCH_TIMER));
        }
        if self.batch_buffer.is_empty() {
            return actions;
        }
        let ids = std::mem::take(&mut self.batch_buffer);
        let group = self.own_group();
        let ballot = self.cballot;
        let mut per_recipient: BTreeMap<ProcessId, Vec<AcceptEntry>> = BTreeMap::new();
        for id in ids {
            let Some(record) = self.records.get(&id) else {
                continue;
            };
            let entry = record.accept_entry();
            let recipients = self.destination_processes(&record.msg);
            for to in recipients {
                per_recipient.entry(to).or_default().push(entry.clone());
            }
        }
        for (to, entries) in per_recipient {
            actions.push(Action::send(
                to,
                WhiteBoxMsg::AcceptBatch {
                    group,
                    ballot,
                    entries,
                },
            ));
        }
        actions
    }

    /// Drops any buffered-but-unflushed batch (on losing leadership). The
    /// records stay PROPOSED; they are either recovered from a quorum during
    /// the leader change or re-proposed when the multicast is retried.
    fn clear_batch(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        self.batch_buffer.clear();
        if self.batch_timer_armed {
            self.batch_timer_armed = false;
            vec![Action::CancelTimer(BATCH_TIMER)]
        } else {
            Vec::new()
        }
    }

    /// The batch timer fired: flush whatever has accumulated.
    fn handle_batch_timer(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        self.batch_timer_armed = false;
        if self.status != Status::Leader {
            return self.clear_batch();
        }
        self.flush_batch()
    }

    /// Figure 4, lines 10–16: a destination process handles `ACCEPT`.
    fn handle_accept(
        &mut self,
        msg: AppMessage,
        group: GroupId,
        ballot: Ballot,
        local_ts: Timestamp,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let own_group = self.own_group();
        match self.process_accept(msg, group, ballot, local_ts) {
            None => Vec::new(),
            Some((msg_id, ballots, leaders)) => {
                let ack = WhiteBoxMsg::AcceptAck {
                    msg_id,
                    group: own_group,
                    ballots,
                };
                leaders
                    .into_iter()
                    .map(|to| Action::send(to, ack.clone()))
                    .collect()
            }
        }
    }

    /// A batched `ACCEPT`: record every entry, then coalesce the resulting
    /// acknowledgements into one `ACCEPT_ACK_BATCH` per destination leader —
    /// this is what amortises the ack leg of the ordering round.
    fn handle_accept_batch(
        &mut self,
        group: GroupId,
        ballot: Ballot,
        entries: Vec<AcceptEntry>,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let own_group = self.own_group();
        let mut per_leader: BTreeMap<ProcessId, Vec<(MsgId, BallotVector)>> = BTreeMap::new();
        for entry in entries {
            if let Some((msg_id, ballots, leaders)) =
                self.process_accept(entry.msg, group, ballot, entry.local_ts)
            {
                for to in leaders {
                    per_leader
                        .entry(to)
                        .or_default()
                        .push((msg_id, ballots.clone()));
                }
            }
        }
        per_leader
            .into_iter()
            .map(|(to, entries)| {
                Action::send(
                    to,
                    WhiteBoxMsg::AcceptAckBatch {
                        group: own_group,
                        entries,
                    },
                )
            })
            .collect()
    }

    /// Core of the `ACCEPT` handler. Records the proposal and, when the
    /// message becomes ready to acknowledge, returns the ack's content and
    /// the destination leaders it must go to.
    fn process_accept(
        &mut self,
        msg: AppMessage,
        group: GroupId,
        ballot: Ballot,
        local_ts: Timestamp,
    ) -> Option<(MsgId, BallotVector, Vec<ProcessId>)> {
        if !msg.is_addressed_to(self.own_group()) {
            return None;
        }
        if !self.records.contains_key(&msg.id) && self.dedup.contains(msg.id) {
            // A stale ACCEPT for a message delivered everywhere and pruned:
            // recording it would resurrect a record that can never be
            // re-delivered (and would never be pruned again). Drop it.
            return None;
        }
        // Remember who currently leads the proposing group (useful for retries).
        if let Some(leader) = ballot.leader() {
            if group != self.own_group() {
                self.cur_leader.insert(group, leader);
            }
        }
        let own_group = self.own_group();
        let cballot = self.cballot;
        let speculative = self.config.speculative_clock_update;
        let (all_accepts, own_accept, implied_gts) = {
            let record = self.record_entry(&msg);
            record.record_accept(group, ballot, local_ts);
            (
                record.has_all_accepts(),
                record.accepts.get(&own_group).copied(),
                record.implied_global_ts(),
            )
        };

        // Line 11 precondition: we must not be recovering, and the proposal of
        // our own group must have been made in the ballot we are synchronised
        // with. Proposals from remote groups are deliberately *not* checked
        // against any ballot (§IV, "Discussion of normal operation").
        if !all_accepts {
            return None;
        }
        if self.status == Status::Recovering {
            return None;
        }
        let (own_ballot, own_lts) = own_accept?;
        if own_ballot != cballot {
            return None;
        }
        // Lines 12–14 (state update is guarded; the acknowledgement is not).
        let implied_gts = implied_gts.expect("all accepts present implies a global timestamp");
        let record = self.records.get_mut(&msg.id).expect("record just created");
        if matches!(record.phase, Phase::Start | Phase::Proposed) {
            let old_pending = (record.local_ts, msg.id);
            record.phase = Phase::Accepted;
            record.local_ts = own_lts;
            self.pending_lts.remove(&old_pending);
            self.pending_lts.insert((own_lts, msg.id));
            if speculative {
                // The speculative clock update: advance the clock past the
                // *future* global timestamp before it is known to be durable.
                self.clock = self.clock.max(implied_gts.time());
            }
        }
        // Lines 15–16: acknowledge to the leader of every destination group.
        let record = &self.records[&msg.id];
        let vector = ballot_vector(&record.accepts);
        let leaders = record
            .accepts
            .values()
            .filter_map(|(b, _)| b.leader())
            .collect();
        Some((msg.id, vector, leaders))
    }

    /// Figure 4, lines 17–23: the leader handles `ACCEPT_ACK`s and commits.
    fn handle_accept_ack(
        &mut self,
        from: ProcessId,
        msg_id: MsgId,
        group: GroupId,
        ballots: BallotVector,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        if self.process_accept_ack(from, msg_id, group, ballots) {
            actions.extend(self.cancel_retry_timer(msg_id));
            // Line 21: deliver every committed message that is no longer
            // blocked.
            actions.extend(self.try_deliver());
        }
        actions
    }

    /// A batched `ACCEPT_ACK`: record every entry and run the delivery rule
    /// *once* for the whole batch, so a single incoming message can commit —
    /// and deliver — many messages (pipelined delivery).
    fn handle_accept_ack_batch(
        &mut self,
        from: ProcessId,
        group: GroupId,
        entries: Vec<(MsgId, BallotVector)>,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        let mut committed_any = false;
        for (msg_id, ballots) in entries {
            if self.process_accept_ack(from, msg_id, group, ballots) {
                committed_any = true;
                actions.extend(self.cancel_retry_timer(msg_id));
            }
        }
        if committed_any {
            actions.extend(self.try_deliver());
        }
        actions
    }

    /// Core of the `ACCEPT_ACK` handler (Figure 4, lines 17–20). Returns
    /// whether the message newly committed.
    fn process_accept_ack(
        &mut self,
        from: ProcessId,
        msg_id: MsgId,
        group: GroupId,
        ballots: BallotVector,
    ) -> bool {
        // Line 18 precondition.
        if self.status != Status::Leader {
            return false;
        }
        if ballots.get(&self.own_group()) != Some(&self.cballot) {
            return false;
        }
        let own_group = self.own_group();
        let own_id = self.config.id;
        let quorum_sizes = self.quorum_sizes.clone();
        let Some(record) = self.records.get_mut(&msg_id) else {
            // We have not proposed this message yet; the ack will be re-sent
            // when the proposal eventually reaches the sender again.
            return false;
        };
        if record.phase == Phase::Committed {
            return false;
        }
        record.record_ack(ballots, group, from);
        // Line 17: a quorum in every destination group, acknowledging exactly
        // the ballots of the ACCEPTs we hold (`quorum_acked` checks the match
        // per candidate vector, so stale pre-leader-change ack quorums cannot
        // shadow the live one).
        if record
            .quorum_acked(&quorum_sizes, Some((own_group, own_id)))
            .is_none()
        {
            return false;
        }
        // Lines 19–20: commit.
        let gts = record
            .implied_global_ts()
            .expect("accepts complete for committed message");
        record.global_ts = gts;
        record.phase = Phase::Committed;
        self.pending_lts.remove(&(record.local_ts, msg_id));
        self.committed_undelivered.insert((gts, msg_id));
        true
    }

    /// Figure 4, line 21 (and line 66 after recovery): deliver committed
    /// messages in global-timestamp order once no pending message can receive
    /// a smaller global timestamp.
    fn try_deliver(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        if self.status != Status::Leader {
            return actions;
        }
        // The smallest local timestamp of any message that is still PROPOSED or
        // ACCEPTED; committed messages with a global timestamp above it must
        // wait (the pending message might end up ordered before them). Both
        // bounds come from the incrementally maintained indexes, so a commit
        // costs O(log n) rather than a scan of every record.
        let min_pending_lts = self.pending_lts.first().map(|(ts, _)| *ts);
        let mut deliverable: Vec<DeliverEntry> = Vec::new();
        while let Some(&(gts, id)) = self.committed_undelivered.first() {
            if let Some(pending) = min_pending_lts {
                if pending <= gts {
                    break;
                }
            }
            self.committed_undelivered.pop_first();
            let record = self.records.get_mut(&id).expect("candidate exists");
            record.delivered = true;
            deliverable.push(DeliverEntry {
                msg: record.msg.clone(),
                local_ts: record.local_ts,
                global_ts: gts,
            });
        }
        if deliverable.is_empty() {
            return actions;
        }
        // Line 23: send DELIVER to the whole group, ourselves included, so
        // that the actual delivery to the application happens uniformly in
        // the DELIVER handler. With batching enabled, several deliveries
        // ready at once travel in a single DELIVER_BATCH per member.
        if self.config.batching_enabled() && deliverable.len() > 1 {
            let batch = WhiteBoxMsg::DeliverBatch {
                ballot: self.cballot,
                entries: deliverable,
            };
            actions.extend(Action::send_to_all(
                self.group_members.iter().copied(),
                batch,
            ));
        } else {
            for entry in deliverable {
                let deliver = WhiteBoxMsg::Deliver {
                    msg: entry.msg,
                    ballot: self.cballot,
                    local_ts: entry.local_ts,
                    global_ts: entry.global_ts,
                };
                actions.extend(Action::send_to_all(
                    self.group_members.iter().copied(),
                    deliver,
                ));
            }
        }
        actions
    }

    /// Figure 4, lines 24–31: every group member handles `DELIVER`.
    fn handle_deliver(
        &mut self,
        msg: AppMessage,
        ballot: Ballot,
        local_ts: Timestamp,
        global_ts: Timestamp,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        // Line 25 precondition: duplicate DELIVERs (possible after leader
        // changes) are filtered via max_delivered_gts.
        if self.status == Status::Recovering {
            return actions;
        }
        if self.cballot != ballot {
            return actions;
        }
        if self.max_delivered_gts >= global_ts {
            // A DELIVER at or below our delivery progress: we either already
            // delivered m, or a checkpoint jumped us over it. Do not deliver
            // again — but *install* the decision on a resident record (the
            // ballot check above makes it the current leader's). This is what
            // resolves a record left pending here when its original DELIVER
            // was lost: without the install it would sit pending forever,
            // and one eternally pending record blocks the delivery convoy
            // (at a leader) and caps the stable watermark. It also restores
            // the `delivered` flag — and with it prune eligibility — after a
            // leader change re-broadcast resets it.
            let msg_id = msg.id;
            if let Some(record) = self.records.get_mut(&msg.id) {
                let old_local = record.local_ts;
                let old_global = record.global_ts;
                record.phase = Phase::Committed;
                record.local_ts = local_ts;
                record.global_ts = global_ts;
                record.delivered = true;
                self.pending_lts.remove(&(old_local, msg_id));
                self.committed_undelivered.remove(&(old_global, msg_id));
                self.committed_undelivered.remove(&(global_ts, msg_id));
                self.clock = self.clock.max(global_ts.time());
                self.dedup.insert(msg_id);
                if self.config.compaction_enabled() {
                    self.delivered_index.insert((global_ts, msg_id));
                }
                actions.extend(self.cancel_retry_timer(msg_id));
            }
            return actions;
        }
        let msg_id = msg.id;
        let sender = msg.id.sender;
        let record = self.record_entry(&msg);
        let old_local_ts = record.local_ts;
        let old_global_ts = record.global_ts;
        // Lines 26–30.
        record.phase = Phase::Committed;
        record.local_ts = local_ts;
        record.global_ts = global_ts;
        record.delivered = true;
        self.pending_lts.remove(&(old_local_ts, msg_id));
        self.committed_undelivered.remove(&(old_global_ts, msg_id));
        self.committed_undelivered.remove(&(global_ts, msg_id));
        self.clock = self.clock.max(global_ts.time());
        self.max_delivered_gts = global_ts;
        self.delivered_count += 1;
        self.dedup.insert(msg_id);
        if self.config.compaction_enabled() {
            self.delivered_index.insert((global_ts, msg_id));
        }
        // Line 31: deliver to the application.
        actions.push(Action::Deliver(DeliveredMessage::with_timestamp(
            msg, global_ts,
        )));
        actions.extend(self.note_delivery());
        if self.config.notify_sender && !self.group_members.contains(&sender) {
            actions.push(Action::send(
                sender,
                WhiteBoxMsg::ClientReply {
                    msg_id,
                    group: self.own_group(),
                    global_ts,
                },
            ));
        }
        actions
    }

    /// A batched `DELIVER`: handle the entries in order (they are sorted by
    /// increasing global timestamp, so the `max_delivered_gts` duplicate
    /// filter of the per-message handler keeps working entry by entry).
    fn handle_deliver_batch(
        &mut self,
        ballot: Ballot,
        entries: Vec<DeliverEntry>,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        for entry in entries {
            actions.extend(self.handle_deliver(entry.msg, ballot, entry.local_ts, entry.global_ts));
        }
        actions
    }

    // ------------------------------------------------------------------
    // Retry (message recovery)
    // ------------------------------------------------------------------

    fn arm_retry_timer(&mut self, msg_id: MsgId) -> Vec<Action<WhiteBoxMsg>> {
        if self.config.retry_timeout.is_zero() || self.retry_timer_of.contains_key(&msg_id) {
            return Vec::new();
        }
        let timer = TimerId(RETRY_TIMER_BASE + self.next_retry_timer);
        self.next_retry_timer += 1;
        self.retry_timer_msgs.insert(timer, msg_id);
        self.retry_timer_of.insert(msg_id, timer);
        vec![Action::SetTimer {
            id: timer,
            delay: self.config.retry_timeout,
        }]
    }

    fn cancel_retry_timer(&mut self, msg_id: MsgId) -> Vec<Action<WhiteBoxMsg>> {
        if let Some(timer) = self.retry_timer_of.remove(&msg_id) {
            self.retry_timer_msgs.remove(&timer);
            vec![Action::CancelTimer(timer)]
        } else {
            Vec::new()
        }
    }

    /// Figure 4, lines 32–34: re-send `MULTICAST(m)` to the destination
    /// leaders when a proposed/accepted message is stuck.
    fn handle_retry_timer(&mut self, timer: TimerId) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        let Some(msg_id) = self.retry_timer_msgs.get(&timer).copied() else {
            return actions;
        };
        let Some(record) = self.records.get(&msg_id) else {
            // The record vanished wholesale — a leader recovery replaced the
            // record map and dropped this proposed-only message. Unmap the
            // timer: leaving the stale mapping behind would block
            // `arm_retry_timer` forever when the message is re-proposed,
            // leaving it pending with no retry pump — and one eternally
            // pending record blocks delivery of every later committed one
            // (found by the schedule explorer; see `tests/regressions/`).
            self.retry_timer_msgs.remove(&timer);
            self.retry_timer_of.remove(&msg_id);
            return actions;
        };
        if !record.is_pending() {
            self.retry_timer_msgs.remove(&timer);
            self.retry_timer_of.remove(&msg_id);
            return actions;
        }
        let multicast = WhiteBoxMsg::Multicast {
            msg: record.msg.clone(),
        };
        for leader in self.destination_leaders(&record.msg) {
            actions.push(Action::send(leader, multicast.clone()));
        }
        actions.push(Action::SetTimer {
            id: timer,
            delay: self.config.retry_timeout,
        });
        actions
    }

    // ------------------------------------------------------------------
    // Compaction: the STABLE exchange, watermarks and pruning
    // ------------------------------------------------------------------

    /// Called after every local delivery: counts towards the next `STABLE`
    /// round. Every `compaction_interval` deliveries a follower reports its
    /// progress to the leader; the leader folds its own progress in and
    /// recomputes the group watermark.
    fn note_delivery(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        if !self.config.compaction_enabled() {
            return Vec::new();
        }
        self.deliveries_since_stable += 1;
        if self.deliveries_since_stable < self.config.compaction_interval {
            return Vec::new();
        }
        self.deliveries_since_stable = 0;
        match self.status {
            Status::Leader => self.recompute_watermark(),
            Status::Follower => {
                let Some(leader) = self.cur_leader.get(&self.own_group()).copied() else {
                    return Vec::new();
                };
                if leader == self.config.id {
                    return Vec::new();
                }
                vec![Action::send(
                    leader,
                    WhiteBoxMsg::StableReport {
                        group: self.own_group(),
                        delivered_gts: self.max_delivered_gts,
                    },
                )]
            }
            // A recovering replica reports nothing; the next interval after
            // the recovery completes will.
            Status::Recovering => Vec::new(),
        }
    }

    /// Leader handler for `STABLE_REPORT`: fold in the member's progress and
    /// recompute the group watermark.
    fn handle_stable_report(
        &mut self,
        from: ProcessId,
        group: GroupId,
        delivered_gts: Timestamp,
    ) -> Vec<Action<WhiteBoxMsg>> {
        if self.status != Status::Leader
            || group != self.own_group()
            || !self.group_members.contains(&from)
        {
            return Vec::new();
        }
        let entry = self
            .member_delivered
            .entry(from)
            .or_insert(Timestamp::BOTTOM);
        if delivered_gts > *entry {
            *entry = delivered_gts;
        }
        self.recompute_watermark()
    }

    /// Recomputes the own-group watermark as the *quorum-th highest* delivery
    /// progress over the group members: a quorum has delivered everything at
    /// or below it (delivery is in timestamp order, so progress is
    /// prefix-complete). Waiting for every member instead would let a single
    /// crashed replica stall compaction forever; a minority member below the
    /// watermark catches up via checkpoint state transfer, and because any
    /// recovery quorum intersects the watermark quorum, everything pruned
    /// under the watermark is always known (as a committed record or through
    /// the delivered filter) to any future leader. On an advance, prunes and
    /// disseminates the updated watermark map.
    fn recompute_watermark(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        let own_id = self.config.id;
        self.member_delivered.insert(own_id, self.max_delivered_gts);
        let mut progress: Vec<Timestamp> = self
            .group_members
            .iter()
            .map(|m| {
                self.member_delivered
                    .get(m)
                    .copied()
                    .unwrap_or(Timestamp::BOTTOM)
            })
            .collect();
        progress.sort_unstable_by(|a, b| b.cmp(a));
        let watermark = progress[self.own_quorum() - 1];
        let own_group = self.own_group();
        let current = self
            .stable_watermarks
            .get(&own_group)
            .copied()
            .unwrap_or(Timestamp::BOTTOM);
        if watermark <= current {
            return Vec::new();
        }
        self.stable_watermarks.insert(own_group, watermark);
        self.prune_records();
        self.broadcast_watermarks()
    }

    /// Sends the current watermark map to the group's followers (who prune
    /// with it) and to the other groups' leaders (cross-group dissemination;
    /// multi-group records need every destination group's watermark).
    fn broadcast_watermarks(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        let advance = WhiteBoxMsg::StableAdvance {
            watermarks: self.stable_watermarks.clone(),
        };
        let mut actions = Vec::new();
        for member in &self.group_members {
            if *member != self.config.id {
                actions.push(Action::send(*member, advance.clone()));
            }
        }
        let own_group = self.own_group();
        for (group, leader) in &self.cur_leader {
            if *group != own_group && *leader != self.config.id {
                actions.push(Action::send(*leader, advance.clone()));
            }
        }
        actions
    }

    /// Merges a received watermark map (pointwise maximum — watermarks only
    /// advance) and prunes. A leader that learnt something new re-broadcasts,
    /// so cross-group knowledge reaches its followers; the merge is monotone
    /// over a finite lattice, so re-broadcasts terminate.
    fn handle_stable_advance(
        &mut self,
        watermarks: BTreeMap<GroupId, Timestamp>,
    ) -> Vec<Action<WhiteBoxMsg>> {
        if !wbam_types::checkpoint::merge_watermarks(&mut self.stable_watermarks, &watermarks) {
            return Vec::new();
        }
        self.prune_records();
        if self.status == Status::Leader {
            self.broadcast_watermarks()
        } else {
            Vec::new()
        }
    }

    /// A peer answered our retry with "that record is pruned, globally
    /// delivered history" (see [`WhiteBoxMsg::StablePruned`]). Merge its
    /// watermark knowledge and resolve our pending copy: the record's global
    /// timestamp was fixed by the quorum that delivered it and is covered by
    /// every destination group's watermark, so our copy can never commit to
    /// anything new — drop it as installed (excused) history and let the
    /// delivery convoy move again.
    fn handle_stable_pruned(
        &mut self,
        msg_id: MsgId,
        watermarks: BTreeMap<GroupId, Timestamp>,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = self.handle_stable_advance(watermarks);
        let is_pending = self
            .records
            .get(&msg_id)
            .map(|r| r.is_pending())
            .unwrap_or(false);
        if !is_pending {
            return actions;
        }
        if let Some(record) = self.records.remove(&msg_id) {
            self.pending_lts.remove(&(record.local_ts, msg_id));
            self.committed_undelivered
                .remove(&(record.global_ts, msg_id));
        }
        self.dedup.insert(msg_id);
        self.pruned_dropped.insert(msg_id);
        actions.extend(self.cancel_retry_timer(msg_id));
        actions.extend(self.try_deliver());
        actions
    }

    /// Prunes delivered records covered by the watermark of *every* one of
    /// their destination groups, keeping the most recent `compaction_lag`
    /// delivered records as a duplicate-service window. The scan walks the
    /// delivered index in global-timestamp order and stops at the first
    /// record some destination group's watermark does not yet cover, so each
    /// call costs O(pruned), not O(resident).
    fn prune_records(&mut self) {
        if !self.config.compaction_enabled() {
            return;
        }
        while self.delivered_index.len() > self.config.compaction_lag {
            let &(gts, id) = self.delivered_index.first().expect("len checked above");
            let covered = match self.records.get(&id) {
                // The record vanished in a wholesale state replacement; drop
                // the stale index entry.
                None => true,
                Some(record) => record.msg.dest.iter().all(|g| {
                    self.stable_watermarks
                        .get(&g)
                        .map(|w| gts <= *w)
                        .unwrap_or(false)
                }),
            };
            if !covered {
                break;
            }
            self.delivered_index.pop_first();
            if self.records.remove(&id).is_some() {
                self.pruned_count += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Leader recovery
    // ------------------------------------------------------------------

    /// Figure 4, lines 35–36: start establishing a new ballot led by us.
    fn start_recovery(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        if self.status == Status::Leader {
            return Vec::new();
        }
        let new_ballot = self.ballot.next_for(self.config.id);
        self.recovery = Some(RecoveryState {
            ballot: new_ballot,
            acks: BTreeMap::new(),
            installed: false,
            state_acks: BTreeSet::new(),
        });
        Action::send_to_all(
            self.group_members.iter().copied(),
            WhiteBoxMsg::NewLeader { ballot: new_ballot },
        )
    }

    /// Figure 4, lines 37–41: vote for a prospective leader.
    fn handle_new_leader(
        &mut self,
        now: Duration,
        from: ProcessId,
        ballot: Ballot,
    ) -> Vec<Action<WhiteBoxMsg>> {
        if ballot <= self.ballot {
            return Vec::new();
        }
        self.status = Status::Recovering;
        self.ballot = ballot;
        // The campaign counts as leader activity; give the prospective leader
        // one patience window to finish before we consider campaigning.
        self.last_leader_activity = now;
        if let Some(leader) = ballot.leader() {
            self.cur_leader.insert(self.own_group(), leader);
        }
        // Losing leadership drops any unflushed batch: its records stay
        // PROPOSED and are reported in the snapshot below, so the new leader
        // (or a retrying multicaster) re-proposes them.
        let mut actions = self.clear_batch();
        // A replica that was the leader until this moment has no election
        // timer running (leaders keep a heartbeat timer instead, and it dies
        // with the demotion). Without (re)arming one here, a deposed leader
        // whose NEW_STATE gets lost is unrescuable — it sits in `Recovering`
        // with no timer at all while the group's usable quorum shrinks by
        // one (found by the schedule explorer; see `tests/regressions/`).
        if self.config.auto_election_enabled() {
            actions.push(Action::SetTimer {
                id: ELECTION_TIMER,
                delay: self.config.election_timeout,
            });
        }
        let snapshot = self.snapshot();
        actions.push(Action::send(
            from,
            WhiteBoxMsg::NewLeaderAck {
                ballot,
                cballot: self.cballot,
                checkpoint: self.checkpoint(),
                snapshot,
            },
        ));
        actions
    }

    fn snapshot(&self) -> StateSnapshot {
        let records = self
            .records
            .values()
            .filter(|r| r.phase != Phase::Start)
            .map(|r| (r.id(), r.snapshot()))
            .collect();
        StateSnapshot { records }
    }

    /// Figure 4, lines 42–56: the prospective leader gathers votes and computes
    /// its initial state.
    fn handle_new_leader_ack(
        &mut self,
        from: ProcessId,
        ballot: Ballot,
        cballot: Ballot,
        checkpoint: Checkpoint,
        snapshot: StateSnapshot,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        if self.status != Status::Recovering || self.ballot != ballot {
            return actions;
        }
        let own_quorum = self.own_quorum();
        let Some(recovery) = self.recovery.as_mut() else {
            return actions;
        };
        if recovery.ballot != ballot || recovery.installed {
            return actions;
        }
        recovery.acks.insert(
            from,
            NewLeaderAckData {
                cballot,
                checkpoint,
                snapshot,
            },
        );
        if recovery.acks.len() < own_quorum {
            return actions;
        }

        // Lines 44–55: compute the initial state of the new ballot.
        let max_cballot = recovery
            .acks
            .values()
            .map(|a| a.cballot)
            .max()
            .unwrap_or(Ballot::BOTTOM);
        let mut new_records: BTreeMap<MsgId, MessageRecord> = BTreeMap::new();
        for data in recovery.acks.values() {
            for (id, snap) in &data.snapshot.records {
                match snap.phase {
                    // Line 47: committed anywhere → committed, with its timestamps.
                    Phase::Committed => {
                        let mut rec = MessageRecord::from_snapshot(snap.clone());
                        rec.delivered = false;
                        new_records.insert(*id, rec);
                    }
                    // Line 51: accepted at a process of the maximal cballot →
                    // accepted, with its local timestamp (unless some other
                    // process reported it committed).
                    Phase::Accepted if data.cballot == max_cballot => {
                        new_records
                            .entry(*id)
                            .and_modify(|existing| {
                                if existing.phase != Phase::Committed {
                                    existing.phase = Phase::Accepted;
                                    existing.local_ts = snap.local_ts;
                                }
                            })
                            .or_insert_with(|| {
                                let mut rec = MessageRecord::from_snapshot(snap.clone());
                                rec.phase = Phase::Accepted;
                                rec.global_ts = Timestamp::BOTTOM;
                                rec.delivered = false;
                                rec
                            });
                    }
                    // Proposed-only messages did not reach a quorum in any
                    // ballot and are dropped; the multicaster (or a remote
                    // leader) will re-send MULTICAST for them.
                    _ => {}
                }
            }
        }
        // Line 54: recover the clock.
        let new_clock = recovery
            .acks
            .values()
            .map(|a| a.checkpoint.clock)
            .max()
            .unwrap_or(0)
            .max(self.clock);
        // Compaction state is recovered alongside: watermarks advance to the
        // pointwise maximum over the quorum (each reported watermark was
        // sound when computed, and watermarks only advance), the delivered
        // filters union (anything any member knows delivered is delivered),
        // and our own delivery progress jumps to the maximal watermark — the
        // history below it is pruned at a quorum, so it can never be
        // re-delivered to us; it is installed, not missing.
        let mut merged_dedup = self.dedup.clone();
        let mut merged_watermarks: BTreeMap<GroupId, Timestamp> = self.stable_watermarks.clone();
        for data in recovery.acks.values() {
            merged_dedup.merge(&data.checkpoint.dedup);
            wbam_types::checkpoint::merge_watermarks(
                &mut merged_watermarks,
                &data.checkpoint.watermarks,
            );
        }
        let merged_own_watermark = merged_watermarks
            .get(&self.config.group)
            .copied()
            .unwrap_or(Timestamp::BOTTOM);
        // Reconcile the merged records with the merged compaction state:
        //
        // * A record the delivered filter knows but no snapshot reports
        //   committed was delivered everywhere and then pruned at every
        //   member that had it committed — which can only happen under the
        //   watermark, so the watermark jump below covers it. Re-proposing it
        //   would deliver it twice; drop it.
        // * A committed record at or below the merged watermark needs no
        //   line-66 re-broadcast: a quorum delivered it (that is what the
        //   watermark asserts) and any straggler is jumped over it by the
        //   checkpoint in `NEW_STATE`. Marking it delivered keeps it pruning-
        //   eligible instead of re-broadcasting history after every leader
        //   change.
        // * Everything above the watermark keeps the paper's behaviour:
        //   `delivered = false`, re-delivered by line 66, duplicates filtered
        //   at the receivers through `max_delivered_gts`.
        new_records.retain(|id, rec| {
            if rec.phase == Phase::Committed {
                rec.delivered = rec.global_ts <= merged_own_watermark;
                true
            } else {
                !merged_dedup.contains(*id)
            }
        });
        let new_ballot = recovery.ballot;
        recovery.installed = true;
        recovery.state_acks.insert(self.config.id);

        self.records = new_records;
        self.dedup = merged_dedup;
        self.stable_watermarks = merged_watermarks;
        let own_watermark = self.watermark();
        if self.max_delivered_gts < own_watermark {
            self.transfer_recoveries += 1;
            self.transfer_excused_below = self.transfer_excused_below.max(own_watermark);
            self.max_delivered_gts = own_watermark;
        }
        self.rebuild_delivery_index();
        self.prune_records();
        self.clock = new_clock;
        // Line 55: cballot ← b.
        self.cballot = new_ballot;
        // A fresh leadership starts member progress tracking from scratch;
        // members re-report within one compaction interval.
        self.member_delivered.clear();

        // Line 56: install the state at the followers — as checkpoint +
        // suffix, which doubles as catch-up state transfer for any member
        // whose progress lies below the recovered watermark.
        let snapshot = self.snapshot();
        let checkpoint = self.checkpoint();
        for member in self.group_members.clone() {
            if member == self.config.id {
                continue;
            }
            actions.push(Action::send(
                member,
                WhiteBoxMsg::NewState {
                    ballot: new_ballot,
                    checkpoint: checkpoint.clone(),
                    snapshot: snapshot.clone(),
                },
            ));
        }
        // A singleton group needs no follower acknowledgements.
        actions.extend(self.maybe_finish_recovery());
        actions
    }

    /// Figure 4, lines 57–62: a follower installs the new leader's state.
    ///
    /// Beyond the paper's precondition (`Recovering` in exactly this ballot),
    /// a `NEW_STATE` for a *strictly higher* ballot is accepted from any
    /// status: it collapses joining the ballot and installing its state into
    /// one step, which is how a replica that missed the whole `NEW_LEADER`
    /// exchange (it was partitioned away, or is itself a stale leader) is
    /// reconciled. This is safe for the same reason the two-step path is —
    /// the sender computed the state from a quorum of the higher ballot,
    /// whose snapshots cover everything any lower ballot could have
    /// committed.
    fn handle_new_state(
        &mut self,
        now: Duration,
        from: ProcessId,
        ballot: Ballot,
        checkpoint: Checkpoint,
        snapshot: StateSnapshot,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let fresh_join = ballot > self.ballot;
        if !fresh_join && (self.status != Status::Recovering || self.ballot != ballot) {
            return Vec::new();
        }
        self.status = Status::Follower;
        self.ballot = ballot;
        self.cballot = ballot;
        self.last_leader_activity = now;
        self.clock = checkpoint.clock;
        // Install the leader's checkpoint: merge its watermark knowledge and
        // delivered filter, and — the state-transfer case — if our own
        // delivery progress lies below the recovered watermark, jump it
        // forward: the history between is pruned (delivered at a quorum and
        // discarded), arrives as installed checkpoint state rather than
        // per-message replay, and is excused (not missing) to the oracles.
        wbam_types::checkpoint::merge_watermarks(
            &mut self.stable_watermarks,
            &checkpoint.watermarks,
        );
        self.dedup.merge(&checkpoint.dedup);
        let own_watermark = self.watermark();
        if self.max_delivered_gts < own_watermark {
            self.transfer_recoveries += 1;
            self.transfer_excused_below = self.transfer_excused_below.max(own_watermark);
            self.max_delivered_gts = own_watermark;
        }
        self.records = snapshot
            .records
            .into_iter()
            .map(|(id, snap)| {
                let mut rec = MessageRecord::from_snapshot(snap);
                rec.delivered =
                    rec.phase == Phase::Committed && rec.global_ts <= self.max_delivered_gts;
                (id, rec)
            })
            .collect();
        self.rebuild_delivery_index();
        self.prune_records();
        if let Some(leader) = ballot.leader() {
            self.cur_leader.insert(self.own_group(), leader);
        }
        self.recovery = None;
        let mut actions = Vec::new();
        // Same reasoning as in `handle_new_leader`: this may be the moment a
        // (possibly stale) leader is demoted to follower, and followers must
        // always have a live election timer.
        if self.config.auto_election_enabled() {
            actions.push(Action::SetTimer {
                id: ELECTION_TIMER,
                delay: self.config.election_timeout,
            });
        }
        actions.push(Action::send(from, WhiteBoxMsg::NewStateAck { ballot }));
        actions
    }

    /// Figure 4, lines 63–68: the new leader finishes recovery once a quorum is
    /// in sync with its state.
    fn handle_new_state_ack(
        &mut self,
        from: ProcessId,
        ballot: Ballot,
    ) -> Vec<Action<WhiteBoxMsg>> {
        if self.status != Status::Recovering || self.ballot != ballot {
            return Vec::new();
        }
        let Some(recovery) = self.recovery.as_mut() else {
            return Vec::new();
        };
        if !recovery.installed || recovery.ballot != ballot {
            return Vec::new();
        }
        recovery.state_acks.insert(from);
        self.maybe_finish_recovery()
    }

    fn maybe_finish_recovery(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        let own_quorum = self.own_quorum();
        let ready = self
            .recovery
            .as_ref()
            .map(|r| r.installed && r.state_acks.len() >= own_quorum)
            .unwrap_or(false);
        if !ready {
            return Vec::new();
        }
        self.recovery = None;
        self.status = Status::Leader;
        let mut actions = Vec::new();
        // Line 66: re-deliver every committed message that is not blocked by an
        // accepted one. Followers discard duplicates via max_delivered_gts.
        actions.extend(self.try_deliver());
        // Resume processing of accepted-but-uncommitted messages by re-sending
        // MULTICAST to all destination leaders (§IV, "Message recovery").
        // The pending set is read off the incrementally maintained
        // delivery-condition index, not a scan of the record map, so this
        // costs O(pending suffix) even with a long resident history.
        let pending: Vec<MsgId> = self.pending_lts.iter().map(|(_, id)| *id).collect();
        for id in pending {
            let record = &self.records[&id];
            let multicast = WhiteBoxMsg::Multicast {
                msg: record.msg.clone(),
            };
            for leader in self.destination_leaders(&record.msg) {
                actions.push(Action::send(leader, multicast.clone()));
            }
            // Make sure we also propose it ourselves (we are a destination
            // leader too) and keep retrying until it commits.
            actions.extend(self.handle_multicast(None, self.records[&id].msg.clone()));
        }
        // With batching enabled the re-proposals above were buffered; push the
        // in-flight batch out immediately rather than waiting for the timer,
        // so recovery does not add a batch delay to every recovered message.
        actions.extend(self.flush_batch());
        // Announce leadership and restart heartbeats.
        if self.config.auto_election_enabled() {
            actions.push(Action::SetTimer {
                id: HEARTBEAT_TIMER,
                delay: self.config.heartbeat_interval,
            });
            for member in &self.group_members {
                if *member != self.config.id {
                    actions.push(Action::send(
                        *member,
                        WhiteBoxMsg::Heartbeat {
                            ballot: self.cballot,
                        },
                    ));
                }
            }
        }
        actions
    }

    // ------------------------------------------------------------------
    // Leader election oracle (heartbeats + timeouts)
    // ------------------------------------------------------------------

    fn election_rank(&self) -> u32 {
        self.group_members
            .iter()
            .position(|p| *p == self.config.id)
            .unwrap_or(0) as u32
    }

    fn handle_heartbeat(&mut self, now: Duration, ballot: Ballot) -> Vec<Action<WhiteBoxMsg>> {
        // Liveness is judged against the highest ballot we have *joined*
        // (`self.ballot`), not the one we last synchronised with (`cballot`).
        // After joining ballot b' a replica waits for b's NEW_STATE; if the
        // previous leader (ballot b < b') is still around, its heartbeats
        // must not keep resetting the election timer — with the b' handshake
        // messages lost, the whole group would otherwise sit in `Recovering`
        // forever while the stale leader's heartbeats pacify everyone (a
        // deadlock found by the schedule explorer; see `tests/regressions/`).
        if self.status == Status::Recovering {
            // Heartbeats while we are `Recovering` mean a leader is active
            // although we never finished synchronising — either we are
            // campaigning a ballot the others never joined, or we joined the
            // heartbeat's ballot and its NEW_STATE got lost. Either way the
            // heartbeat must *not* pacify our election timer: letting it
            // expire re-campaigns with a higher ballot, which re-synchronises
            // us through the normal handshake. (A `Recovering` replica cannot
            // acknowledge proposals, so staying wedged here would silently
            // shrink the group's usable quorum.)
        } else if ballot == self.ballot {
            self.last_leader_activity = now;
            if let Some(leader) = ballot.leader() {
                self.cur_leader.insert(self.own_group(), leader);
            }
        } else if ballot > self.ballot {
            // A heartbeat for a ballot we never even *joined*: we missed the
            // whole NEW_LEADER/NEW_STATE exchange (partitioned away while the
            // ballot was established). Our cballot is stale, so we cannot
            // acknowledge anything this leader proposes — being pacified here
            // would park us as a permanently useless group member, silently
            // shrinking the usable quorum (with `f` other members gone, the
            // whole group wedges; found by the schedule explorer, see
            // `tests/regressions/`). Remember the leader for forwarding, but
            // let our election timer expire: the re-campaign resynchronises
            // us through the normal handshake.
            if let Some(leader) = ballot.leader() {
                self.cur_leader.insert(self.own_group(), leader);
            }
        } else if self.status == Status::Leader && ballot < self.cballot {
            // A heartbeat from a *lower* ballot means another member still
            // believes it leads an older ballot — possible after a partition
            // in which both sides completed recoveries with disjoint-looking
            // quorums that only overlapped in a since-crashed process. We
            // hold the authoritative state of the higher ballot; re-send it
            // so the stale leader rejoins (see `handle_new_state`'s
            // higher-ballot acceptance). Without this repair the two leaders
            // ignore each other forever and the group is wedged (found by
            // the schedule explorer; see `tests/regressions/`).
            if let Some(leader) = ballot.leader() {
                if leader != self.config.id {
                    return vec![Action::send(
                        leader,
                        WhiteBoxMsg::NewState {
                            ballot: self.cballot,
                            checkpoint: self.checkpoint(),
                            snapshot: self.snapshot(),
                        },
                    )];
                }
            }
        }
        Vec::new()
    }

    fn handle_heartbeat_timer(&mut self) -> Vec<Action<WhiteBoxMsg>> {
        if !self.config.auto_election_enabled() || self.status != Status::Leader {
            return Vec::new();
        }
        let mut actions = Vec::new();
        for member in &self.group_members {
            if *member != self.config.id {
                actions.push(Action::send(
                    *member,
                    WhiteBoxMsg::Heartbeat {
                        ballot: self.cballot,
                    },
                ));
            }
        }
        actions.push(Action::SetTimer {
            id: HEARTBEAT_TIMER,
            delay: self.config.heartbeat_interval,
        });
        actions
    }

    fn handle_election_timer(&mut self, now: Duration) -> Vec<Action<WhiteBoxMsg>> {
        if !self.config.auto_election_enabled() {
            return Vec::new();
        }
        let mut actions = Vec::new();
        // A follower whose leader went quiet — or a replica whose own
        // recovery stalled because NEW_LEADER / NEW_STATE traffic was lost —
        // starts (re-)establishing a ballot. Without the `Recovering` case a
        // group in which every member joined a stalled ballot would deadlock:
        // election timers keep firing but nobody would ever campaign again.
        if self.status != Status::Leader {
            let patience = self.config.election_timeout * (1 + self.election_rank());
            if now.saturating_sub(self.last_leader_activity) > patience {
                self.last_leader_activity = now;
                actions.extend(self.start_recovery());
            }
        }
        actions.push(Action::SetTimer {
            id: ELECTION_TIMER,
            delay: self.config.election_timeout,
        });
        actions
    }

    /// The process crashed and came back up with its durable state (records,
    /// ballots, clock, `max_delivered_gts`) intact; everything volatile —
    /// armed timers, the batch buffer, in-progress recovery bookkeeping — died
    /// with it. The paper's model is crash-stop, so rejoin is our extension:
    /// the replica re-establishes a *fresh ballot* through the normal
    /// `NEW_LEADER` handshake, whatever its pre-crash role. The handshake is
    /// what re-synchronises it with a quorum: the `NEW_LEADER_ACK` snapshots
    /// teach it everything it slept through, and finishing recovery
    /// re-delivers committed messages it missed (Figure 4 line 66).
    /// Passively rejoining as a follower would *not* suffice — a follower
    /// whose `cballot` went stale while it was down can never acknowledge the
    /// current leader's proposals, and if the group's remaining quorum
    /// includes the restarted process, the group would be wedged forever
    /// (found by the schedule explorer; see `tests/regressions/`).
    fn handle_restart(&mut self, now: Duration) -> Vec<Action<WhiteBoxMsg>> {
        self.batch_buffer.clear();
        self.batch_timer_armed = false;
        self.recovery = None;
        self.retry_timer_msgs.clear();
        self.retry_timer_of.clear();
        self.last_leader_activity = now;
        self.status = Status::Follower;
        let mut actions = self.start_recovery();
        // Re-arm a retry timer for every pending record so stuck messages are
        // re-proposed (the pre-crash timers are gone). The pending set comes
        // from the delivery-condition index — restart work is proportional
        // to the in-flight suffix, not the delivered history (a replica
        // restarted after 50k deliveries re-arms only what is still open).
        let pending: Vec<MsgId> = self.pending_lts.iter().map(|(_, id)| *id).collect();
        self.last_restart_scan = pending.len();
        for id in pending {
            actions.extend(self.arm_retry_timer(id));
        }
        if self.config.auto_election_enabled() {
            actions.push(Action::SetTimer {
                id: ELECTION_TIMER,
                delay: self.config.election_timeout,
            });
        }
        actions
    }

    fn handle_init(&mut self, now: Duration) -> Vec<Action<WhiteBoxMsg>> {
        self.last_leader_activity = now;
        if !self.config.auto_election_enabled() {
            return Vec::new();
        }
        let mut actions = Vec::new();
        if self.status == Status::Leader {
            actions.push(Action::SetTimer {
                id: HEARTBEAT_TIMER,
                delay: self.config.heartbeat_interval,
            });
        } else {
            actions.push(Action::SetTimer {
                id: ELECTION_TIMER,
                delay: self.config.election_timeout,
            });
        }
        actions
    }
}

impl Node for WhiteBoxReplica {
    type Msg = WhiteBoxMsg;

    fn id(&self) -> ProcessId {
        self.config.id
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_event(&mut self, now: Duration, event: Event<WhiteBoxMsg>) -> Vec<Action<WhiteBoxMsg>> {
        match event {
            Event::Init => self.handle_init(now),
            Event::Multicast(msg) => self.handle_multicast(None, msg),
            Event::BecomeLeader => self.start_recovery(),
            Event::Restart => self.handle_restart(now),
            Event::Timer { id, now } => match id {
                HEARTBEAT_TIMER => self.handle_heartbeat_timer(),
                ELECTION_TIMER => self.handle_election_timer(now),
                BATCH_TIMER => self.handle_batch_timer(),
                other => self.handle_retry_timer(other),
            },
            Event::Message { from, msg } => {
                // Only heartbeats feed the leader-monitoring oracle (see
                // `handle_heartbeat` for the ballot gate). Counting arbitrary
                // traffic from `cur_leader` as a sign of life is unsound: two
                // replicas stuck in `Recovering` keep exchanging per-message
                // retry MULTICASTs, each pacifying the other's election timer
                // while neither can make progress — a deadlock found by the
                // schedule explorer.
                let _ = from;
                match msg {
                    WhiteBoxMsg::Multicast { msg } => self.handle_multicast(Some(from), msg),
                    WhiteBoxMsg::Accept {
                        msg,
                        group,
                        ballot,
                        local_ts,
                    } => self.handle_accept(msg, group, ballot, local_ts),
                    WhiteBoxMsg::AcceptBatch {
                        group,
                        ballot,
                        entries,
                    } => self.handle_accept_batch(group, ballot, entries),
                    WhiteBoxMsg::AcceptAck {
                        msg_id,
                        group,
                        ballots,
                    } => self.handle_accept_ack(from, msg_id, group, ballots),
                    WhiteBoxMsg::AcceptAckBatch { group, entries } => {
                        self.handle_accept_ack_batch(from, group, entries)
                    }
                    WhiteBoxMsg::DeliverBatch { ballot, entries } => {
                        self.handle_deliver_batch(ballot, entries)
                    }
                    WhiteBoxMsg::Deliver {
                        msg,
                        ballot,
                        local_ts,
                        global_ts,
                    } => self.handle_deliver(msg, ballot, local_ts, global_ts),
                    WhiteBoxMsg::NewLeader { ballot } => self.handle_new_leader(now, from, ballot),
                    WhiteBoxMsg::NewLeaderAck {
                        ballot,
                        cballot,
                        checkpoint,
                        snapshot,
                    } => self.handle_new_leader_ack(from, ballot, cballot, checkpoint, snapshot),
                    WhiteBoxMsg::NewState {
                        ballot,
                        checkpoint,
                        snapshot,
                    } => self.handle_new_state(now, from, ballot, checkpoint, snapshot),
                    WhiteBoxMsg::NewStateAck { ballot } => self.handle_new_state_ack(from, ballot),
                    WhiteBoxMsg::Heartbeat { ballot } => self.handle_heartbeat(now, ballot),
                    WhiteBoxMsg::StableReport {
                        group,
                        delivered_gts,
                    } => self.handle_stable_report(from, group, delivered_gts),
                    WhiteBoxMsg::StableAdvance { watermarks } => {
                        self.handle_stable_advance(watermarks)
                    }
                    WhiteBoxMsg::StablePruned { msg_id, watermarks } => {
                        self.handle_stable_pruned(msg_id, watermarks)
                    }
                    WhiteBoxMsg::ClientReply { .. } => Vec::new(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_types::{ClusterConfig, Destination, Payload};

    fn cluster() -> ClusterConfig {
        ClusterConfig::builder().groups(2, 3).clients(1).build()
    }

    fn replica(id: u32, group: u32) -> WhiteBoxReplica {
        let cfg = ReplicaConfig::new(ProcessId(id), GroupId(group), cluster())
            .without_auto_election()
            .without_sender_notification();
        WhiteBoxReplica::new(cfg)
    }

    fn app_msg(seq: u64, groups: &[u32]) -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(6), seq),
            Destination::new(groups.iter().map(|g| GroupId(*g))).unwrap(),
            Payload::from("payload"),
        )
    }

    fn drive(
        replica: &mut WhiteBoxReplica,
        from: ProcessId,
        msg: WhiteBoxMsg,
    ) -> Vec<Action<WhiteBoxMsg>> {
        replica.on_event(Duration::ZERO, Event::message(from, msg))
    }

    #[test]
    fn initial_roles_follow_configuration() {
        assert_eq!(replica(0, 0).status(), Status::Leader);
        assert_eq!(replica(1, 0).status(), Status::Follower);
        assert_eq!(replica(3, 1).status(), Status::Leader);
        assert_eq!(replica(4, 1).status(), Status::Follower);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn replica_must_belong_to_its_group() {
        let _ = replica(0, 1);
    }

    #[test]
    fn leader_proposes_on_multicast() {
        let mut leader = replica(0, 0);
        let m = app_msg(0, &[0, 1]);
        let actions = drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m.clone() },
        );
        // ACCEPT goes to all six destination replicas.
        let accepts: Vec<_> = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: WhiteBoxMsg::Accept { .. },
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(accepts.len(), 6);
        assert_eq!(leader.phase_of(m.id), Some(Phase::Proposed));
        assert_eq!(leader.clock(), 1);
    }

    #[test]
    fn duplicate_multicast_does_not_advance_clock() {
        let mut leader = replica(0, 0);
        let m = app_msg(0, &[0]);
        drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m.clone() },
        );
        assert_eq!(leader.clock(), 1);
        let actions = drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m.clone() },
        );
        assert_eq!(
            leader.clock(),
            1,
            "Invariant 1: one local timestamp per ballot"
        );
        // The proposal is re-sent with the stored timestamp.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: WhiteBoxMsg::Accept { local_ts, .. },
                ..
            } if *local_ts == Timestamp::new(1, GroupId(0))
        )));
    }

    #[test]
    fn follower_forwards_multicast_to_leader() {
        let mut follower = replica(1, 0);
        let m = app_msg(0, &[0]);
        let actions = drive(
            &mut follower,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m },
        );
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            Action::Send { to, msg: WhiteBoxMsg::Multicast { .. } } if *to == ProcessId(0)
        ));
    }

    #[test]
    fn follower_accepts_and_acks_to_all_leaders() {
        let mut follower = replica(1, 0);
        let m = app_msg(0, &[0, 1]);
        // ACCEPT from our own group's leader (ballot (1, p0)).
        let a0 = WhiteBoxMsg::Accept {
            msg: m.clone(),
            group: GroupId(0),
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(1, GroupId(0)),
        };
        let actions = drive(&mut follower, ProcessId(0), a0);
        assert!(
            actions.is_empty(),
            "must wait for the other group's proposal"
        );
        // ACCEPT from the other group's leader.
        let a1 = WhiteBoxMsg::Accept {
            msg: m.clone(),
            group: GroupId(1),
            ballot: Ballot::new(1, ProcessId(3)),
            local_ts: Timestamp::new(4, GroupId(1)),
        };
        let actions = drive(&mut follower, ProcessId(3), a1);
        let acks: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: WhiteBoxMsg::AcceptAck { .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![ProcessId(0), ProcessId(3)]);
        assert_eq!(follower.phase_of(m.id), Some(Phase::Accepted));
        // Speculative clock update: the clock jumps to the implied global
        // timestamp (4), even though nothing is committed yet.
        assert_eq!(follower.clock(), 4);
    }

    #[test]
    fn ablation_disables_speculative_clock_update() {
        let cfg = ReplicaConfig::new(ProcessId(1), GroupId(0), cluster())
            .without_auto_election()
            .without_speculative_clock_update();
        let mut follower = WhiteBoxReplica::new(cfg);
        let m = app_msg(0, &[0, 1]);
        drive(
            &mut follower,
            ProcessId(0),
            WhiteBoxMsg::Accept {
                msg: m.clone(),
                group: GroupId(0),
                ballot: Ballot::new(1, ProcessId(0)),
                local_ts: Timestamp::new(1, GroupId(0)),
            },
        );
        drive(
            &mut follower,
            ProcessId(3),
            WhiteBoxMsg::Accept {
                msg: m.clone(),
                group: GroupId(1),
                ballot: Ballot::new(1, ProcessId(3)),
                local_ts: Timestamp::new(4, GroupId(1)),
            },
        );
        assert_eq!(follower.clock(), 0, "no speculative update in the ablation");
        assert_eq!(follower.phase_of(m.id), Some(Phase::Accepted));
    }

    #[test]
    fn accept_from_stale_own_ballot_is_not_acknowledged() {
        let mut follower = replica(1, 0);
        // Move the follower to ballot (2, p2): it joins the ballot and then
        // installs the new leader's (empty) state.
        drive(
            &mut follower,
            ProcessId(2),
            WhiteBoxMsg::NewLeader {
                ballot: Ballot::new(2, ProcessId(2)),
            },
        );
        drive(
            &mut follower,
            ProcessId(2),
            WhiteBoxMsg::NewState {
                ballot: Ballot::new(2, ProcessId(2)),
                checkpoint: Checkpoint::default(),
                snapshot: StateSnapshot::new(),
            },
        );
        assert_eq!(follower.status(), Status::Follower);
        assert_eq!(follower.current_ballot(), Ballot::new(2, ProcessId(2)));
        let m = app_msg(0, &[0]);
        let stale = WhiteBoxMsg::Accept {
            msg: m.clone(),
            group: GroupId(0),
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(1, GroupId(0)),
        };
        let actions = drive(&mut follower, ProcessId(0), stale);
        assert!(
            !actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: WhiteBoxMsg::AcceptAck { .. },
                    ..
                }
            )),
            "stale-ballot proposals must not be acknowledged"
        );
    }

    /// Runs the full collision-free flow for a single-group message at the
    /// leader and checks that it commits and delivers.
    #[test]
    fn single_group_message_commits_after_quorum_acks() {
        let mut leader = replica(0, 0);
        let m = app_msg(0, &[0]);
        // Leader proposes.
        let actions = drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m.clone() },
        );
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(
                    a,
                    Action::Send {
                        msg: WhiteBoxMsg::Accept { .. },
                        ..
                    }
                ))
                .count(),
            3
        );
        // Leader receives its own ACCEPT and acknowledges.
        let accept = WhiteBoxMsg::Accept {
            msg: m.clone(),
            group: GroupId(0),
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(1, GroupId(0)),
        };
        let actions = drive(&mut leader, ProcessId(0), accept);
        let self_ack = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to,
                    msg: msg @ WhiteBoxMsg::AcceptAck { .. },
                } if *to == ProcessId(0) => Some(msg.clone()),
                _ => None,
            })
            .expect("leader acks its own proposal");
        // Deliver the leader's own ack plus one follower ack → quorum of 2.
        drive(&mut leader, ProcessId(0), self_ack.clone());
        assert_eq!(leader.phase_of(m.id), Some(Phase::Accepted));
        let follower_ack = match self_ack {
            WhiteBoxMsg::AcceptAck {
                msg_id, ballots, ..
            } => WhiteBoxMsg::AcceptAck {
                msg_id,
                group: GroupId(0),
                ballots,
            },
            _ => unreachable!(),
        };
        let actions = drive(&mut leader, ProcessId(1), follower_ack);
        // The message commits and DELIVER goes to the whole group.
        assert_eq!(leader.phase_of(m.id), Some(Phase::Committed));
        let delivers = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: WhiteBoxMsg::Deliver { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(delivers, 3);
        // Handling its own DELIVER makes the leader deliver to the application.
        let deliver_to_self = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to,
                    msg: msg @ WhiteBoxMsg::Deliver { .. },
                } if *to == ProcessId(0) => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let actions = drive(&mut leader, ProcessId(0), deliver_to_self);
        assert!(actions.iter().any(Action::is_delivery));
        assert_eq!(leader.delivered_count(), 1);
        assert_eq!(leader.max_delivered_gts(), Timestamp::new(1, GroupId(0)));
    }

    #[test]
    fn deliver_is_idempotent_via_max_delivered_gts() {
        let mut follower = replica(1, 0);
        let m = app_msg(0, &[0]);
        let deliver = WhiteBoxMsg::Deliver {
            msg: m.clone(),
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(1, GroupId(0)),
            global_ts: Timestamp::new(1, GroupId(0)),
        };
        let first = drive(&mut follower, ProcessId(0), deliver.clone());
        assert_eq!(first.iter().filter(|a| a.is_delivery()).count(), 1);
        let second = drive(&mut follower, ProcessId(0), deliver);
        assert_eq!(second.iter().filter(|a| a.is_delivery()).count(), 0);
        assert_eq!(follower.delivered_count(), 1);
    }

    #[test]
    fn deliver_from_wrong_ballot_is_ignored() {
        let mut follower = replica(1, 0);
        let m = app_msg(0, &[0]);
        let deliver = WhiteBoxMsg::Deliver {
            msg: m,
            ballot: Ballot::new(9, ProcessId(2)),
            local_ts: Timestamp::new(1, GroupId(0)),
            global_ts: Timestamp::new(1, GroupId(0)),
        };
        let actions = drive(&mut follower, ProcessId(2), deliver);
        assert!(actions.is_empty());
        assert_eq!(follower.delivered_count(), 0);
    }

    #[test]
    fn committed_message_blocked_by_lower_pending_local_timestamp() {
        let mut leader = replica(0, 0);
        // Propose m1 (gets local/pending ts (1, g0)).
        let m1 = app_msg(0, &[0, 1]);
        drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m1.clone() },
        );
        // Propose m2 (local ts (2, g0)).
        let m2 = app_msg(1, &[0]);
        drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m2.clone() },
        );
        // Commit m2 via accepts + quorum acks.
        let accept2 = WhiteBoxMsg::Accept {
            msg: m2.clone(),
            group: GroupId(0),
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(2, GroupId(0)),
        };
        let actions = drive(&mut leader, ProcessId(0), accept2);
        let ack = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    msg: msg @ WhiteBoxMsg::AcceptAck { .. },
                    to,
                } if *to == ProcessId(0) => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        drive(&mut leader, ProcessId(0), ack.clone());
        let ack_from_follower = match ack {
            WhiteBoxMsg::AcceptAck {
                msg_id, ballots, ..
            } => WhiteBoxMsg::AcceptAck {
                msg_id,
                group: GroupId(0),
                ballots,
            },
            _ => unreachable!(),
        };
        let actions = drive(&mut leader, ProcessId(1), ack_from_follower);
        // m2 is committed but must NOT be delivered: m1 is still pending with
        // local timestamp (1, g0) < gts(m2) = (2, g0) — the convoy condition of
        // Figure 4 line 21.
        assert_eq!(leader.phase_of(m2.id), Some(Phase::Committed));
        assert!(
            !actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: WhiteBoxMsg::Deliver { .. },
                    ..
                }
            )),
            "delivery must be blocked by the pending lower-timestamped message"
        );
    }

    /// Regression guard for the restart path: re-arming retry timers after a
    /// restart must scan the *pending suffix* (read off the incrementally
    /// maintained delivery-condition index), not the full record history — a
    /// replica restarted after 50k deliveries does work proportional to its
    /// handful of in-flight records.
    #[test]
    fn restart_scan_is_proportional_to_suffix_not_history() {
        let mut follower = replica(1, 0);
        // 50k delivered records, all resident (compaction off).
        for i in 0..50_000u64 {
            let m = app_msg(i, &[0]);
            let deliver = WhiteBoxMsg::Deliver {
                msg: m,
                ballot: Ballot::new(1, ProcessId(0)),
                local_ts: Timestamp::new(i + 1, GroupId(0)),
                global_ts: Timestamp::new(i + 1, GroupId(0)),
            };
            drive(&mut follower, ProcessId(0), deliver);
        }
        assert_eq!(follower.delivered_count(), 50_000);
        assert_eq!(follower.live_records(), 50_000);
        // A handful of in-flight records (accepted, uncommitted).
        for i in 50_000..50_005u64 {
            let m = app_msg(i, &[0]);
            let accept = WhiteBoxMsg::Accept {
                msg: m,
                group: GroupId(0),
                ballot: Ballot::new(1, ProcessId(0)),
                local_ts: Timestamp::new(i + 1, GroupId(0)),
            };
            drive(&mut follower, ProcessId(0), accept);
        }
        let actions = follower.on_event(Duration::ZERO, Event::Restart);
        assert_eq!(
            follower.last_restart_scan(),
            5,
            "restart re-arm scan must cover only the pending suffix"
        );
        let retry_timers = actions
            .iter()
            .filter(|a| matches!(a, Action::SetTimer { id, .. } if id.0 >= 1_000))
            .count();
        assert_eq!(retry_timers, 5, "one retry timer per pending record");
    }

    #[test]
    fn become_leader_sends_new_leader_to_group() {
        let mut follower = replica(1, 0);
        let actions = follower.on_event(Duration::ZERO, Event::BecomeLeader);
        let targets: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: WhiteBoxMsg::NewLeader { ballot },
                } => Some((*to, *ballot)),
                _ => None,
            })
            .collect();
        assert_eq!(targets.len(), 3);
        for (_, b) in &targets {
            assert!(b.is_led_by(ProcessId(1)));
            assert!(*b > Ballot::new(1, ProcessId(0)));
        }
    }

    #[test]
    fn new_leader_with_lower_ballot_is_rejected() {
        let mut follower = replica(1, 0);
        let actions = drive(
            &mut follower,
            ProcessId(2),
            WhiteBoxMsg::NewLeader {
                ballot: Ballot::new(1, ProcessId(0)),
            },
        );
        assert!(actions.is_empty());
        assert_eq!(follower.status(), Status::Follower);
    }

    #[test]
    fn full_recovery_round_promotes_new_leader() {
        // p1 takes over group 0 (members p0, p1, p2) after p0 "crashes".
        let mut p1 = replica(1, 0);
        let mut p2 = replica(2, 0);

        // p1 starts recovery.
        let actions = p1.on_event(Duration::ZERO, Event::BecomeLeader);
        let new_leader_msg = actions
            .iter()
            .find_map(|a| match a {
                Action::Send { to, msg } if *to == ProcessId(2) => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        // p1 handles its own NEWLEADER.
        let self_msg = actions
            .iter()
            .find_map(|a| match a {
                Action::Send { to, msg } if *to == ProcessId(1) => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let ack_from_self = drive(&mut p1, ProcessId(1), self_msg);
        let self_ack = ack_from_self
            .iter()
            .find_map(|a| match a {
                Action::Send { msg, .. } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(p1.status(), Status::Recovering);

        // p2 votes for p1.
        let p2_actions = drive(&mut p2, ProcessId(1), new_leader_msg);
        assert_eq!(p2.status(), Status::Recovering);
        let p2_ack = p2_actions
            .iter()
            .find_map(|a| match a {
                Action::Send { msg, .. } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();

        // p1 gathers the two votes (a quorum) and installs the new state.
        drive(&mut p1, ProcessId(1), self_ack);
        let install_actions = drive(&mut p1, ProcessId(2), p2_ack);
        let new_state_to_p2 = install_actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to,
                    msg: msg @ WhiteBoxMsg::NewState { .. },
                } if *to == ProcessId(2) => Some(msg.clone()),
                _ => None,
            })
            .expect("NEW_STATE must be sent to followers");

        // p2 installs and acknowledges; p1 becomes leader.
        let p2_actions = drive(&mut p2, ProcessId(1), new_state_to_p2);
        assert_eq!(p2.status(), Status::Follower);
        assert_eq!(p2.current_ballot(), p1.current_ballot());
        let state_ack = p2_actions
            .iter()
            .find_map(|a| match a {
                Action::Send { msg, .. } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        drive(&mut p1, ProcessId(2), state_ack);
        assert_eq!(p1.status(), Status::Leader);
        assert!(p1.current_ballot().is_led_by(ProcessId(1)));
    }

    #[test]
    fn recovery_preserves_committed_messages() {
        // A follower that has delivered (hence committed) a message reports it
        // during recovery, and the new leader re-delivers it.
        let mut p1 = replica(1, 0);
        let mut p2 = replica(2, 0);
        let m = app_msg(0, &[0]);
        let deliver = WhiteBoxMsg::Deliver {
            msg: m.clone(),
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(1, GroupId(0)),
            global_ts: Timestamp::new(1, GroupId(0)),
        };
        drive(&mut p2, ProcessId(0), deliver);
        assert_eq!(p2.delivered_count(), 1);

        // p1 recovers with votes from itself and p2.
        let actions = p1.on_event(Duration::ZERO, Event::BecomeLeader);
        let to_p1 = actions
            .iter()
            .find_map(|a| match a {
                Action::Send { to, msg } if *to == ProcessId(1) => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let to_p2 = actions
            .iter()
            .find_map(|a| match a {
                Action::Send { to, msg } if *to == ProcessId(2) => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let self_ack = drive(&mut p1, ProcessId(1), to_p1)
            .iter()
            .find_map(|a| match a {
                Action::Send { msg, .. } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let p2_ack = drive(&mut p2, ProcessId(1), to_p2)
            .iter()
            .find_map(|a| match a {
                Action::Send { msg, .. } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        drive(&mut p1, ProcessId(1), self_ack);
        let install = drive(&mut p1, ProcessId(2), p2_ack);
        // The committed message is known to the new leader.
        assert_eq!(p1.phase_of(m.id), Some(Phase::Committed));
        assert_eq!(p1.global_ts_of(m.id), Some(Timestamp::new(1, GroupId(0))));
        let new_state = install
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to,
                    msg: msg @ WhiteBoxMsg::NewState { .. },
                } if *to == ProcessId(2) => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let ack = drive(&mut p2, ProcessId(1), new_state)
            .iter()
            .find_map(|a| match a {
                Action::Send { msg, .. } => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        let finish = drive(&mut p1, ProcessId(2), ack);
        assert_eq!(p1.status(), Status::Leader);
        // The new leader re-sends DELIVER for the committed message.
        assert!(finish.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: WhiteBoxMsg::Deliver { .. },
                ..
            }
        )));
    }

    #[test]
    fn client_reply_sent_when_enabled() {
        let cfg = ReplicaConfig::new(ProcessId(1), GroupId(0), cluster()).without_auto_election();
        let mut follower = WhiteBoxReplica::new(cfg);
        let m = app_msg(0, &[0]);
        let deliver = WhiteBoxMsg::Deliver {
            msg: m,
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(1, GroupId(0)),
            global_ts: Timestamp::new(1, GroupId(0)),
        };
        let actions = drive(&mut follower, ProcessId(0), deliver);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to, msg: WhiteBoxMsg::ClientReply { .. } } if *to == ProcessId(6)
        )));
    }

    #[test]
    fn heartbeat_timer_reschedules_for_leader() {
        let cfg = ReplicaConfig::new(ProcessId(0), GroupId(0), cluster());
        let mut leader = WhiteBoxReplica::new(cfg);
        let init = leader.on_event(Duration::ZERO, Event::Init);
        assert!(init
            .iter()
            .any(|a| matches!(a, Action::SetTimer { id, .. } if *id == HEARTBEAT_TIMER)));
        let actions = leader.on_event(
            Duration::from_millis(50),
            Event::Timer {
                id: HEARTBEAT_TIMER,
                now: Duration::from_millis(50),
            },
        );
        let heartbeats = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: WhiteBoxMsg::Heartbeat { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(heartbeats, 2);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SetTimer { id, .. } if *id == HEARTBEAT_TIMER)));
    }

    #[test]
    fn follower_starts_election_after_silence() {
        let cfg = ReplicaConfig::new(ProcessId(1), GroupId(0), cluster())
            .with_election_timeouts(Duration::from_millis(10), Duration::from_millis(20));
        let mut follower = WhiteBoxReplica::new(cfg);
        follower.on_event(Duration::ZERO, Event::Init);
        // Before the timeout expires nothing happens.
        let quiet = follower.on_event(
            Duration::from_millis(30),
            Event::Timer {
                id: ELECTION_TIMER,
                now: Duration::from_millis(30),
            },
        );
        assert!(!quiet.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: WhiteBoxMsg::NewLeader { .. },
                ..
            }
        )));
        // Rank 1 waits 2 * 20 ms; by 100 ms it starts an election.
        let actions = follower.on_event(
            Duration::from_millis(100),
            Event::Timer {
                id: ELECTION_TIMER,
                now: Duration::from_millis(100),
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: WhiteBoxMsg::NewLeader { .. },
                ..
            }
        )));
    }

    #[test]
    fn heartbeat_refreshes_leader_liveness() {
        let cfg = ReplicaConfig::new(ProcessId(1), GroupId(0), cluster())
            .with_election_timeouts(Duration::from_millis(10), Duration::from_millis(20));
        let mut follower = WhiteBoxReplica::new(cfg);
        follower.on_event(Duration::ZERO, Event::Init);
        follower.on_event(
            Duration::from_millis(95),
            Event::message(
                ProcessId(0),
                WhiteBoxMsg::Heartbeat {
                    ballot: Ballot::new(1, ProcessId(0)),
                },
            ),
        );
        let actions = follower.on_event(
            Duration::from_millis(100),
            Event::Timer {
                id: ELECTION_TIMER,
                now: Duration::from_millis(100),
            },
        );
        assert!(!actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: WhiteBoxMsg::NewLeader { .. },
                ..
            }
        )));
    }

    fn batching_replica(id: u32, group: u32, max_batch: usize) -> WhiteBoxReplica {
        let cfg = ReplicaConfig::new(ProcessId(id), GroupId(group), cluster())
            .without_auto_election()
            .without_sender_notification()
            .with_retry_timeout(Duration::ZERO)
            .with_batching(max_batch, Duration::from_millis(5));
        WhiteBoxReplica::new(cfg)
    }

    #[test]
    fn batching_leader_buffers_until_batch_fills() {
        let mut leader = batching_replica(0, 0, 2);
        let m1 = app_msg(0, &[0]);
        let actions = drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m1.clone() },
        );
        // The first multicast is buffered: no ACCEPT traffic, only the flush
        // timer is armed. The local timestamp is assigned immediately.
        assert!(!actions.iter().any(|a| matches!(a, Action::Send { .. })));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SetTimer { id, .. } if *id == BATCH_TIMER)));
        assert_eq!(leader.phase_of(m1.id), Some(Phase::Proposed));
        assert_eq!(leader.clock(), 1);

        // The second multicast fills the batch: one ACCEPT_BATCH per group
        // member, carrying both proposals, and the timer is cancelled.
        let m2 = app_msg(1, &[0]);
        let actions = drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m2.clone() },
        );
        let batches: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    msg: WhiteBoxMsg::AcceptBatch { entries, .. },
                    ..
                } => Some(entries.len()),
                _ => None,
            })
            .collect();
        assert_eq!(batches, vec![2, 2, 2]);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CancelTimer(id) if *id == BATCH_TIMER)));
    }

    #[test]
    fn batch_timer_flushes_partial_batch() {
        let mut leader = batching_replica(0, 0, 8);
        let m = app_msg(0, &[0, 1]);
        drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m.clone() },
        );
        let actions = leader.on_event(
            Duration::from_millis(5),
            Event::Timer {
                id: BATCH_TIMER,
                now: Duration::from_millis(5),
            },
        );
        // The single buffered proposal goes out to all six destination
        // replicas of both groups.
        let batches = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::Send {
                        msg: WhiteBoxMsg::AcceptBatch { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(batches, 6);
    }

    #[test]
    fn batch_entries_respect_genuineness() {
        // m1 goes to {g0}, m2 to {g0, g1}: g1's members must only receive the
        // m2 entry.
        let mut leader = batching_replica(0, 0, 2);
        let m1 = app_msg(0, &[0]);
        let m2 = app_msg(1, &[0, 1]);
        drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m1.clone() },
        );
        let actions = drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m2.clone() },
        );
        for a in &actions {
            if let Action::Send {
                to,
                msg: WhiteBoxMsg::AcceptBatch { entries, .. },
            } = a
            {
                let ids: Vec<MsgId> = entries.iter().map(|e| e.msg.id).collect();
                if to.0 >= 3 {
                    assert_eq!(ids, vec![m2.id], "g1 member saw a foreign entry");
                } else {
                    assert_eq!(ids, vec![m1.id, m2.id]);
                }
            }
        }
    }

    #[test]
    fn batched_round_commits_and_delivers_in_order() {
        let mut leader = batching_replica(0, 0, 2);
        let m1 = app_msg(0, &[0]);
        let m2 = app_msg(1, &[0]);
        drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m1.clone() },
        );
        let actions = drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m2.clone() },
        );
        let self_batch = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to,
                    msg: msg @ WhiteBoxMsg::AcceptBatch { .. },
                } if *to == ProcessId(0) => Some(msg.clone()),
                _ => None,
            })
            .unwrap();
        // The leader handles its own batch and acknowledges both entries in a
        // single ACCEPT_ACK_BATCH.
        let actions = drive(&mut leader, ProcessId(0), self_batch);
        let self_ack = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to,
                    msg: msg @ WhiteBoxMsg::AcceptAckBatch { .. },
                } if *to == ProcessId(0) => Some(msg.clone()),
                _ => None,
            })
            .expect("acks must be batched");
        match &self_ack {
            WhiteBoxMsg::AcceptAckBatch { entries, .. } => assert_eq!(entries.len(), 2),
            _ => unreachable!(),
        }
        drive(&mut leader, ProcessId(0), self_ack.clone());
        // A follower ack completes the quorum for both messages at once; the
        // two deliveries travel in one DELIVER_BATCH per member.
        let actions = drive(&mut leader, ProcessId(1), self_ack);
        assert_eq!(leader.phase_of(m1.id), Some(Phase::Committed));
        assert_eq!(leader.phase_of(m2.id), Some(Phase::Committed));
        let deliver_batch = actions
            .iter()
            .find_map(|a| match a {
                Action::Send {
                    to,
                    msg: msg @ WhiteBoxMsg::DeliverBatch { .. },
                } if *to == ProcessId(0) => Some(msg.clone()),
                _ => None,
            })
            .expect("deliveries must be batched");
        let actions = drive(&mut leader, ProcessId(0), deliver_batch);
        let delivered: Vec<MsgId> = actions
            .iter()
            .filter_map(|a| a.as_delivery().map(|d| d.msg.id))
            .collect();
        assert_eq!(delivered, vec![m1.id, m2.id]);
        assert_eq!(leader.delivered_count(), 2);
    }

    #[test]
    fn deposed_leader_drops_buffered_batch_but_reports_records() {
        let mut leader = batching_replica(0, 0, 8);
        let m = app_msg(0, &[0]);
        drive(
            &mut leader,
            ProcessId(6),
            WhiteBoxMsg::Multicast { msg: m.clone() },
        );
        // A higher ballot deposes the leader mid-batch.
        let actions = drive(
            &mut leader,
            ProcessId(1),
            WhiteBoxMsg::NewLeader {
                ballot: Ballot::new(2, ProcessId(1)),
            },
        );
        assert_eq!(leader.status(), Status::Recovering);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::CancelTimer(id) if *id == BATCH_TIMER)));
        // The buffered proposal is still reported in the NEWLEADER_ACK
        // snapshot, so the new leader can decide its fate.
        let reported = actions.iter().any(|a| {
            matches!(
                a,
                Action::Send {
                    msg: WhiteBoxMsg::NewLeaderAck { snapshot, .. },
                    ..
                } if snapshot.records.contains_key(&m.id)
            )
        });
        assert!(reported, "snapshot must include the buffered proposal");
        // A later batch timer fires harmlessly.
        let actions = leader.on_event(
            Duration::from_millis(9),
            Event::Timer {
                id: BATCH_TIMER,
                now: Duration::from_millis(9),
            },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn retry_timer_resends_multicast_for_pending_message() {
        let cfg = ReplicaConfig::new(ProcessId(0), GroupId(0), cluster())
            .without_auto_election()
            .with_retry_timeout(Duration::from_millis(50));
        let mut leader = WhiteBoxReplica::new(cfg);
        let m = app_msg(0, &[0, 1]);
        let actions = leader.on_event(
            Duration::ZERO,
            Event::message(ProcessId(6), WhiteBoxMsg::Multicast { msg: m.clone() }),
        );
        let timer = actions
            .iter()
            .find_map(|a| match a {
                Action::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .expect("retry timer armed");
        let retry = leader.on_event(
            Duration::from_millis(60),
            Event::Timer {
                id: timer,
                now: Duration::from_millis(60),
            },
        );
        // MULTICAST re-sent to both destination leaders (p0 and p3).
        let targets: Vec<_> = retry
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: WhiteBoxMsg::Multicast { .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![ProcessId(0), ProcessId(3)]);
        assert!(retry
            .iter()
            .any(|a| matches!(a, Action::SetTimer { id, .. } if *id == timer)));
    }

    /// A replica stuck in `Recovering` (it joined a ballot whose `NEW_STATE`
    /// was lost) must not be pacified by the active leader's heartbeats: its
    /// election timer has to fire eventually and re-campaign with a higher
    /// ballot, or the group's usable quorum silently shrinks.
    #[test]
    fn heartbeats_do_not_pacify_a_recovering_replica() {
        let cfg = ReplicaConfig::new(ProcessId(1), GroupId(0), cluster())
            .with_election_timeouts(Duration::from_millis(50), Duration::from_millis(100));
        let mut follower = WhiteBoxReplica::new(cfg);
        follower.on_event(Duration::ZERO, Event::Init);
        // Join ballot (2, p2); its NEW_STATE never arrives.
        let joined = Ballot::new(2, ProcessId(2));
        drive(
            &mut follower,
            ProcessId(2),
            WhiteBoxMsg::NewLeader { ballot: joined },
        );
        assert_eq!(follower.status(), Status::Recovering);
        // p2 finished recovery with the other members and heartbeats away.
        for i in 1..=10u64 {
            follower.on_event(
                Duration::from_millis(i * 50),
                Event::message(ProcessId(2), WhiteBoxMsg::Heartbeat { ballot: joined }),
            );
        }
        // Patience for rank 1 is 2 × 100 ms; at 600 ms the timer must start a
        // fresh campaign despite the steady heartbeats.
        let actions = follower.on_event(
            Duration::from_millis(600),
            Event::Timer {
                id: ELECTION_TIMER,
                now: Duration::from_millis(600),
            },
        );
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Send {
                    msg: WhiteBoxMsg::NewLeader { ballot },
                    ..
                } if *ballot > joined
            )),
            "stuck Recovering replica must re-campaign"
        );
    }
}
