//! Per-message bookkeeping at a white-box replica.
//!
//! A [`MessageRecord`] gathers everything a process knows about one
//! application message: the entries of the `Phase`, `LocalTS`, `GlobalTS` and
//! `Delivered` arrays of Figure 3, plus the transient bookkeeping needed to
//! drive the handlers of Figure 4 (which `ACCEPT`s and `ACCEPT_ACK`s have been
//! received so far).

use std::collections::{BTreeMap, BTreeSet};

use wbam_types::{AppMessage, Ballot, GroupId, MsgId, Phase, ProcessId, Timestamp};

use crate::messages::{AcceptEntry, BallotVector, RecordSnapshot};

/// Everything a replica knows about one application message.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageRecord {
    /// The application message (payload and destination set).
    pub msg: AppMessage,
    /// `Phase[m]`.
    pub phase: Phase,
    /// `LocalTS[m]` — the local timestamp of the message at this group.
    pub local_ts: Timestamp,
    /// `GlobalTS[m]` — the message's global timestamp, once known.
    pub global_ts: Timestamp,
    /// `Delivered[m]` — whether the *leader* has already initiated delivery.
    pub delivered: bool,
    /// The most recent `ACCEPT` received from each destination group's leader:
    /// the ballot of the proposal and the proposed local timestamp.
    pub accepts: BTreeMap<GroupId, (Ballot, Timestamp)>,
    /// `ACCEPT_ACK`s received so far, grouped by the ballot vector they carry:
    /// for each vector, the set of acknowledging processes per group.
    pub acks: BTreeMap<BallotVector, BTreeMap<GroupId, BTreeSet<ProcessId>>>,
}

impl MessageRecord {
    /// Creates a fresh record for a message in the `START` phase.
    pub fn new(msg: AppMessage) -> Self {
        MessageRecord {
            msg,
            phase: Phase::Start,
            local_ts: Timestamp::BOTTOM,
            global_ts: Timestamp::BOTTOM,
            delivered: false,
            accepts: BTreeMap::new(),
            acks: BTreeMap::new(),
        }
    }

    /// The message identifier.
    pub fn id(&self) -> MsgId {
        self.msg.id
    }

    /// Records an `ACCEPT` from the leader of `group`. A later proposal from
    /// the same group (higher ballot) supersedes an earlier one; stale
    /// proposals with lower ballots are ignored.
    pub fn record_accept(&mut self, group: GroupId, ballot: Ballot, local_ts: Timestamp) {
        match self.accepts.get(&group) {
            Some((existing, _)) if *existing > ballot => {}
            _ => {
                self.accepts.insert(group, (ballot, local_ts));
            }
        }
    }

    /// Whether `ACCEPT`s from the leaders of all destination groups have been
    /// received.
    pub fn has_all_accepts(&self) -> bool {
        self.msg.dest.iter().all(|g| self.accepts.contains_key(&g))
    }

    /// The local timestamps proposed by each destination group, if complete.
    pub fn proposal_set(&self) -> Option<BTreeMap<GroupId, Timestamp>> {
        if !self.has_all_accepts() {
            return None;
        }
        Some(self.accepts.iter().map(|(g, (_, ts))| (*g, *ts)).collect())
    }

    /// The global timestamp implied by the currently known proposals (max of
    /// the local timestamps), if all proposals are known.
    pub fn implied_global_ts(&self) -> Option<Timestamp> {
        self.proposal_set()
            .map(|props| Timestamp::global_of(props.into_values()))
    }

    /// Records an `ACCEPT_ACK` from `process` (a member of `group`) carrying
    /// the given ballot vector. Returns the number of distinct acknowledging
    /// processes in `group` for that vector after the update.
    pub fn record_ack(
        &mut self,
        vector: BallotVector,
        group: GroupId,
        process: ProcessId,
    ) -> usize {
        let per_group = self.acks.entry(vector).or_default();
        let set = per_group.entry(group).or_default();
        set.insert(process);
        set.len()
    }

    /// Whether, for some ballot vector, a quorum of acknowledgements has been
    /// received from every destination group (and the vector matches the
    /// `ACCEPT`s currently recorded). `quorum_size` maps each group to its
    /// quorum size; `must_include` is a process that must be among the
    /// acknowledgers of its own group (the leader itself, per Figure 4
    /// line 17 "including myself").
    ///
    /// The accept-match is checked *per candidate vector*, not on the winner:
    /// acks gathered under a since-superseded ballot (a destination group
    /// changed leaders mid-round) can form a complete quorum of their own,
    /// and if a stale vector could be returned it would permanently shadow
    /// the consistent one — the caller would reject it against the current
    /// accepts and conclude "no quorum" forever, live-locking the message
    /// (found by the deterministic-runtime explorer; see
    /// `tests/regressions/rt_corpus.tokens`).
    pub fn quorum_acked(
        &self,
        quorum_size: &BTreeMap<GroupId, usize>,
        must_include: Option<(GroupId, ProcessId)>,
    ) -> Option<BallotVector> {
        'vectors: for (vector, per_group) in &self.acks {
            // The vector must cover exactly the destination groups, and must
            // agree with the ACCEPT currently recorded for each of them
            // (Figure 4 line 17: the acks and the accepts name the same
            // ballots).
            for g in self.msg.dest.iter() {
                match (self.accepts.get(&g), vector.get(&g)) {
                    (Some((accepted, _)), Some(acked)) if accepted == acked => {}
                    _ => continue 'vectors,
                }
                let Some(q) = quorum_size.get(&g) else {
                    continue 'vectors;
                };
                let Some(ackers) = per_group.get(&g) else {
                    continue 'vectors;
                };
                if ackers.len() < *q {
                    continue 'vectors;
                }
            }
            if let Some((g, p)) = must_include {
                match per_group.get(&g) {
                    Some(ackers) if ackers.contains(&p) => {}
                    _ => continue 'vectors,
                }
            }
            return Some(vector.clone());
        }
        None
    }

    /// The entry this record contributes to a batched `ACCEPT`
    /// ([`WhiteBoxMsg::AcceptBatch`](crate::messages::WhiteBoxMsg::AcceptBatch)):
    /// the stored proposal, re-sendable verbatim. Only meaningful once a local
    /// timestamp has been assigned (phase past `START`).
    pub fn accept_entry(&self) -> AcceptEntry {
        AcceptEntry {
            msg: self.msg.clone(),
            local_ts: self.local_ts,
        }
    }

    /// Whether the message is pending in the sense of the delivery condition
    /// (Figure 4 line 21): its phase is `PROPOSED` or `ACCEPTED`.
    pub fn is_pending(&self) -> bool {
        self.phase.is_pending()
    }

    /// Produces the snapshot of this record exchanged during recovery.
    pub fn snapshot(&self) -> RecordSnapshot {
        RecordSnapshot {
            msg: self.msg.clone(),
            phase: self.phase,
            local_ts: self.local_ts,
            global_ts: self.global_ts,
        }
    }

    /// Rebuilds a record from a recovery snapshot, discarding transient
    /// bookkeeping (accept/ack sets).
    pub fn from_snapshot(snap: RecordSnapshot) -> Self {
        MessageRecord {
            msg: snap.msg,
            phase: snap.phase,
            local_ts: snap.local_ts,
            global_ts: snap.global_ts,
            delivered: false,
            accepts: BTreeMap::new(),
            acks: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_types::{Destination, Payload};

    fn app_msg() -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(30), 0),
            Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
            Payload::from("p"),
        )
    }

    fn quorums() -> BTreeMap<GroupId, usize> {
        let mut m = BTreeMap::new();
        m.insert(GroupId(0), 2);
        m.insert(GroupId(1), 2);
        m
    }

    #[test]
    fn fresh_record_is_start_phase() {
        let r = MessageRecord::new(app_msg());
        assert_eq!(r.phase, Phase::Start);
        assert_eq!(r.local_ts, Timestamp::BOTTOM);
        assert!(!r.delivered);
        assert!(!r.has_all_accepts());
        assert_eq!(r.id(), app_msg().id);
    }

    #[test]
    fn accepts_complete_when_all_groups_heard_from() {
        let mut r = MessageRecord::new(app_msg());
        r.record_accept(
            GroupId(0),
            Ballot::new(1, ProcessId(0)),
            Timestamp::new(3, GroupId(0)),
        );
        assert!(!r.has_all_accepts());
        assert_eq!(r.proposal_set(), None);
        r.record_accept(
            GroupId(1),
            Ballot::new(1, ProcessId(3)),
            Timestamp::new(5, GroupId(1)),
        );
        assert!(r.has_all_accepts());
        assert_eq!(r.implied_global_ts(), Some(Timestamp::new(5, GroupId(1))));
    }

    #[test]
    fn later_ballot_supersedes_earlier_accept() {
        let mut r = MessageRecord::new(app_msg());
        r.record_accept(
            GroupId(0),
            Ballot::new(1, ProcessId(0)),
            Timestamp::new(3, GroupId(0)),
        );
        r.record_accept(
            GroupId(0),
            Ballot::new(2, ProcessId(1)),
            Timestamp::new(9, GroupId(0)),
        );
        assert_eq!(
            r.accepts[&GroupId(0)],
            (Ballot::new(2, ProcessId(1)), Timestamp::new(9, GroupId(0)))
        );
        // A stale lower-ballot proposal does not overwrite.
        r.record_accept(
            GroupId(0),
            Ballot::new(1, ProcessId(0)),
            Timestamp::new(1, GroupId(0)),
        );
        assert_eq!(
            r.accepts[&GroupId(0)],
            (Ballot::new(2, ProcessId(1)), Timestamp::new(9, GroupId(0)))
        );
    }

    #[test]
    fn quorum_detection_requires_all_groups() {
        let mut r = MessageRecord::new(app_msg());
        let mut vector = BallotVector::new();
        vector.insert(GroupId(0), Ballot::new(1, ProcessId(0)));
        vector.insert(GroupId(1), Ballot::new(1, ProcessId(3)));
        r.record_accept(
            GroupId(0),
            Ballot::new(1, ProcessId(0)),
            Timestamp::new(3, GroupId(0)),
        );
        r.record_accept(
            GroupId(1),
            Ballot::new(1, ProcessId(3)),
            Timestamp::new(5, GroupId(1)),
        );

        r.record_ack(vector.clone(), GroupId(0), ProcessId(0));
        r.record_ack(vector.clone(), GroupId(0), ProcessId(1));
        assert_eq!(r.quorum_acked(&quorums(), None), None);

        r.record_ack(vector.clone(), GroupId(1), ProcessId(3));
        assert_eq!(r.quorum_acked(&quorums(), None), None);
        r.record_ack(vector.clone(), GroupId(1), ProcessId(4));
        assert_eq!(r.quorum_acked(&quorums(), None), Some(vector.clone()));

        // Requiring a specific acker filters vectors that lack it.
        assert_eq!(
            r.quorum_acked(&quorums(), Some((GroupId(0), ProcessId(2)))),
            None
        );
        assert_eq!(
            r.quorum_acked(&quorums(), Some((GroupId(0), ProcessId(0)))),
            Some(vector)
        );
    }

    #[test]
    fn acks_with_different_vectors_do_not_mix() {
        let mut r = MessageRecord::new(app_msg());
        r.record_accept(
            GroupId(0),
            Ballot::new(1, ProcessId(0)),
            Timestamp::new(3, GroupId(0)),
        );
        r.record_accept(
            GroupId(1),
            Ballot::new(1, ProcessId(3)),
            Timestamp::new(5, GroupId(1)),
        );
        let mut v1 = BallotVector::new();
        v1.insert(GroupId(0), Ballot::new(1, ProcessId(0)));
        v1.insert(GroupId(1), Ballot::new(1, ProcessId(3)));
        let mut v2 = v1.clone();
        v2.insert(GroupId(1), Ballot::new(2, ProcessId(4)));

        r.record_ack(v1.clone(), GroupId(0), ProcessId(0));
        r.record_ack(v1.clone(), GroupId(0), ProcessId(1));
        r.record_ack(v2.clone(), GroupId(1), ProcessId(3));
        r.record_ack(v2.clone(), GroupId(1), ProcessId(4));
        // Neither vector alone has quorums in both groups.
        assert_eq!(r.quorum_acked(&quorums(), None), None);
    }

    #[test]
    fn stale_ack_quorum_does_not_shadow_the_live_one() {
        // A destination group changed leaders mid-round: a full quorum of
        // acks exists under the old vector (sorts first in the ack map) and
        // another under the current one. The old vector no longer matches
        // the recorded ACCEPTs, so the current vector must win — returning
        // the stale one would make the caller conclude "no quorum" forever.
        let mut r = MessageRecord::new(app_msg());
        let mut stale = BallotVector::new();
        stale.insert(GroupId(0), Ballot::new(1, ProcessId(0)));
        stale.insert(GroupId(1), Ballot::new(1, ProcessId(3)));
        let mut live = BallotVector::new();
        live.insert(GroupId(0), Ballot::new(1, ProcessId(1)));
        live.insert(GroupId(1), Ballot::new(1, ProcessId(3)));
        assert!(stale < live, "the stale vector must sort first to shadow");

        // Accepts reflect the new group-0 leader.
        r.record_accept(
            GroupId(0),
            Ballot::new(1, ProcessId(1)),
            Timestamp::new(5, GroupId(0)),
        );
        r.record_accept(
            GroupId(1),
            Ballot::new(1, ProcessId(3)),
            Timestamp::new(8, GroupId(1)),
        );

        // Complete quorums under both vectors.
        r.record_ack(stale.clone(), GroupId(0), ProcessId(0));
        r.record_ack(stale.clone(), GroupId(0), ProcessId(2));
        r.record_ack(stale.clone(), GroupId(1), ProcessId(3));
        r.record_ack(stale.clone(), GroupId(1), ProcessId(4));
        r.record_ack(live.clone(), GroupId(0), ProcessId(0));
        r.record_ack(live.clone(), GroupId(0), ProcessId(1));
        r.record_ack(live.clone(), GroupId(1), ProcessId(3));
        r.record_ack(live.clone(), GroupId(1), ProcessId(4));

        assert_eq!(r.quorum_acked(&quorums(), None), Some(live));
    }

    #[test]
    fn duplicate_acks_count_once() {
        let mut r = MessageRecord::new(app_msg());
        let mut v = BallotVector::new();
        v.insert(GroupId(0), Ballot::new(1, ProcessId(0)));
        v.insert(GroupId(1), Ballot::new(1, ProcessId(3)));
        assert_eq!(r.record_ack(v.clone(), GroupId(0), ProcessId(0)), 1);
        assert_eq!(r.record_ack(v.clone(), GroupId(0), ProcessId(0)), 1);
        assert_eq!(r.record_ack(v, GroupId(0), ProcessId(1)), 2);
    }

    #[test]
    fn snapshot_round_trip_drops_transient_state() {
        let mut r = MessageRecord::new(app_msg());
        r.phase = Phase::Committed;
        r.local_ts = Timestamp::new(1, GroupId(0));
        r.global_ts = Timestamp::new(2, GroupId(1));
        r.delivered = true;
        r.record_accept(
            GroupId(0),
            Ballot::new(1, ProcessId(0)),
            Timestamp::new(1, GroupId(0)),
        );
        let snap = r.snapshot();
        let back = MessageRecord::from_snapshot(snap);
        assert_eq!(back.phase, Phase::Committed);
        assert_eq!(back.local_ts, Timestamp::new(1, GroupId(0)));
        assert_eq!(back.global_ts, Timestamp::new(2, GroupId(1)));
        assert!(!back.delivered, "delivery flag is not carried over");
        assert!(back.accepts.is_empty());
        assert!(back.acks.is_empty());
    }
}
