//! Wire messages of the white-box atomic multicast protocol (Figure 4).
//!
//! Message names follow the paper: `MULTICAST`, `ACCEPT`, `ACCEPT_ACK`,
//! `DELIVER` for normal operation and `NEWLEADER`, `NEWLEADER_ACK`,
//! `NEW_STATE`, `NEWSTATE_ACK` for leader recovery. Two extra message kinds do
//! not appear in the pseudocode but are needed by a practical implementation:
//! `Heartbeat` (the leader-monitoring oracle the paper delegates to a failure
//! detector) and `ClientReply` (the reply the first delivering replica sends
//! to the multicasting client, which the paper's evaluation methodology
//! assumes when measuring client-perceived latency).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use wbam_types::{AppMessage, Ballot, Checkpoint, GroupId, MsgId, Phase, Timestamp};

/// A per-message vector of the ballots in which each destination group's
/// leader issued its local timestamp proposal (`Bal` in Figure 4).
///
/// `ACCEPT_ACK` messages are tagged with this vector; a leader only counts
/// acknowledgements whose vectors match, which guarantees that they refer to
/// the same set of local timestamp proposals (Invariant 1).
pub type BallotVector = BTreeMap<GroupId, Ballot>;

/// Snapshot of one message's state, exchanged during leader recovery inside
/// [`StateSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordSnapshot {
    /// The application message itself (recovery must be able to re-deliver it).
    pub msg: AppMessage,
    /// The phase of the message at the snapshotting process.
    pub phase: Phase,
    /// The local timestamp, if one was assigned.
    pub local_ts: Timestamp,
    /// The global timestamp, if known.
    pub global_ts: Timestamp,
}

/// Snapshot of a process's per-message protocol state (the `Phase`, `LocalTS`
/// and `GlobalTS` arrays of Figure 3), exchanged in `NEWLEADER_ACK` and
/// `NEW_STATE` messages.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StateSnapshot {
    /// Per-message state; messages still in the `START` phase are omitted.
    pub records: BTreeMap<MsgId, RecordSnapshot>,
}

impl StateSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        StateSnapshot::default()
    }

    /// Number of messages captured in the snapshot.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot contains no messages.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// One message's entry inside an [`WhiteBoxMsg::AcceptBatch`]: the proposal a
/// leader would otherwise have sent as a standalone `ACCEPT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceptEntry {
    /// The application message.
    pub msg: AppMessage,
    /// The proposed local timestamp of the message at the batching group.
    pub local_ts: Timestamp,
}

/// One message's entry inside an [`WhiteBoxMsg::DeliverBatch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliverEntry {
    /// The application message.
    pub msg: AppMessage,
    /// The message's local timestamp at the delivering group.
    pub local_ts: Timestamp,
    /// The message's global timestamp.
    pub global_ts: Timestamp,
}

/// Wire messages of the white-box protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WhiteBoxMsg {
    /// `MULTICAST(m)`: a client (or a retrying leader) asks the leaders of the
    /// destination groups to order `m` (Figure 4, lines 1–2 and 32–34).
    Multicast {
        /// The application message.
        msg: AppMessage,
    },
    /// `ACCEPT(m, g, b, lts)`: the leader of group `g` proposes local
    /// timestamp `lts` for `m` in ballot `b`, addressed to every process of
    /// every destination group (Figure 4, line 9). Analogous to Paxos "2a".
    Accept {
        /// The application message (carried so that every destination replica
        /// learns the payload).
        msg: AppMessage,
        /// The proposing group.
        group: GroupId,
        /// The ballot of the proposing leader.
        ballot: Ballot,
        /// The proposed local timestamp of `m` at `group`.
        local_ts: Timestamp,
    },
    /// `ACCEPT_ACK(m, g, Bal)`: a process of group `g` acknowledges having
    /// stored the local timestamps of `m` proposed in the ballot vector `Bal`
    /// (Figure 4, line 16). Analogous to Paxos "2b".
    AcceptAck {
        /// The acknowledged message.
        msg_id: MsgId,
        /// The acknowledging process's group.
        group: GroupId,
        /// The ballots in which each destination group's proposal was made.
        ballots: BallotVector,
    },
    /// Batched `ACCEPT`: the leader of `group` proposes the local timestamps
    /// of *several* messages in one wire message (one ballot, one network
    /// round for the whole batch). Semantically equivalent to sending one
    /// [`WhiteBoxMsg::Accept`] per entry, but it amortises the per-message
    /// network and CPU cost of the ordering round. Batching is this
    /// implementation's extension; Figure 4 of the paper is per-message.
    AcceptBatch {
        /// The proposing group.
        group: GroupId,
        /// The ballot of the proposing leader (shared by every entry).
        ballot: Ballot,
        /// The batched proposals. Each recipient only ever receives entries
        /// for messages addressed to its own group (genuineness).
        entries: Vec<AcceptEntry>,
    },
    /// Batched `ACCEPT_ACK`: a process of group `group` acknowledges the
    /// stored local timestamps of several messages at once. Equivalent to one
    /// [`WhiteBoxMsg::AcceptAck`] per entry.
    AcceptAckBatch {
        /// The acknowledging process's group.
        group: GroupId,
        /// `(message, ballot vector)` pairs, one per acknowledged message.
        entries: Vec<(MsgId, BallotVector)>,
    },
    /// `DELIVER(m, b, lts, gts)`: the leader of a group instructs its
    /// followers to deliver `m` with global timestamp `gts` (Figure 4,
    /// line 23).
    Deliver {
        /// The application message.
        msg: AppMessage,
        /// The leader's ballot.
        ballot: Ballot,
        /// The message's local timestamp at this group.
        local_ts: Timestamp,
        /// The message's global timestamp.
        global_ts: Timestamp,
    },
    /// Batched `DELIVER`: the leader instructs its followers to deliver
    /// several committed messages in one wire message. Entries are ordered by
    /// increasing global timestamp; handling them in order is equivalent to
    /// handling one [`WhiteBoxMsg::Deliver`] per entry.
    DeliverBatch {
        /// The leader's ballot.
        ballot: Ballot,
        /// The batched deliveries, in increasing global-timestamp order.
        entries: Vec<DeliverEntry>,
    },
    /// `NEWLEADER(b)`: a prospective leader asks its group members to join
    /// ballot `b` (Figure 4, line 36). Analogous to Paxos "1a".
    NewLeader {
        /// The proposed ballot.
        ballot: Ballot,
    },
    /// `NEWLEADER_ACK(b, cballot, checkpoint, suffix)`: a group member votes
    /// for the new leader and reports its protocol state (Figure 4, line 41)
    /// as *checkpoint + suffix*: the checkpoint carries the member's clock,
    /// delivery progress, watermarks and delivered-message filter, and the
    /// snapshot carries only the records that survived compaction. Analogous
    /// to Paxos "1b".
    NewLeaderAck {
        /// The ballot being joined.
        ballot: Ballot,
        /// The last ballot whose leader this process synchronised with.
        cballot: Ballot,
        /// The member's ordering-layer checkpoint (clock, watermarks,
        /// `max_delivered_gts`, delivered filter).
        checkpoint: Checkpoint,
        /// The member's resident per-message state (the suffix above its
        /// watermark; the whole history when compaction is disabled).
        snapshot: StateSnapshot,
    },
    /// `NEW_STATE(b, checkpoint, suffix)`: the new leader installs its
    /// recovered state at a follower (Figure 4, line 56). With compaction
    /// this *is* the catch-up state transfer: a follower whose delivery
    /// progress lies below the checkpoint's watermark installs the checkpoint
    /// (jumping its progress to the watermark — the history below it is
    /// pruned everywhere) and re-delivers only the suffix, instead of
    /// replaying per-message history.
    NewState {
        /// The new ballot.
        ballot: Ballot,
        /// The recovered ordering-layer checkpoint (clock, watermarks,
        /// delivered filter, delivery progress of the new leader).
        checkpoint: Checkpoint,
        /// The recovered per-message state above the watermark.
        snapshot: StateSnapshot,
    },
    /// `NEWSTATE_ACK(b)`: a follower confirms it installed the new state
    /// (Figure 4, line 62).
    NewStateAck {
        /// The acknowledged ballot.
        ballot: Ballot,
    },
    /// Leader heartbeat, used by followers to monitor leader liveness. The
    /// paper delegates this to an external leader-election service (§IV,
    /// "Leader recovery"); we implement a simple timeout-based one.
    Heartbeat {
        /// The sender's current ballot.
        ballot: Ballot,
    },
    /// `STABLE_REPORT(g, gts)`: a group member reports its delivery progress
    /// (`max_delivered_gts`) to its leader, every
    /// [`compaction_interval`](crate::ReplicaConfig::compaction_interval)
    /// deliveries. The leader folds the reports into the group's delivery
    /// watermark: the minimum progress over all members. Not part of the
    /// paper's Figure 4 — log compaction is this implementation's extension
    /// (production atomic multicast requires log trimming plus
    /// checkpoint-based recovery).
    StableReport {
        /// The reporting member's group.
        group: GroupId,
        /// The member's highest delivered global timestamp; every message
        /// addressed to the group with a timestamp at or below it has been
        /// delivered by this member (delivery is in timestamp order).
        delivered_gts: Timestamp,
    },
    /// `STABLE_ADVANCE(W)`: a leader disseminates its current watermark
    /// knowledge — for its own group (computed from `STABLE_REPORT`s) and for
    /// remote groups (learnt from their leaders' advances). Sent to the
    /// group's members (who prune records covered by the watermarks of every
    /// destination group) and to remote leaders (cross-group dissemination,
    /// needed before multi-group records may be pruned).
    StableAdvance {
        /// Per-group delivery watermarks (pointwise-monotone: receivers merge
        /// by maximum).
        watermarks: BTreeMap<GroupId, Timestamp>,
    },
    /// `STABLE_PRUNED(m, W)`: the answer a replica gives a *peer replica*
    /// that re-sent `MULTICAST(m)` for a record this replica has pruned. The
    /// prune rule guarantees `m` was delivered (with its final, quorum-fixed
    /// global timestamp) at every member of this group and is covered by the
    /// watermark of every destination group — so the retrying leader's
    /// pending copy can never commit differently and can never be needed
    /// again. On receipt the retrier drops its pending record as installed
    /// history (excused below the watermark, like any state transfer) and
    /// unblocks its delivery convoy; without this notice the retrier would
    /// retry into pruned history forever while its convoy stalls behind the
    /// eternally pending record.
    StablePruned {
        /// The pruned message.
        msg_id: MsgId,
        /// The replying replica's watermark knowledge (covers `m`).
        watermarks: BTreeMap<GroupId, Timestamp>,
    },
    /// Reply sent by a delivering replica to the original sender of the
    /// message, carrying the global timestamp it was delivered with. Used by
    /// closed-loop clients to measure client-perceived latency, matching the
    /// paper's evaluation methodology (§II, first-delivery latency).
    ClientReply {
        /// The delivered message.
        msg_id: MsgId,
        /// The group of the replying replica.
        group: GroupId,
        /// The global timestamp the message was delivered with.
        global_ts: Timestamp,
    },
}

impl WhiteBoxMsg {
    /// A short human-readable tag for logging and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            WhiteBoxMsg::Multicast { .. } => "MULTICAST",
            WhiteBoxMsg::Accept { .. } => "ACCEPT",
            WhiteBoxMsg::AcceptAck { .. } => "ACCEPT_ACK",
            WhiteBoxMsg::AcceptBatch { .. } => "ACCEPT_BATCH",
            WhiteBoxMsg::AcceptAckBatch { .. } => "ACCEPT_ACK_BATCH",
            WhiteBoxMsg::Deliver { .. } => "DELIVER",
            WhiteBoxMsg::DeliverBatch { .. } => "DELIVER_BATCH",
            WhiteBoxMsg::NewLeader { .. } => "NEWLEADER",
            WhiteBoxMsg::NewLeaderAck { .. } => "NEWLEADER_ACK",
            WhiteBoxMsg::NewState { .. } => "NEW_STATE",
            WhiteBoxMsg::NewStateAck { .. } => "NEWSTATE_ACK",
            WhiteBoxMsg::Heartbeat { .. } => "HEARTBEAT",
            WhiteBoxMsg::StableReport { .. } => "STABLE_REPORT",
            WhiteBoxMsg::StableAdvance { .. } => "STABLE_ADVANCE",
            WhiteBoxMsg::StablePruned { .. } => "STABLE_PRUNED",
            WhiteBoxMsg::ClientReply { .. } => "CLIENT_REPLY",
        }
    }

    /// The application message identifier this protocol message is about, when
    /// it concerns a single application message. Batch messages concern many
    /// messages and return `None` (see [`WhiteBoxMsg::subjects`]).
    pub fn subject(&self) -> Option<MsgId> {
        match self {
            WhiteBoxMsg::Multicast { msg } | WhiteBoxMsg::Accept { msg, .. } => Some(msg.id),
            WhiteBoxMsg::Deliver { msg, .. } => Some(msg.id),
            WhiteBoxMsg::AcceptAck { msg_id, .. }
            | WhiteBoxMsg::ClientReply { msg_id, .. }
            | WhiteBoxMsg::StablePruned { msg_id, .. } => Some(*msg_id),
            _ => None,
        }
    }

    /// All application message identifiers this protocol message is about:
    /// the single subject for per-message variants, every entry for batches.
    pub fn subjects(&self) -> Vec<MsgId> {
        match self {
            WhiteBoxMsg::AcceptBatch { entries, .. } => entries.iter().map(|e| e.msg.id).collect(),
            WhiteBoxMsg::AcceptAckBatch { entries, .. } => {
                entries.iter().map(|(id, _)| *id).collect()
            }
            WhiteBoxMsg::DeliverBatch { entries, .. } => entries.iter().map(|e| e.msg.id).collect(),
            other => other.subject().into_iter().collect(),
        }
    }
}

/// Builds the ballot vector carried by `ACCEPT_ACK` from the per-group accepts
/// a process has received.
pub fn ballot_vector(accepts: &BTreeMap<GroupId, (Ballot, Timestamp)>) -> BallotVector {
    accepts.iter().map(|(g, (b, _))| (*g, *b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_types::{Destination, Payload, ProcessId};

    fn msg() -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(9), 1),
            Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
            Payload::from("x"),
        )
    }

    #[test]
    fn kinds_and_subjects() {
        let m = msg();
        assert_eq!(
            WhiteBoxMsg::Multicast { msg: m.clone() }.kind(),
            "MULTICAST"
        );
        assert_eq!(
            WhiteBoxMsg::Multicast { msg: m.clone() }.subject(),
            Some(m.id)
        );
        let acc = WhiteBoxMsg::Accept {
            msg: m.clone(),
            group: GroupId(0),
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(1, GroupId(0)),
        };
        assert_eq!(acc.kind(), "ACCEPT");
        assert_eq!(acc.subject(), Some(m.id));
        assert_eq!(
            WhiteBoxMsg::Heartbeat {
                ballot: Ballot::BOTTOM
            }
            .subject(),
            None
        );
        assert_eq!(
            WhiteBoxMsg::NewLeader {
                ballot: Ballot::new(2, ProcessId(1))
            }
            .kind(),
            "NEWLEADER"
        );
    }

    #[test]
    fn ballot_vector_from_accepts() {
        let mut accepts = BTreeMap::new();
        accepts.insert(
            GroupId(0),
            (Ballot::new(1, ProcessId(0)), Timestamp::new(4, GroupId(0))),
        );
        accepts.insert(
            GroupId(1),
            (Ballot::new(3, ProcessId(4)), Timestamp::new(2, GroupId(1))),
        );
        let v = ballot_vector(&accepts);
        assert_eq!(v.len(), 2);
        assert_eq!(v[&GroupId(0)], Ballot::new(1, ProcessId(0)));
        assert_eq!(v[&GroupId(1)], Ballot::new(3, ProcessId(4)));
    }

    #[test]
    fn snapshot_basics() {
        let mut s = StateSnapshot::new();
        assert!(s.is_empty());
        s.records.insert(
            msg().id,
            RecordSnapshot {
                msg: msg(),
                phase: Phase::Accepted,
                local_ts: Timestamp::new(1, GroupId(0)),
                global_ts: Timestamp::BOTTOM,
            },
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn messages_round_trip_through_serde() {
        let m = WhiteBoxMsg::Deliver {
            msg: msg(),
            ballot: Ballot::new(1, ProcessId(0)),
            local_ts: Timestamp::new(1, GroupId(0)),
            global_ts: Timestamp::new(2, GroupId(1)),
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: WhiteBoxMsg = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
