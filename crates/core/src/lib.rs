//! White-box atomic multicast — the protocol contributed by the paper
//! *"White-Box Atomic Multicast"* (Gotsman, Lefort, Chockler; DSN 2019).
//!
//! # What the protocol does
//!
//! Atomic multicast delivers application messages to multiple *groups* of
//! processes according to one total order, with each group receiving the
//! projection of that order onto the messages addressed to it. The protocol
//! implemented here is *genuine* — only the destination groups of a message
//! participate in ordering it — and fault tolerant: each group of `2f + 1`
//! replicas survives up to `f` crashes.
//!
//! Instead of running Skeen's timestamp-based multicast on top of black-box
//! consensus (which costs 6 message delays without collisions), the white-box
//! protocol weaves Skeen's protocol and a Paxos-like replication scheme into a
//! single protocol: the leaders of the destination groups route their local
//! timestamp proposals through quorums of *all* destination groups in one
//! round trip (`ACCEPT` / `ACCEPT_ACK`), which simultaneously replicates the
//! timestamp assignment and speculatively advances the followers' clocks. The
//! result is a collision-free delivery latency of **3δ** at the destination
//! leaders (4δ at followers) and a worst-case failure-free latency of **5δ**.
//!
//! # Crate layout
//!
//! * [`WhiteBoxReplica`] — one group member (leader or follower), implementing
//!   Figure 4 of the paper: normal operation, leader recovery and message
//!   recovery, plus a timeout-based leader-election oracle.
//! * [`MulticastClient`] — a client process that submits messages, tracks
//!   delivery replies and retries lost messages.
//! * [`messages`] — the wire protocol.
//! * [`invariants`] — checkers for the correctness invariants of Figure 6,
//!   used extensively by the test-suite.
//!
//! Both node types are **sans-IO** state machines implementing
//! [`Node`](wbam_types::Node); they can be driven by the deterministic
//! simulator in `wbam-simnet` or by the threaded runtime in `wbam-runtime`.
//!
//! # Example
//!
//! Propose a message at a leader and observe the `ACCEPT`s it sends:
//!
//! ```
//! use std::time::Duration;
//! use wbam_core::{ReplicaConfig, WhiteBoxReplica};
//! use wbam_types::{
//!     Action, AppMessage, ClusterConfig, Destination, Event, GroupId, MsgId, Node, Payload,
//!     ProcessId,
//! };
//!
//! let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
//! let mut leader = WhiteBoxReplica::new(
//!     ReplicaConfig::new(ProcessId(0), GroupId(0), cluster.clone()).without_auto_election(),
//! );
//! let msg = AppMessage::new(
//!     MsgId::new(ProcessId(6), 0),
//!     Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
//!     Payload::from("hello"),
//! );
//! let actions = leader.on_event(Duration::ZERO, Event::Multicast(msg));
//! let accepts = actions
//!     .iter()
//!     .filter(|a| matches!(a, Action::Send { .. }))
//!     .count();
//! assert_eq!(accepts, 6); // every replica of both destination groups
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod config;
pub mod invariants;
pub mod messages;
pub mod record;
pub mod replica;

pub use client::{CompletedMulticast, MulticastClient};
pub use config::{ClientConfig, ReplicaConfig};
pub use messages::{
    AcceptEntry, BallotVector, DeliverEntry, RecordSnapshot, StateSnapshot, WhiteBoxMsg,
};
pub use record::MessageRecord;
pub use replica::{Status, WhiteBoxReplica};
