//! Configuration of white-box multicast replicas and clients.

use std::time::Duration;

use wbam_types::{ClusterConfig, GroupId, ProcessId};

/// Configuration of a [`WhiteBoxReplica`](crate::WhiteBoxReplica).
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// The identity of this replica.
    pub id: ProcessId,
    /// The group this replica belongs to (`g0` in the paper's pseudocode).
    pub group: GroupId,
    /// The static cluster topology.
    pub cluster: ClusterConfig,
    /// When a replica delivers an application message, send a
    /// [`WhiteBoxMsg::ClientReply`](crate::messages::WhiteBoxMsg::ClientReply)
    /// back to the message's original sender. Closed-loop clients use the
    /// reply to submit their next request; open-loop workloads can disable it
    /// to reduce message counts.
    pub notify_sender: bool,
    /// How long a leader waits for a pending (proposed/accepted) message to
    /// commit before re-sending `MULTICAST` to all destination leaders
    /// (the `retry(m)` function of Figure 4, line 32).
    pub retry_timeout: Duration,
    /// Interval at which a leader sends heartbeats to its followers; also the
    /// granularity of follower-side leader monitoring. Set to zero to disable
    /// the built-in leader-election oracle (tests then drive elections
    /// explicitly via [`Event::BecomeLeader`](wbam_types::Event::BecomeLeader)).
    pub heartbeat_interval: Duration,
    /// How long a follower waits without hearing from its leader before it
    /// suspects the leader and starts recovery. Followers further down the
    /// group member list wait proportionally longer, so that a single
    /// follower takes over first.
    pub election_timeout: Duration,
    /// Maximum number of multicasts the leader accumulates before flushing
    /// them as one batched `ACCEPT` round
    /// ([`WhiteBoxMsg::AcceptBatch`](crate::messages::WhiteBoxMsg::AcceptBatch)).
    /// Only meaningful when [`batch_delay`](Self::batch_delay) is non-zero; a
    /// full buffer flushes immediately without waiting for the timer.
    pub max_batch: usize,
    /// How long the leader waits for more multicasts to fill a batch before
    /// flushing a partial one. `Duration::ZERO` (the default) disables
    /// batching entirely and preserves the paper's per-message behaviour of
    /// Figure 4 — and with it the Table 1 / Figure 5 latency results.
    pub batch_delay: Duration,
    /// Paper Figure 4, line 14: on receiving a full set of `ACCEPT`s, advance
    /// the clock past the (future) global timestamp *speculatively*, before
    /// the timestamps are known to be durable. Disabling this reproduces the
    /// behaviour of black-box designs whose failure-free latency degrades to
    /// roughly twice the collision-free latency; it exists only for the
    /// ablation experiment A1 and must stay `true` in production use.
    pub speculative_clock_update: bool,
    /// Record compaction: every `compaction_interval` deliveries a member
    /// reports its delivery progress to its leader (`STABLE_REPORT`), the
    /// leader recomputes the group's delivery watermark and disseminates it
    /// (`STABLE_ADVANCE`), and records below the watermark of *every* one of
    /// their destination groups are pruned. Zero (the default) disables
    /// compaction and keeps the unbounded paper behaviour.
    pub compaction_interval: u64,
    /// How many of the most recently delivered records are retained even when
    /// the watermark covers them — a service window for duplicate
    /// `MULTICAST`s that can still be answered from the record map (older
    /// duplicates fall back to the bounded delivered-message filter).
    pub compaction_lag: usize,
}

impl ReplicaConfig {
    /// Creates a replica configuration with sensible defaults for timeouts.
    ///
    /// Defaults: sender notification on, 100 ms retry timeout, 50 ms
    /// heartbeats, 250 ms election timeout, speculative clock update enabled.
    pub fn new(id: ProcessId, group: GroupId, cluster: ClusterConfig) -> Self {
        ReplicaConfig {
            id,
            group,
            cluster,
            notify_sender: true,
            retry_timeout: Duration::from_millis(100),
            heartbeat_interval: Duration::from_millis(50),
            election_timeout: Duration::from_millis(250),
            max_batch: 1,
            batch_delay: Duration::ZERO,
            speculative_clock_update: true,
            compaction_interval: 0,
            compaction_lag: 0,
        }
    }

    /// Enables record compaction: delivery watermarks are exchanged every
    /// `interval` deliveries and delivered records below every destination
    /// group's watermark are pruned, keeping the most recent `lag` delivered
    /// records resident as a duplicate-service window. A zero `interval`
    /// disables compaction (the paper's unbounded behaviour).
    pub fn with_compaction(mut self, interval: u64, lag: usize) -> Self {
        self.compaction_interval = interval;
        self.compaction_lag = lag;
        self
    }

    /// Whether record compaction is enabled.
    pub fn compaction_enabled(&self) -> bool {
        self.compaction_interval > 0
    }

    /// Enables batched ordering: the leader accumulates up to `max_batch`
    /// multicasts (flushing earlier after `batch_delay`) and runs a single
    /// `ACCEPT`/`ACCEPT_ACK` round for the whole batch. Passing a zero
    /// `batch_delay` disables batching again (per-message behaviour).
    pub fn with_batching(mut self, max_batch: usize, batch_delay: Duration) -> Self {
        self.max_batch = max_batch.max(1);
        self.batch_delay = batch_delay;
        self
    }

    /// Whether batched ordering is enabled.
    pub fn batching_enabled(&self) -> bool {
        !self.batch_delay.is_zero() && self.max_batch > 1
    }

    /// Disables the built-in heartbeat/election machinery; leader changes then
    /// only happen when the runtime injects
    /// [`Event::BecomeLeader`](wbam_types::Event::BecomeLeader).
    pub fn without_auto_election(mut self) -> Self {
        self.heartbeat_interval = Duration::ZERO;
        self
    }

    /// Disables delivery replies to message senders.
    pub fn without_sender_notification(mut self) -> Self {
        self.notify_sender = false;
        self
    }

    /// Disables the speculative clock update of Figure 4 line 14 (ablation A1).
    pub fn without_speculative_clock_update(mut self) -> Self {
        self.speculative_clock_update = false;
        self
    }

    /// Sets the retry timeout.
    pub fn with_retry_timeout(mut self, timeout: Duration) -> Self {
        self.retry_timeout = timeout;
        self
    }

    /// Sets heartbeat interval and election timeout together.
    pub fn with_election_timeouts(mut self, heartbeat: Duration, election: Duration) -> Self {
        self.heartbeat_interval = heartbeat;
        self.election_timeout = election;
        self
    }

    /// Whether the automatic leader election machinery is enabled.
    pub fn auto_election_enabled(&self) -> bool {
        !self.heartbeat_interval.is_zero()
    }
}

/// Configuration of a [`MulticastClient`](crate::MulticastClient).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The identity of this client.
    pub id: ProcessId,
    /// The static cluster topology.
    pub cluster: ClusterConfig,
    /// How long the client waits for a delivery reply before re-sending the
    /// `MULTICAST` message. On the first retry the client falls back to
    /// sending to *all* members of each destination group, which also handles
    /// leader changes it has not heard about.
    pub retry_timeout: Duration,
}

impl ClientConfig {
    /// Creates a client configuration with a 500 ms retry timeout.
    pub fn new(id: ProcessId, cluster: ClusterConfig) -> Self {
        ClientConfig {
            id,
            cluster,
            retry_timeout: Duration::from_millis(500),
        }
    }

    /// Sets the retry timeout.
    pub fn with_retry_timeout(mut self, timeout: Duration) -> Self {
        self.retry_timeout = timeout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterConfig {
        ClusterConfig::builder().groups(2, 3).clients(1).build()
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = ReplicaConfig::new(ProcessId(0), GroupId(0), cluster());
        assert!(cfg.notify_sender);
        assert!(cfg.speculative_clock_update);
        assert!(cfg.auto_election_enabled());
        assert!(cfg.retry_timeout > Duration::ZERO);
    }

    #[test]
    fn builder_style_modifiers() {
        let cfg = ReplicaConfig::new(ProcessId(0), GroupId(0), cluster())
            .without_auto_election()
            .without_sender_notification()
            .without_speculative_clock_update()
            .with_retry_timeout(Duration::from_millis(7));
        assert!(!cfg.auto_election_enabled());
        assert!(!cfg.notify_sender);
        assert!(!cfg.speculative_clock_update);
        assert_eq!(cfg.retry_timeout, Duration::from_millis(7));
    }

    #[test]
    fn election_timeouts_setter() {
        let cfg = ReplicaConfig::new(ProcessId(0), GroupId(0), cluster())
            .with_election_timeouts(Duration::from_millis(10), Duration::from_millis(40));
        assert_eq!(cfg.heartbeat_interval, Duration::from_millis(10));
        assert_eq!(cfg.election_timeout, Duration::from_millis(40));
    }

    #[test]
    fn client_config_defaults() {
        let cfg = ClientConfig::new(ProcessId(6), cluster())
            .with_retry_timeout(Duration::from_millis(123));
        assert_eq!(cfg.retry_timeout, Duration::from_millis(123));
        assert_eq!(cfg.id, ProcessId(6));
    }
}
