//! A multicasting client for the white-box protocol.
//!
//! Clients are ordinary processes that submit application messages for
//! multicast (Figure 4, lines 1–2) and, in a practical deployment, wait for a
//! reply from the first replica that delivers the message. The client here
//! implements the paper's message-recovery rule for multicaster failures from
//! the other side: if no reply arrives within a timeout it re-sends the
//! `MULTICAST` message, falling back to contacting *every* member of each
//! destination group so that it also discovers new leaders (§IV, "Normal
//! operation": "the multicasting process can always send the message to all
//! the processes in a given group to find out who its leader is").

use std::collections::BTreeMap;
use std::time::Duration;

use wbam_types::{
    Action, AppMessage, DeliveredMessage, Event, GroupId, MsgId, Node, ProcessId, TimerId,
    Timestamp,
};

use crate::config::ClientConfig;
use crate::messages::WhiteBoxMsg;

/// State of one in-flight multicast at the client.
#[derive(Debug, Clone)]
struct PendingMulticast {
    msg: AppMessage,
    attempts: u32,
    submitted_at: Duration,
}

/// Record of a completed multicast, for inspection by tests and the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedMulticast {
    /// The message identifier.
    pub msg_id: MsgId,
    /// The group of the first replica that replied.
    pub first_reply_group: GroupId,
    /// The global timestamp the message was delivered with.
    pub global_ts: Timestamp,
    /// Time from submission to the first reply, as observed by the client.
    pub latency: Duration,
}

/// A client process that multicasts application messages and tracks replies.
pub struct MulticastClient {
    config: ClientConfig,
    cur_leader: BTreeMap<GroupId, ProcessId>,
    next_seq: u64,
    pending: BTreeMap<MsgId, PendingMulticast>,
    completed: Vec<CompletedMulticast>,
}

impl MulticastClient {
    /// Creates a client from its configuration.
    pub fn new(config: ClientConfig) -> Self {
        let cur_leader = config.cluster.initial_leaders();
        MulticastClient {
            config,
            cur_leader,
            next_seq: 0,
            pending: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// The next message identifier this client will use.
    pub fn next_msg_id(&self) -> MsgId {
        MsgId::new(self.config.id, self.next_seq)
    }

    /// Number of multicasts still awaiting a reply.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Multicasts completed so far (first reply received), in completion order.
    pub fn completed(&self) -> &[CompletedMulticast] {
        &self.completed
    }

    fn timer_for(msg_id: MsgId) -> TimerId {
        TimerId(msg_id.seq)
    }

    fn send_to_leaders(&self, msg: &AppMessage) -> Vec<Action<WhiteBoxMsg>> {
        msg.dest
            .iter()
            .filter_map(|g| self.cur_leader.get(&g).copied())
            .map(|leader| Action::send(leader, WhiteBoxMsg::Multicast { msg: msg.clone() }))
            .collect()
    }

    fn send_to_all_members(&self, msg: &AppMessage) -> Vec<Action<WhiteBoxMsg>> {
        let mut actions = Vec::new();
        for g in msg.dest.iter() {
            if let Some(gc) = self.config.cluster.group(g) {
                for member in gc.members() {
                    actions.push(Action::send(
                        *member,
                        WhiteBoxMsg::Multicast { msg: msg.clone() },
                    ));
                }
            }
        }
        actions
    }

    fn handle_submit(&mut self, now: Duration, msg: AppMessage) -> Vec<Action<WhiteBoxMsg>> {
        // Keep the per-client sequence counter ahead of any externally chosen id.
        self.next_seq = self.next_seq.max(msg.id.seq + 1);
        let mut actions = self.send_to_leaders(&msg);
        actions.push(Action::SetTimer {
            id: Self::timer_for(msg.id),
            delay: self.config.retry_timeout,
        });
        self.pending.insert(
            msg.id,
            PendingMulticast {
                msg,
                attempts: 0,
                submitted_at: now,
            },
        );
        actions
    }

    fn handle_reply(
        &mut self,
        now: Duration,
        msg_id: MsgId,
        group: GroupId,
        global_ts: Timestamp,
    ) -> Vec<Action<WhiteBoxMsg>> {
        let Some(pending) = self.pending.remove(&msg_id) else {
            return Vec::new();
        };
        let latency = now.saturating_sub(pending.submitted_at);
        self.completed.push(CompletedMulticast {
            msg_id,
            first_reply_group: group,
            global_ts,
            latency,
        });
        vec![
            Action::CancelTimer(Self::timer_for(msg_id)),
            // Surface the completion to the application driving this client.
            Action::Deliver(DeliveredMessage::with_timestamp(pending.msg, global_ts)),
        ]
    }

    fn handle_retry(&mut self, timer: TimerId) -> Vec<Action<WhiteBoxMsg>> {
        let msg_id = self
            .pending
            .keys()
            .copied()
            .find(|id| Self::timer_for(*id) == timer);
        let Some(msg_id) = msg_id else {
            return Vec::new();
        };
        let (attempts, msg) = {
            let pending = self.pending.get_mut(&msg_id).expect("pending entry exists");
            pending.attempts += 1;
            (pending.attempts, pending.msg.clone())
        };
        let mut actions = if attempts == 1 {
            // First retry: the leaders may simply not have received it.
            self.send_to_leaders(&msg)
        } else {
            // Later retries: contact every member to survive leader changes.
            self.send_to_all_members(&msg)
        };
        actions.push(Action::SetTimer {
            id: timer,
            delay: self.config.retry_timeout,
        });
        actions
    }
}

impl Node for MulticastClient {
    type Msg = WhiteBoxMsg;

    fn id(&self) -> ProcessId {
        self.config.id
    }

    fn on_event(&mut self, now: Duration, event: Event<WhiteBoxMsg>) -> Vec<Action<WhiteBoxMsg>> {
        match event {
            Event::Multicast(msg) => self.handle_submit(now, msg),
            Event::Timer { id, .. } => self.handle_retry(id),
            Event::Message { msg, .. } => match msg {
                WhiteBoxMsg::ClientReply {
                    msg_id,
                    group,
                    global_ts,
                } => self.handle_reply(now, msg_id, group, global_ts),
                // Clients ignore protocol traffic that is not addressed to them
                // semantically (e.g. a stray ACCEPT caused by misconfiguration).
                _ => Vec::new(),
            },
            // A restarted client lost its armed retry timers; re-arm one per
            // in-flight multicast (and re-send straight away — the original
            // sends may have died with the crash).
            Event::Restart => {
                let mut actions = Vec::new();
                let pending: Vec<AppMessage> =
                    self.pending.values().map(|p| p.msg.clone()).collect();
                for msg in pending {
                    actions.extend(self.send_to_leaders(&msg));
                    actions.push(Action::SetTimer {
                        id: Self::timer_for(msg.id),
                        delay: self.config.retry_timeout,
                    });
                }
                actions
            }
            Event::Init | Event::BecomeLeader => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_types::{ClusterConfig, Destination, Payload};

    fn cluster() -> ClusterConfig {
        ClusterConfig::builder().groups(2, 3).clients(1).build()
    }

    fn client() -> MulticastClient {
        MulticastClient::new(
            ClientConfig::new(ProcessId(6), cluster())
                .with_retry_timeout(Duration::from_millis(100)),
        )
    }

    fn msg(seq: u64, groups: &[u32]) -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId(6), seq),
            Destination::new(groups.iter().map(|g| GroupId(*g))).unwrap(),
            Payload::from("x"),
        )
    }

    #[test]
    fn submit_sends_to_destination_leaders() {
        let mut c = client();
        let actions = c.on_event(Duration::ZERO, Event::Multicast(msg(0, &[0, 1])));
        let targets: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send {
                    to,
                    msg: WhiteBoxMsg::Multicast { .. },
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![ProcessId(0), ProcessId(3)]);
        assert_eq!(c.pending_count(), 1);
        assert_eq!(c.next_msg_id(), MsgId::new(ProcessId(6), 1));
    }

    #[test]
    fn reply_completes_the_multicast_and_reports_latency() {
        let mut c = client();
        c.on_event(Duration::from_millis(5), Event::Multicast(msg(0, &[0])));
        let actions = c.on_event(
            Duration::from_millis(17),
            Event::message(
                ProcessId(0),
                WhiteBoxMsg::ClientReply {
                    msg_id: MsgId::new(ProcessId(6), 0),
                    group: GroupId(0),
                    global_ts: Timestamp::new(1, GroupId(0)),
                },
            ),
        );
        assert!(actions.iter().any(Action::is_delivery));
        assert_eq!(c.pending_count(), 0);
        assert_eq!(c.completed().len(), 1);
        assert_eq!(c.completed()[0].latency, Duration::from_millis(12));
        assert_eq!(c.completed()[0].first_reply_group, GroupId(0));
    }

    #[test]
    fn duplicate_replies_are_ignored() {
        let mut c = client();
        c.on_event(Duration::ZERO, Event::Multicast(msg(0, &[0])));
        let reply = WhiteBoxMsg::ClientReply {
            msg_id: MsgId::new(ProcessId(6), 0),
            group: GroupId(0),
            global_ts: Timestamp::new(1, GroupId(0)),
        };
        c.on_event(
            Duration::from_millis(1),
            Event::message(ProcessId(0), reply.clone()),
        );
        let actions = c.on_event(
            Duration::from_millis(2),
            Event::message(ProcessId(1), reply),
        );
        assert!(actions.is_empty());
        assert_eq!(c.completed().len(), 1);
    }

    #[test]
    fn first_retry_targets_leaders_then_falls_back_to_all_members() {
        let mut c = client();
        c.on_event(Duration::ZERO, Event::Multicast(msg(0, &[1])));
        let timer = TimerId(0);
        let retry1 = c.on_event(
            Duration::from_millis(100),
            Event::Timer {
                id: timer,
                now: Duration::from_millis(100),
            },
        );
        let targets1: Vec<_> = retry1
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets1, vec![ProcessId(3)]);
        let retry2 = c.on_event(
            Duration::from_millis(200),
            Event::Timer {
                id: timer,
                now: Duration::from_millis(200),
            },
        );
        let targets2: Vec<_> = retry2
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets2, vec![ProcessId(3), ProcessId(4), ProcessId(5)]);
    }

    #[test]
    fn retry_timer_for_completed_message_is_a_no_op() {
        let mut c = client();
        c.on_event(Duration::ZERO, Event::Multicast(msg(0, &[0])));
        c.on_event(
            Duration::from_millis(1),
            Event::message(
                ProcessId(0),
                WhiteBoxMsg::ClientReply {
                    msg_id: MsgId::new(ProcessId(6), 0),
                    group: GroupId(0),
                    global_ts: Timestamp::new(1, GroupId(0)),
                },
            ),
        );
        let actions = c.on_event(
            Duration::from_millis(100),
            Event::Timer {
                id: TimerId(0),
                now: Duration::from_millis(100),
            },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn unrelated_protocol_messages_are_ignored() {
        let mut c = client();
        let actions = c.on_event(
            Duration::ZERO,
            Event::message(
                ProcessId(0),
                WhiteBoxMsg::Heartbeat {
                    ballot: wbam_types::Ballot::BOTTOM,
                },
            ),
        );
        assert!(actions.is_empty());
    }
}
