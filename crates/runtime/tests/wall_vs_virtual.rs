//! Wall-vs-virtual equivalence: the same node, fed the same envelope/timer
//! script, produces the same delivery sequence whether the loop runs on a
//! real thread under the wall clock ([`InProcessCluster`]) or stepped under
//! the virtual clock ([`DeterministicRuntime`]). The clock abstraction must
//! change *when* things happen, never *what* happens.

use std::time::Duration;

use wbam_runtime::{DeterministicRuntime, InProcessCluster};
use wbam_types::{
    Action, AppMessage, DeliveredMessage, Destination, Event, GroupId, MsgId, Node, Payload,
    ProcessId, TimerId,
};

const NODE: ProcessId = ProcessId(0);

fn marker(seq: u64) -> AppMessage {
    AppMessage::new(
        MsgId::new(NODE, seq),
        Destination::single(GroupId(0)),
        Payload::from("timer-marker"),
    )
}

fn submission(seq: u64) -> AppMessage {
    AppMessage::new(
        MsgId::new(NODE, seq),
        Destination::single(GroupId(0)),
        Payload::from("submitted"),
    )
}

/// A deterministic scripted node: Init arms timer 1 (50 ms); timer 1
/// delivers a marker and arms timer 2 (another 50 ms); timer 2 delivers a
/// second marker; every multicast is delivered immediately. With the script
/// events spaced far apart, the delivery *sequence* is unambiguous under
/// both clocks even though wall time jitters.
struct ScriptNode;

impl Node for ScriptNode {
    type Msg = ();

    fn id(&self) -> ProcessId {
        NODE
    }

    fn on_event(&mut self, _now: Duration, event: Event<()>) -> Vec<Action<()>> {
        match event {
            Event::Init => vec![Action::SetTimer {
                id: TimerId(1),
                delay: Duration::from_millis(50),
            }],
            Event::Timer { id: TimerId(1), .. } => vec![
                Action::Deliver(DeliveredMessage {
                    msg: marker(1000),
                    global_ts: None,
                }),
                Action::SetTimer {
                    id: TimerId(2),
                    delay: Duration::from_millis(50),
                },
            ],
            Event::Timer { id: TimerId(2), .. } => vec![Action::Deliver(DeliveredMessage {
                msg: marker(1001),
                global_ts: None,
            })],
            Event::Multicast(msg) => vec![Action::Deliver(DeliveredMessage {
                msg,
                global_ts: None,
            })],
            _ => Vec::new(),
        }
    }
}

/// Expected sequence: timer 1 marker (t=50ms), timer 2 marker (t=100ms),
/// then the two scripted submissions (t=400ms, t=600ms).
fn expected() -> Vec<MsgId> {
    vec![
        marker(1000).id,
        marker(1001).id,
        submission(0).id,
        submission(1).id,
    ]
}

#[test]
fn wall_and_virtual_runs_deliver_the_same_sequence() {
    // Wall-clock run: a real thread, real sleeps. The sleeps are far from
    // every timer deadline, so scheduling jitter cannot reorder anything.
    let wall = InProcessCluster::spawn(vec![Box::new(ScriptNode)]);
    std::thread::sleep(Duration::from_millis(400));
    wall.submit(NODE, submission(0)).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    wall.submit(NODE, submission(1)).unwrap();
    let wall_deliveries = wall.wait_for_deliveries(4, Duration::from_secs(10));
    wall.shutdown();
    let wall_seq: Vec<MsgId> = wall_deliveries.iter().map(|d| d.delivery.msg.id).collect();

    // Virtual-clock run: the same node and the same script, stepped by the
    // deterministic scheduler (any seed — a single node leaves the scheduler
    // no delivery choices, which is exactly the point of the comparison).
    let mut virt = DeterministicRuntime::new(vec![Box::new(ScriptNode)], 0xE0_1DE5);
    virt.schedule_submit(Duration::from_millis(400), NODE, submission(0));
    virt.schedule_submit(Duration::from_millis(600), NODE, submission(1));
    virt.run(Duration::from_secs(2));
    let virt_deliveries = virt.deliveries();
    let virt_seq: Vec<MsgId> = virt_deliveries.iter().map(|d| d.delivery.msg.id).collect();

    assert_eq!(wall_seq, expected(), "wall-clock run out of order");
    assert_eq!(virt_seq, expected(), "virtual-clock run out of order");
    assert_eq!(wall_seq, virt_seq);

    // The virtual run's timestamps are exact: timers fired at their armed
    // deadlines, submissions at their scripted times — nothing read a wall
    // clock anywhere in the loop.
    assert_eq!(virt_deliveries[0].elapsed, Duration::from_millis(50));
    assert_eq!(virt_deliveries[1].elapsed, Duration::from_millis(100));
    assert!(virt_deliveries[2].elapsed >= Duration::from_millis(400));
    assert!(virt_deliveries[3].elapsed >= Duration::from_millis(600));
}
