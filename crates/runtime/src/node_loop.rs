//! The transport-independent node event loop.
//!
//! One sans-IO [`Node`] runs on one OS thread: the loop fires due timers from
//! the node's own timer heap, waits for the next envelope (peer message or
//! control event) and executes the actions the node returns — sends through
//! the [`Transport`], deliveries into the shared [`DeliveryLog`]. Both the
//! in-process cluster and the per-process TCP runtime run this exact loop, so
//! a protocol behaves identically under either deployment.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use crossbeam_channel::Receiver;
use wbam_types::{Action, AppMessage, Event, TimerId};

use crate::transport::Transport;
use crate::{BoxedNode, DeliveryLog, RuntimeDelivery};

/// A unit of input for a node thread: either a protocol message from a peer
/// or a control event injected by the embedding application.
pub(crate) enum Envelope<M> {
    /// A protocol message from another process.
    FromPeer {
        /// The sending process.
        from: wbam_types::ProcessId,
        /// The message.
        msg: M,
    },
    /// Submit an application message for multicast ([`Event::Multicast`]).
    Submit(AppMessage),
    /// Tell the node to start leader recovery ([`Event::BecomeLeader`]).
    BecomeLeader,
    /// Tell the node it restarted after a crash ([`Event::Restart`]): volatile
    /// context is gone, timers must be re-armed, the protocol rejoined.
    Restart,
    /// Stop the node thread.
    Shutdown,
}

/// Upper bound on envelopes coalesced into one pass of the node loop: large
/// enough to amortize the transport handoff across a busy burst, small enough
/// that due timers (checked between passes) never wait long.
const MAX_ENVELOPE_BATCH: usize = 256;

struct PendingTimer {
    deadline: Instant,
    id: TimerId,
    generation: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.deadline.cmp(&self.deadline) // min-heap
    }
}

/// Runs `node` until a [`Envelope::Shutdown`] arrives or every envelope
/// sender disconnects.
pub(crate) fn run_node<M, T>(
    mut node: BoxedNode<M>,
    rx: Receiver<Envelope<M>>,
    transport: T,
    deliveries: Arc<DeliveryLog>,
    started: Instant,
) where
    M: Send + 'static,
    T: Transport<M>,
{
    let my_id = node.id();
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut generations: HashMap<TimerId, u64> = HashMap::new();

    // The hot path is one queue handoff per event: sends are batched into a
    // single `Transport::send_many` call (for the TCP transport, one command
    // into the poller thread's channel) and deliveries into a single
    // `DeliveryLog::push_many` (one mutex acquisition), instead of paying the
    // handoff per message.
    let execute = |actions: Vec<Action<M>>,
                   timers: &mut BinaryHeap<PendingTimer>,
                   generations: &mut HashMap<TimerId, u64>| {
        let mut sends: Vec<(wbam_types::ProcessId, M)> = Vec::new();
        let mut delivered: Vec<RuntimeDelivery> = Vec::new();
        for action in actions {
            match action {
                Action::Send { to, msg } => sends.push((to, msg)),
                Action::Deliver(delivery) => {
                    delivered.push(RuntimeDelivery {
                        process: my_id,
                        delivery,
                        elapsed: started.elapsed(),
                    });
                }
                Action::SetTimer { id, delay } => {
                    let gen = generations.entry(id).and_modify(|g| *g += 1).or_insert(1);
                    timers.push(PendingTimer {
                        deadline: Instant::now() + delay,
                        id,
                        generation: *gen,
                    });
                }
                Action::CancelTimer(id) => {
                    generations.entry(id).and_modify(|g| *g += 1).or_insert(1);
                }
            }
        }
        if !sends.is_empty() {
            transport.send_many(sends);
        }
        deliveries.push_many(delivered);
    };

    // Initialise the node.
    let init_actions = node.on_event(started.elapsed(), Event::Init);
    execute(init_actions, &mut timers, &mut generations);

    loop {
        // Fire any due timers.
        let now = Instant::now();
        while let Some(t) = timers.peek() {
            if t.deadline > now {
                break;
            }
            let t = timers.pop().expect("peeked");
            if generations.get(&t.id).copied().unwrap_or(0) != t.generation {
                continue; // cancelled or re-armed
            }
            let elapsed = started.elapsed();
            let actions = node.on_event(
                elapsed,
                Event::Timer {
                    id: t.id,
                    now: elapsed,
                },
            );
            execute(actions, &mut timers, &mut generations);
        }
        // Wait for the next message or the next timer deadline. With no
        // timer pending there is nothing to wake for except an envelope, so
        // block indefinitely — shutdown arrives as an envelope too, and an
        // idle node must not tick a wake-up timer just to re-check state.
        let envelope = match timers.peek() {
            Some(t) => {
                let wait = t.deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(e) => e,
                    Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(e) => e,
                Err(_) => break,
            },
        };
        // Coalesce a burst: everything already queued behind the first
        // envelope is processed in the same pass, so one busy stretch costs
        // one `send_many` handoff (one poller wakeup) and one `push_many`
        // instead of paying both per message. Bounded so timers never starve.
        let mut batch = Vec::with_capacity(8);
        batch.push(envelope);
        while batch.len() < MAX_ENVELOPE_BATCH {
            match rx.try_recv() {
                Ok(e) => batch.push(e),
                Err(_) => break,
            }
        }
        let mut stop = false;
        let mut actions = Vec::new();
        for envelope in batch {
            let elapsed = started.elapsed();
            match envelope {
                Envelope::Shutdown => {
                    stop = true;
                    break;
                }
                Envelope::FromPeer { from, msg } => {
                    actions.extend(node.on_event(elapsed, Event::Message { from, msg }));
                }
                Envelope::Submit(msg) => {
                    actions.extend(node.on_event(elapsed, Event::Multicast(msg)));
                }
                Envelope::BecomeLeader => {
                    actions.extend(node.on_event(elapsed, Event::BecomeLeader));
                }
                Envelope::Restart => {
                    actions.extend(node.on_event(elapsed, Event::Restart));
                }
            }
        }
        execute(actions, &mut timers, &mut generations);
        if stop {
            break;
        }
    }
}
