//! The transport-independent node event loop.
//!
//! One sans-IO [`Node`](wbam_types::Node) runs in one event loop: the loop
//! fires due timers from the node's own timer heap, waits for the next
//! envelope (peer message or control event) and executes the actions the node
//! returns — sends through the [`Transport`], deliveries into the shared
//! [`DeliveryLog`]. The in-process cluster and the per-process TCP runtime
//! run this exact loop on a dedicated OS thread with a [`WallClock`]; the
//! [`DeterministicRuntime`](crate::DeterministicRuntime) runs the same loop
//! *stepped* — one scheduler decision at a time — under a
//! [`VirtualClock`](crate::VirtualClock), so a protocol behaves identically
//! under either deployment and every deployed-code interleaving is
//! replayable.
//!
//! All time flows through the [`Clock`] abstraction: the loop never reads
//! `Instant::now()` and never calls `recv_timeout` directly, which is what
//! makes the virtual-clock execution a pure function of scheduler decisions.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::Receiver;
use wbam_types::{Action, AppMessage, Event, Node, ProcessId, TimerId};

use crate::clock::{Clock, WaitError};
use crate::transport::Transport;
use crate::{BoxedNode, DeliveryLog, RuntimeDelivery};

/// A unit of input for a node thread: either a protocol message from a peer
/// or a control event injected by the embedding application.
pub(crate) enum Envelope<M> {
    /// A protocol message from another process.
    FromPeer {
        /// The sending process.
        from: ProcessId,
        /// The message.
        msg: M,
    },
    /// Submit an application message for multicast ([`Event::Multicast`]).
    Submit(AppMessage),
    /// Tell the node to start leader recovery ([`Event::BecomeLeader`]).
    BecomeLeader,
    /// Tell the node it restarted after a crash ([`Event::Restart`]): volatile
    /// context is gone, timers must be re-armed, the protocol rejoined.
    Restart,
    /// Stop the node thread.
    Shutdown,
}

/// Upper bound on envelopes coalesced into one pass of the node loop: large
/// enough to amortize the transport handoff across a busy burst, small enough
/// that due timers (checked between passes) never wait long.
pub(crate) const MAX_ENVELOPE_BATCH: usize = 256;

/// A queued timer deadline. Ordered by the full `(deadline, id, generation)`
/// key so that equal-deadline timers pop in a deterministic order — `Ord`
/// used to compare only the deadline, which let `BinaryHeap` break ties by
/// internal layout and made replay runs diverge.
#[derive(PartialEq, Eq)]
struct PendingTimer {
    deadline: Duration,
    id: TimerId,
    generation: u64,
}

impl PendingTimer {
    fn key(&self) -> (Duration, TimerId, u64) {
        (self.deadline, self.id, self.generation)
    }
}

impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key()) // min-heap
    }
}

/// Liveness bookkeeping for one [`TimerId`]: the current generation (bumped
/// by every re-arm and cancel, so stale heap entries are recognized) and how
/// many heap entries still reference this id. The entry is removed as soon as
/// the last heap entry retires, so the map is bounded by the number of
/// *pending* timers — it no longer grows by one entry per timer id a
/// long-lived node ever used.
struct TimerGen {
    gen: u64,
    queued: u32,
}

/// The event loop of one node, factored as an explicit state machine so it
/// can be driven two ways: [`run`](Self::run) owns a thread and blocks
/// through its [`Clock`] (the production shape), while the deterministic
/// runtime calls the stepping methods ([`fire_due_timers`](Self::fire_due_timers),
/// [`step_deliver`](Self::step_deliver), …) one scheduler decision at a time.
pub(crate) struct NodeLoop<M, T, C> {
    node: BoxedNode<M>,
    my_id: ProcessId,
    rx: Receiver<Envelope<M>>,
    transport: T,
    deliveries: Arc<DeliveryLog>,
    clock: C,
    timers: BinaryHeap<PendingTimer>,
    generations: HashMap<TimerId, TimerGen>,
    stopped: bool,
}

impl<M, T, C> NodeLoop<M, T, C>
where
    M: Send + 'static,
    T: Transport<M>,
    C: Clock,
{
    pub(crate) fn new(
        node: BoxedNode<M>,
        rx: Receiver<Envelope<M>>,
        transport: T,
        deliveries: Arc<DeliveryLog>,
        clock: C,
    ) -> Self {
        let my_id = node.id();
        NodeLoop {
            node,
            my_id,
            rx,
            transport,
            deliveries,
            clock,
            timers: BinaryHeap::new(),
            generations: HashMap::new(),
            stopped: false,
        }
    }

    /// Delivers [`Event::Init`] to the node. Must be called exactly once,
    /// before any other stepping.
    pub(crate) fn init(&mut self) {
        let now = self.clock.now();
        let actions = self.node.on_event(now, Event::Init);
        self.execute(actions);
    }

    /// Executes one batch of node actions: sends are batched into a single
    /// `Transport::send_many` call (for the TCP transport, one command into
    /// the poller thread's channel) and deliveries into a single
    /// `DeliveryLog::push_many` (one mutex acquisition), so the hot path is
    /// one queue handoff per event instead of one per message.
    fn execute(&mut self, actions: Vec<Action<M>>) {
        let mut sends: Vec<(ProcessId, M)> = Vec::new();
        let mut delivered: Vec<RuntimeDelivery> = Vec::new();
        for action in actions {
            match action {
                Action::Send { to, msg } => sends.push((to, msg)),
                Action::Deliver(delivery) => {
                    delivered.push(RuntimeDelivery {
                        process: self.my_id,
                        delivery,
                        elapsed: self.clock.now(),
                    });
                }
                Action::SetTimer { id, delay } => {
                    let entry = self
                        .generations
                        .entry(id)
                        .or_insert(TimerGen { gen: 0, queued: 0 });
                    entry.gen += 1;
                    entry.queued += 1;
                    let generation = entry.gen;
                    self.timers.push(PendingTimer {
                        deadline: self.clock.now() + delay,
                        id,
                        generation,
                    });
                }
                Action::CancelTimer(id) => {
                    // Only bump an id that still has heap entries: with no
                    // entry queued there is nothing to invalidate, and
                    // inserting one here is what used to leak map entries.
                    if let Some(entry) = self.generations.get_mut(&id) {
                        entry.gen += 1;
                    }
                }
            }
        }
        if !sends.is_empty() {
            self.transport.send_many(sends);
        }
        self.deliveries.push_many(delivered);
    }

    /// Removes a popped heap entry's claim on its id's bookkeeping; returns
    /// whether the entry is live (matches the current generation) and should
    /// fire. Dropping the map entry once no heap entries reference the id is
    /// what keeps `generations` bounded.
    fn retire_timer_entry(&mut self, t: &PendingTimer) -> bool {
        match self.generations.get_mut(&t.id) {
            Some(entry) => {
                entry.queued = entry.queued.saturating_sub(1);
                let live = entry.gen == t.generation;
                if entry.queued == 0 {
                    self.generations.remove(&t.id);
                }
                live
            }
            None => false,
        }
    }

    /// Fires every timer due at the clock's current time, executing the
    /// actions each firing produces (which may arm further timers).
    pub(crate) fn fire_due_timers(&mut self) {
        loop {
            let now = self.clock.now();
            match self.timers.peek() {
                Some(t) if t.deadline <= now => {}
                _ => return,
            }
            let t = self.timers.pop().expect("peeked");
            if !self.retire_timer_entry(&t) {
                continue; // cancelled or re-armed
            }
            let actions = self.node.on_event(now, Event::Timer { id: t.id, now });
            self.execute(actions);
        }
    }

    /// The deadline of the earliest *live* pending timer, pruning stale heap
    /// entries (cancelled or re-armed) off the top so an idle node never
    /// wakes for a timer that would not fire.
    pub(crate) fn next_deadline(&mut self) -> Option<Duration> {
        loop {
            let (deadline, id, generation) = match self.timers.peek() {
                Some(t) => (t.deadline, t.id, t.generation),
                None => return None,
            };
            if self.generations.get(&id).map(|e| e.gen) == Some(generation) {
                return Some(deadline);
            }
            let t = self.timers.pop().expect("peeked");
            self.retire_timer_entry(&t);
        }
    }

    /// Processes one already-received envelope plus everything queued behind
    /// it, bounded by [`MAX_ENVELOPE_BATCH`]: one busy stretch costs one
    /// `send_many` handoff (one poller wakeup) and one `push_many` instead of
    /// paying both per message. Bounded so timers never starve.
    fn process_burst(&mut self, first: Envelope<M>) {
        let mut batch = Vec::with_capacity(8);
        batch.push(first);
        while batch.len() < MAX_ENVELOPE_BATCH {
            match self.rx.try_recv() {
                Ok(e) => batch.push(e),
                Err(_) => break,
            }
        }
        self.process_batch(batch);
    }

    fn process_batch(&mut self, batch: Vec<Envelope<M>>) {
        let mut actions = Vec::new();
        for envelope in batch {
            let elapsed = self.clock.now();
            match envelope {
                Envelope::Shutdown => {
                    self.stopped = true;
                    break;
                }
                Envelope::FromPeer { from, msg } => {
                    actions.extend(self.node.on_event(elapsed, Event::Message { from, msg }));
                }
                Envelope::Submit(msg) => {
                    actions.extend(self.node.on_event(elapsed, Event::Multicast(msg)));
                }
                Envelope::BecomeLeader => {
                    actions.extend(self.node.on_event(elapsed, Event::BecomeLeader));
                }
                Envelope::Restart => {
                    actions.extend(self.node.on_event(elapsed, Event::Restart));
                }
            }
        }
        self.execute(actions);
    }

    /// Read access to the wrapped node, for state inspection through
    /// [`wbam_types::Node::as_any`].
    pub(crate) fn node(&self) -> &dyn Node<Msg = M> {
        &*self.node
    }

    /// Consumes up to `limit` already-queued envelopes (never blocking) and
    /// processes them as one batch; returns how many were consumed. This is
    /// the deterministic runtime's "let this node run" step — the same batch
    /// path [`run`](Self::run) uses, so burst coalescing behaves identically
    /// under the scheduler and in production.
    pub(crate) fn step_deliver(&mut self, limit: usize) -> usize {
        let mut batch = Vec::new();
        while batch.len() < limit.min(MAX_ENVELOPE_BATCH) {
            match self.rx.try_recv() {
                Ok(e) => batch.push(e),
                Err(_) => break,
            }
        }
        let consumed = batch.len();
        if consumed > 0 {
            self.process_batch(batch);
        }
        consumed
    }

    /// Models a crash: every queued envelope is discarded (the process's
    /// mailbox dies with it) and all pending timers are dropped. Returns how
    /// many envelopes were discarded. The node's own state is left to
    /// [`apply_restart`](Self::apply_restart), which mirrors what
    /// [`Event::Restart`] means everywhere else in the workspace.
    pub(crate) fn crash_discard(&mut self) -> usize {
        let mut discarded = 0;
        while self.rx.try_recv().is_ok() {
            discarded += 1;
        }
        self.timers.clear();
        self.generations.clear();
        discarded
    }

    /// Delivers [`Event::Restart`] directly (without going through the
    /// mailbox): volatile context is gone, timers re-arm, the node rejoins.
    pub(crate) fn apply_restart(&mut self) {
        let now = self.clock.now();
        let actions = self.node.on_event(now, Event::Restart);
        self.execute(actions);
    }

    /// Runs the loop until an [`Envelope::Shutdown`] arrives or every
    /// envelope sender disconnects. This is the production driver: it blocks
    /// in [`Clock::recv_deadline`] between events.
    pub(crate) fn run(mut self) {
        self.init();
        while !self.stopped {
            self.fire_due_timers();
            // Wait for the next message or the next timer deadline. With no
            // timer pending there is nothing to wake for except an envelope,
            // so block indefinitely — shutdown arrives as an envelope too,
            // and an idle node must not tick a wake-up timer just to re-check
            // state.
            let deadline = self.next_deadline();
            match self.clock.recv_deadline(&self.rx, deadline) {
                Ok(envelope) => self.process_burst(envelope),
                Err(WaitError::Timeout) => continue,
                Err(WaitError::Disconnected) => break,
            }
        }
    }
}

/// Runs `node` until a [`Envelope::Shutdown`] arrives or every envelope
/// sender disconnects.
pub(crate) fn run_node<M, T, C>(
    node: BoxedNode<M>,
    rx: Receiver<Envelope<M>>,
    transport: T,
    deliveries: Arc<DeliveryLog>,
    clock: C,
) where
    M: Send + 'static,
    T: Transport<M>,
    C: Clock,
{
    NodeLoop::new(node, rx, transport, deliveries, clock).run();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crossbeam_channel::unbounded;

    /// Discards every send; the tests below only observe deliveries/timers.
    struct NullTransport;
    impl<M: Send + 'static> Transport<M> for NullTransport {
        fn send(&self, _to: ProcessId, _msg: M) {}
    }

    /// Records the order its timers fire in; re-arms nothing.
    struct TimerProbe {
        id: ProcessId,
        arm: Vec<(TimerId, Duration)>,
        fired: Arc<std::sync::Mutex<Vec<TimerId>>>,
    }

    impl wbam_types::Node for TimerProbe {
        type Msg = ();

        fn id(&self) -> ProcessId {
            self.id
        }

        fn on_event(&mut self, _now: Duration, event: Event<()>) -> Vec<Action<()>> {
            match event {
                Event::Init => self
                    .arm
                    .iter()
                    .map(|&(id, delay)| Action::SetTimer { id, delay })
                    .collect(),
                Event::Timer { id, .. } => {
                    self.fired.lock().unwrap().push(id);
                    Vec::new()
                }
                _ => Vec::new(),
            }
        }
    }

    struct ProbeLoop {
        nl: NodeLoop<(), NullTransport, VirtualClock>,
        fired: Arc<std::sync::Mutex<Vec<TimerId>>>,
        clock: VirtualClock,
        // Keeps the mailbox connected for the test body.
        _tx: crossbeam_channel::Sender<Envelope<()>>,
    }

    impl ProbeLoop {
        fn fired(&self) -> Vec<TimerId> {
            self.fired.lock().unwrap().clone()
        }
    }

    fn probe_loop(arm: Vec<(TimerId, Duration)>) -> ProbeLoop {
        let fired = Arc::new(std::sync::Mutex::new(Vec::new()));
        let node = TimerProbe {
            id: ProcessId(0),
            arm,
            fired: Arc::clone(&fired),
        };
        let (tx, rx) = unbounded();
        let clock = VirtualClock::new();
        let nl = NodeLoop::new(
            Box::new(node),
            rx,
            NullTransport,
            Arc::new(DeliveryLog::new()),
            clock.clone(),
        );
        ProbeLoop {
            nl,
            fired,
            clock,
            _tx: tx,
        }
    }

    /// Satellite fix pin: equal-deadline timers pop in `(deadline, id,
    /// generation)` order, not in `BinaryHeap`'s arbitrary tie order — replay
    /// depends on this being deterministic.
    #[test]
    fn equal_deadline_timers_fire_in_id_order() {
        let delay = Duration::from_millis(10);
        // Armed deliberately out of id order, all with the same deadline.
        let mut p = probe_loop(vec![
            (TimerId(7), delay),
            (TimerId(1), delay),
            (TimerId(4), delay),
            (TimerId(2), delay),
        ]);
        p.nl.init();
        p.clock.advance_to(delay);
        p.nl.fire_due_timers();
        assert_eq!(
            p.fired(),
            vec![TimerId(1), TimerId(2), TimerId(4), TimerId(7)]
        );
    }

    /// Satellite fix pin: the generations map drops an id's entry once its
    /// last heap entry retires (fired, cancelled or re-armed-and-fired), so a
    /// long-lived node's map is bounded by its *pending* timers.
    #[test]
    fn generations_map_stays_bounded() {
        let mut p = probe_loop(Vec::new());
        p.nl.init();
        // Arm 100 distinct ids over time and let each fire.
        for i in 0..100u64 {
            p.nl.execute(vec![Action::SetTimer {
                id: TimerId(i),
                delay: Duration::from_millis(1),
            }]);
            p.clock.advance_to(p.clock.now() + Duration::from_millis(1));
            p.nl.fire_due_timers();
        }
        assert_eq!(p.fired().len(), 100);
        assert!(
            p.nl.generations.is_empty(),
            "all fired timers must release their map entries, {} remain",
            p.nl.generations.len()
        );
        assert!(p.nl.timers.is_empty());

        // Cancel and re-arm churn on one id must not leak either, and a
        // re-arm after the entry was dropped must not resurrect a stale
        // heap entry (the generation restarts, old entries retire as dead).
        p.nl.execute(vec![Action::SetTimer {
            id: TimerId(0),
            delay: Duration::from_millis(5),
        }]);
        p.nl.execute(vec![Action::CancelTimer(TimerId(0))]);
        p.nl.execute(vec![Action::SetTimer {
            id: TimerId(0),
            delay: Duration::from_millis(1),
        }]);
        p.clock
            .advance_to(p.clock.now() + Duration::from_millis(10));
        p.nl.fire_due_timers();
        assert_eq!(p.fired().len(), 101, "exactly one extra firing");
        assert!(p.nl.generations.is_empty());
        assert!(p.nl.timers.is_empty());

        // Cancelling an id with nothing queued is a no-op, not an insert.
        p.nl.execute(vec![Action::CancelTimer(TimerId(42))]);
        assert!(p.nl.generations.is_empty());
    }

    /// A cancelled timer never fires even when a later timer on the same id
    /// is re-armed with a fresh generation after the map entry was dropped.
    #[test]
    fn stale_entries_after_entry_drop_do_not_fire() {
        let mut p = probe_loop(Vec::new());
        p.nl.init();
        // e1: gen 1, far deadline. e2: gen 2, near deadline.
        p.nl.execute(vec![Action::SetTimer {
            id: TimerId(9),
            delay: Duration::from_millis(100),
        }]);
        p.nl.execute(vec![Action::SetTimer {
            id: TimerId(9),
            delay: Duration::from_millis(1),
        }]);
        p.clock.advance_to(Duration::from_millis(1));
        p.nl.fire_due_timers();
        assert_eq!(p.fired(), vec![TimerId(9)]);
        // e2 fired at gen 2; e1 (gen 1) still queued keeps the entry alive.
        assert_eq!(p.nl.generations.len(), 1);
        // Re-arm: gen becomes 3; the stale e1 must not match it.
        p.nl.execute(vec![Action::SetTimer {
            id: TimerId(9),
            delay: Duration::from_millis(1),
        }]);
        p.clock.advance_to(Duration::from_millis(200));
        p.nl.fire_due_timers();
        assert_eq!(
            p.fired(),
            vec![TimerId(9), TimerId(9)],
            "the cancelled-by-re-arm entry must not produce a third firing"
        );
        assert!(p.nl.generations.is_empty());
    }

    /// `next_deadline` skips stale heads so an idle node does not wake for a
    /// timer that would not fire.
    #[test]
    fn next_deadline_prunes_stale_heads() {
        let mut p = probe_loop(Vec::new());
        p.nl.init();
        p.nl.execute(vec![Action::SetTimer {
            id: TimerId(1),
            delay: Duration::from_millis(5),
        }]);
        p.nl.execute(vec![Action::SetTimer {
            id: TimerId(2),
            delay: Duration::from_millis(50),
        }]);
        p.nl.execute(vec![Action::CancelTimer(TimerId(1))]);
        assert_eq!(p.nl.next_deadline(), Some(Duration::from_millis(50)));
        p.nl.execute(vec![Action::CancelTimer(TimerId(2))]);
        assert_eq!(p.nl.next_deadline(), None);
        assert!(p.nl.generations.is_empty(), "pruning releases map entries");
    }
}
