//! The single time source every runtime layer consumes.
//!
//! The node event loop, the TCP poller and the in-process cluster all take
//! their notion of "now", their timer deadlines and their envelope waits
//! through the [`Clock`] trait instead of calling `Instant::now()` or
//! `recv_timeout` directly. Two implementations exist:
//!
//! * [`WallClock`] — production: zero-cost `#[inline]` wrappers over
//!   [`Instant`] and [`Receiver::recv_timeout`], so the deployed hot path
//!   pays nothing for the indirection.
//! * [`VirtualClock`] — deterministic tests: a shared virtual counter that
//!   only moves when a scheduler advances it, which makes every deadline
//!   computation a pure function of scheduler decisions. This is what the
//!   [`DeterministicRuntime`](crate::DeterministicRuntime) drives to make
//!   the exact deployed node-loop code replayable from a seed.
//!
//! Time is expressed as a [`Duration`] since the runtime started (not an
//! absolute [`Instant`]): a relative origin is what the sans-IO
//! [`Node`](wbam_types::Node) API already speaks, and it gives the virtual
//! clock a trivial representation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError};

/// Why a [`Clock::recv_deadline`] wait ended without an envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed before anything arrived.
    Timeout,
    /// Nothing can ever arrive: every sender is gone (wall clock), or the
    /// mailbox is empty, no deadline was given and no other thread runs
    /// (virtual clock — see [`VirtualClock`]).
    Disconnected,
}

/// A source of relative time plus deadline-bounded channel waits.
///
/// `recv_deadline` is generic, so the trait is not object-safe; every
/// consumer in this crate is generic over `C: Clock`, which also lets the
/// wall-clock implementation inline to exactly the `Instant`/`recv_timeout`
/// code the runtime used before the abstraction existed.
pub trait Clock: Clone + Send + 'static {
    /// Time elapsed since the runtime started.
    fn now(&self) -> Duration;

    /// Waits for the next value on `rx`, bounded by an optional absolute
    /// `deadline` (in this clock's time). With `None`, waits until a value
    /// arrives or arrival becomes impossible.
    ///
    /// # Errors
    ///
    /// [`WaitError::Timeout`] once `deadline` is reached,
    /// [`WaitError::Disconnected`] when no value can ever arrive.
    fn recv_deadline<T>(
        &self,
        rx: &Receiver<T>,
        deadline: Option<Duration>,
    ) -> Result<T, WaitError>;
}

/// Production clock: thin wrappers over [`Instant::elapsed`] and
/// [`Receiver::recv_timeout`]. Copy-cheap; every thread of a runtime holds
/// its own copy sharing the same start instant.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    started: Instant,
}

impl WallClock {
    /// A clock starting now.
    pub fn new() -> Self {
        WallClock {
            started: Instant::now(),
        }
    }

    /// A clock measuring from an existing origin (so every thread of a
    /// runtime agrees on what time zero means).
    pub fn starting_at(started: Instant) -> Self {
        WallClock { started }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    #[inline]
    fn now(&self) -> Duration {
        self.started.elapsed()
    }

    #[inline]
    fn recv_deadline<T>(
        &self,
        rx: &Receiver<T>,
        deadline: Option<Duration>,
    ) -> Result<T, WaitError> {
        match deadline {
            Some(deadline) => {
                let wait = deadline.saturating_sub(self.now());
                rx.recv_timeout(wait).map_err(|e| match e {
                    RecvTimeoutError::Timeout => WaitError::Timeout,
                    RecvTimeoutError::Disconnected => WaitError::Disconnected,
                })
            }
            None => rx.recv().map_err(|_| WaitError::Disconnected),
        }
    }
}

/// Deterministic virtual clock: a shared nanosecond counter that only moves
/// when [`advance_to`](Self::advance_to) is called. Clones share the counter,
/// so a scheduler and the node loops it drives always agree on the time.
///
/// Its `recv_deadline` never blocks: an empty mailbox with a deadline
/// *advances the clock to the deadline* and reports [`WaitError::Timeout`]
/// (the caller's due timers then fire); an empty mailbox without a deadline
/// reports [`WaitError::Disconnected`], because in a single-threaded virtual
/// world nothing else runs to fill the mailbox — which cleanly terminates a
/// node loop that has nothing left to do.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves the clock forward to `to`. Never moves backward: an earlier
    /// value is ignored, keeping time monotonic no matter how a scheduler
    /// interleaves its advance decisions.
    pub fn advance_to(&self, to: Duration) {
        let to = to.as_nanos() as u64;
        self.nanos.fetch_max(to, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    #[inline]
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    fn recv_deadline<T>(
        &self,
        rx: &Receiver<T>,
        deadline: Option<Duration>,
    ) -> Result<T, WaitError> {
        match rx.try_recv() {
            Ok(v) => Ok(v),
            Err(_) => match deadline {
                Some(deadline) => {
                    self.advance_to(deadline);
                    Err(WaitError::Timeout)
                }
                None => Err(WaitError::Disconnected),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    #[test]
    fn wall_clock_waits_out_deadlines_and_delivers_values() {
        let clock = WallClock::new();
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(clock.recv_deadline(&rx, None), Ok(7));
        let deadline = clock.now() + Duration::from_millis(20);
        assert_eq!(
            clock.recv_deadline(&rx, Some(deadline)),
            Err(WaitError::Timeout)
        );
        assert!(clock.now() >= deadline);
        drop(tx);
        assert_eq!(clock.recv_deadline(&rx, None), Err(WaitError::Disconnected));
    }

    #[test]
    fn virtual_clock_advances_instead_of_blocking() {
        let clock = VirtualClock::new();
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(clock.now(), Duration::ZERO);
        tx.send(1).unwrap();
        // A queued value is returned without moving time.
        assert_eq!(
            clock.recv_deadline(&rx, Some(Duration::from_secs(5))),
            Ok(1)
        );
        assert_eq!(clock.now(), Duration::ZERO);
        // An empty mailbox with a deadline jumps the clock to the deadline.
        assert_eq!(
            clock.recv_deadline(&rx, Some(Duration::from_secs(5))),
            Err(WaitError::Timeout)
        );
        assert_eq!(clock.now(), Duration::from_secs(5));
        // Time never moves backward.
        clock.advance_to(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_secs(5));
        // No deadline + empty mailbox = nothing can ever arrive.
        assert_eq!(clock.recv_deadline(&rx, None), Err(WaitError::Disconnected));
    }

    #[test]
    fn virtual_clock_clones_share_the_counter() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance_to(Duration::from_millis(250));
        assert_eq!(b.now(), Duration::from_millis(250));
    }
}
