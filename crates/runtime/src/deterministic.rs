//! The deterministic runtime: the deployed node loop, scheduled by a seed.
//!
//! [`DeterministicRuntime`] runs N real node event loops (the exact
//! `node_loop` code `wbamd` and [`InProcessCluster`](crate::InProcessCluster)
//! ship — burst coalescing, timer generations, [`DeliveryLog`] batching and
//! all) over an in-process channel transport, but single-threaded under a
//! [`VirtualClock`]: a seed-derived scheduler chooses which mailbox delivers
//! next, how large the delivery burst is, when virtual time advances (and so
//! when timers fire), and where crash/restart lands. Every choice is drawn
//! from a splitmix64 stream seeded by the caller, so an interleaving is a
//! pure function of the seed plus the scripted workload — byte-for-byte
//! replayable, the way `wbam-simnet` schedules already are, but through the
//! deployed code path.
//!
//! The schedule explorer in `wbam-harness` wraps this in `rt1` seed tokens
//! (generate → check → minimize → replay); this module only provides the
//! mechanism: scripted external events, the scheduler loop, a decision
//! [`TraceEvent`] log with a digest for twin-run comparison, and a record of
//! every message the transport carried (for the Figure 6 white-box checks).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam_channel::{unbounded, Sender};
use wbam_types::{AppMessage, ProcessId};

use crate::clock::{Clock, VirtualClock};
use crate::node_loop::{Envelope, NodeLoop, MAX_ENVELOPE_BATCH};
use crate::transport::Transport;
use crate::{BoxedNode, DeliveryLog, RuntimeDelivery};

/// Probability (percent) that a busy scheduler step advances virtual time to
/// the next timer/script deadline instead of delivering more mail — this is
/// what interleaves timer firings (retries, heartbeats, elections) *into*
/// message bursts rather than only after queues drain.
const ADVANCE_BIAS_PCT: u64 = 12;

/// One-in-N scheduler steps deliver a full [`MAX_ENVELOPE_BATCH`] burst so
/// the coalescing path is exercised, not just single-envelope steps.
const BIG_BURST_ONE_IN: u64 = 10;

/// Safety cap on scheduler steps per [`DeterministicRuntime::run`] call, far
/// above what any horizon-bounded run needs.
const MAX_STEPS: usize = 2_000_000;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A message the deterministic transport carried, recorded for white-box
/// trace checks (the harness converts these to
/// `wbam_core::invariants::SentMessage`).
#[derive(Debug, Clone)]
pub struct SentRecord<M> {
    /// The sending process.
    pub from: ProcessId,
    /// The destination process.
    pub to: ProcessId,
    /// The protocol message.
    pub msg: M,
}

/// An external event scripted to happen at a virtual time: the workload and
/// fault plan of a deterministic run. Events at equal times apply in the
/// order they were scheduled.
#[derive(Debug, Clone)]
pub enum ScriptEvent {
    /// Submit an application message for multicast at a (client) node.
    Submit {
        /// Virtual time of the submission.
        at: Duration,
        /// The submitting node.
        client: ProcessId,
        /// The message to multicast.
        msg: AppMessage,
    },
    /// Tell a node to start leader recovery.
    BecomeLeader {
        /// Virtual time of the event.
        at: Duration,
        /// The target node.
        node: ProcessId,
    },
    /// Crash a node: its mailbox and pending timers are discarded and it is
    /// not scheduled until a matching [`ScriptEvent::Restart`].
    Crash {
        /// Virtual time of the crash.
        at: Duration,
        /// The crashed node.
        node: ProcessId,
    },
    /// Restart a node: messages that arrived while it was down are lost
    /// (fair-lossy links), volatile state is rebuilt via `Event::Restart`.
    Restart {
        /// Virtual time of the restart.
        at: Duration,
        /// The restarting node.
        node: ProcessId,
    },
}

impl ScriptEvent {
    fn at(&self) -> Duration {
        match self {
            ScriptEvent::Submit { at, .. }
            | ScriptEvent::BecomeLeader { at, .. }
            | ScriptEvent::Crash { at, .. }
            | ScriptEvent::Restart { at, .. } => *at,
        }
    }
}

/// A scripted workload + fault plan for a [`DeterministicRuntime`], built
/// separately so a harness can construct, persist or mutate it (for
/// minimization) before handing it to a runtime.
#[derive(Debug, Clone, Default)]
pub struct RuntimeScript {
    /// The scripted events; order is preserved among equal-time events.
    pub events: Vec<ScriptEvent>,
}

impl RuntimeScript {
    /// An empty script.
    pub fn new() -> Self {
        RuntimeScript::default()
    }

    /// Schedules a multicast submission.
    pub fn submit(&mut self, at: Duration, client: ProcessId, msg: AppMessage) {
        self.events.push(ScriptEvent::Submit { at, client, msg });
    }

    /// Schedules a leader-recovery nudge.
    pub fn become_leader(&mut self, at: Duration, node: ProcessId) {
        self.events.push(ScriptEvent::BecomeLeader { at, node });
    }

    /// Schedules a crash at `at` and the matching restart `down_for` later.
    pub fn crash(&mut self, at: Duration, node: ProcessId, down_for: Duration) {
        self.events.push(ScriptEvent::Crash { at, node });
        self.events.push(ScriptEvent::Restart {
            at: at + down_for,
            node,
        });
    }
}

/// A scheduler decision, logged so two runs can be compared decision-by-
/// decision (twin-run determinism) and digested into a replay fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node consumed `consumed` envelopes from its mailbox.
    Deliver {
        /// The scheduled node.
        node: ProcessId,
        /// Envelopes consumed in this step.
        consumed: usize,
        /// Virtual time of the step.
        at: Duration,
    },
    /// Virtual time advanced to `to` (idle jump or biased early advance).
    AdvanceTo(
        /// The new virtual time.
        Duration,
    ),
    /// A scripted submission was enqueued at a node.
    Submit {
        /// The submitting node.
        node: ProcessId,
        /// Virtual time of the submission.
        at: Duration,
    },
    /// A scripted leader-recovery nudge was enqueued.
    BecomeLeader {
        /// The target node.
        node: ProcessId,
        /// Virtual time of the event.
        at: Duration,
    },
    /// A node crashed, discarding its mailbox and timers.
    Crash {
        /// The crashed node.
        node: ProcessId,
        /// Virtual time of the crash.
        at: Duration,
    },
    /// A node restarted and rejoined.
    Restart {
        /// The restarted node.
        node: ProcessId,
        /// Virtual time of the restart.
        at: Duration,
    },
}

/// The deterministic transport: the same shape as
/// [`ChannelTransport`](crate::ChannelTransport) (one unbounded channel per
/// node, per-sender FIFO preserved), plus the two things the scheduler
/// needs: a per-destination pending-envelope counter (the compat channel has
/// no `len()`) and a record of every message carried.
struct DetTransport<M> {
    from: ProcessId,
    peers: Arc<BTreeMap<ProcessId, DetPeer<M>>>,
    sent: Arc<Mutex<Vec<SentRecord<M>>>>,
}

struct DetPeer<M> {
    tx: Sender<Envelope<M>>,
    pending: Arc<AtomicUsize>,
}

impl<M: Clone + Send + 'static> Transport<M> for DetTransport<M> {
    fn send(&self, to: ProcessId, msg: M) {
        if let Some(peer) = self.peers.get(&to) {
            self.sent.lock().unwrap().push(SentRecord {
                from: self.from,
                to,
                msg: msg.clone(),
            });
            if peer
                .tx
                .send(Envelope::FromPeer {
                    from: self.from,
                    msg,
                })
                .is_ok()
            {
                peer.pending.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// N real node event loops driven single-threaded by a seeded scheduler over
/// a [`VirtualClock`]. See the module docs for the model; see
/// [`RuntimeScript`] for the scripted external events.
pub struct DeterministicRuntime<M: Clone + Send + 'static> {
    loops: Vec<NodeLoop<M, DetTransport<M>, VirtualClock>>,
    ids: Vec<ProcessId>,
    index: BTreeMap<ProcessId, usize>,
    senders: Vec<Sender<Envelope<M>>>,
    pending: Vec<Arc<AtomicUsize>>,
    up: Vec<bool>,
    clock: VirtualClock,
    deliveries: Arc<DeliveryLog>,
    sent: Arc<Mutex<Vec<SentRecord<M>>>>,
    script: Vec<ScriptEvent>,
    trace: Vec<TraceEvent>,
    rng: u64,
    initialized: bool,
}

impl<M: Clone + Send + 'static> DeterministicRuntime<M> {
    /// Builds a runtime over `nodes` with the scheduler seeded by `seed`.
    /// Node order is significant: it is the tie-break order for timer firing
    /// and the index space of scheduler choices, so callers must construct
    /// the node vector deterministically.
    pub fn new(nodes: Vec<BoxedNode<M>>, seed: u64) -> Self {
        let clock = VirtualClock::new();
        let deliveries = Arc::new(DeliveryLog::new());
        let sent: Arc<Mutex<Vec<SentRecord<M>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut ids = Vec::with_capacity(nodes.len());
        let mut senders = Vec::with_capacity(nodes.len());
        let mut pending = Vec::with_capacity(nodes.len());
        let mut receivers = Vec::with_capacity(nodes.len());
        let mut peers: BTreeMap<ProcessId, DetPeer<M>> = BTreeMap::new();
        for node in &nodes {
            let (tx, rx) = unbounded();
            let counter = Arc::new(AtomicUsize::new(0));
            ids.push(node.id());
            peers.insert(
                node.id(),
                DetPeer {
                    tx: tx.clone(),
                    pending: Arc::clone(&counter),
                },
            );
            senders.push(tx);
            pending.push(counter);
            receivers.push(rx);
        }
        let peers = Arc::new(peers);
        let index: BTreeMap<ProcessId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();

        let mut loops = Vec::with_capacity(nodes.len());
        for (node, rx) in nodes.into_iter().zip(receivers) {
            let transport = DetTransport {
                from: node.id(),
                peers: Arc::clone(&peers),
                sent: Arc::clone(&sent),
            };
            loops.push(NodeLoop::new(
                node,
                rx,
                transport,
                Arc::clone(&deliveries),
                clock.clone(),
            ));
        }
        let up = vec![true; loops.len()];
        DeterministicRuntime {
            loops,
            ids,
            index,
            senders,
            pending,
            up,
            clock,
            deliveries,
            sent,
            script: Vec::new(),
            trace: Vec::new(),
            rng: seed,
            initialized: false,
        }
    }

    /// Read access to a node, for state inspection through
    /// [`wbam_types::Node::as_any`] — the deterministic-runtime counterpart
    /// of the simulator's `Simulation::node`, for tests and debugging
    /// drivers that examine protocol state after a run.
    pub fn node(&self, p: ProcessId) -> Option<&dyn wbam_types::Node<Msg = M>> {
        let index = *self.index.get(&p)?;
        Some(self.loops[index].node())
    }

    /// Loads a scripted workload + fault plan (appending to any events
    /// already scheduled).
    pub fn load_script(&mut self, script: RuntimeScript) {
        self.script.extend(script.events);
    }

    /// Schedules a multicast submission at virtual time `at`.
    pub fn schedule_submit(&mut self, at: Duration, client: ProcessId, msg: AppMessage) {
        self.script.push(ScriptEvent::Submit { at, client, msg });
    }

    /// Schedules a leader-recovery nudge at virtual time `at`.
    pub fn schedule_become_leader(&mut self, at: Duration, node: ProcessId) {
        self.script.push(ScriptEvent::BecomeLeader { at, node });
    }

    /// Schedules a crash at `at` with the matching restart `down_for` later.
    pub fn schedule_crash(&mut self, at: Duration, node: ProcessId, down_for: Duration) {
        self.script.push(ScriptEvent::Crash { at, node });
        self.script.push(ScriptEvent::Restart {
            at: at + down_for,
            node,
        });
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    /// The earliest future wake-up: the next scripted event or the next live
    /// timer deadline on an up node.
    fn next_wake(&mut self, script_idx: usize) -> Option<Duration> {
        let mut next = self.script.get(script_idx).map(|e| e.at());
        for i in 0..self.loops.len() {
            if !self.up[i] {
                continue;
            }
            if let Some(d) = self.loops[i].next_deadline() {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        next
    }

    fn apply_script_event(&mut self, event: ScriptEvent) {
        match event {
            ScriptEvent::Submit { at, client, msg } => {
                if let Some(&i) = self.index.get(&client) {
                    if self.senders[i].send(Envelope::Submit(msg)).is_ok() {
                        self.pending[i].fetch_add(1, Ordering::Relaxed);
                    }
                    self.trace.push(TraceEvent::Submit { node: client, at });
                }
            }
            ScriptEvent::BecomeLeader { at, node } => {
                if let Some(&i) = self.index.get(&node) {
                    if self.senders[i].send(Envelope::BecomeLeader).is_ok() {
                        self.pending[i].fetch_add(1, Ordering::Relaxed);
                    }
                    self.trace.push(TraceEvent::BecomeLeader { node, at });
                }
            }
            ScriptEvent::Crash { at, node } => {
                if let Some(&i) = self.index.get(&node) {
                    if self.up[i] {
                        self.up[i] = false;
                        let discarded = self.loops[i].crash_discard();
                        self.pending[i].fetch_sub(discarded, Ordering::Relaxed);
                        self.trace.push(TraceEvent::Crash { node, at });
                    }
                }
            }
            ScriptEvent::Restart { at, node } => {
                if let Some(&i) = self.index.get(&node) {
                    if !self.up[i] {
                        // Mail that arrived while the process was down is
                        // lost with the process (fair-lossy links; the
                        // protocols' retry timers recover).
                        let discarded = self.loops[i].crash_discard();
                        self.pending[i].fetch_sub(discarded, Ordering::Relaxed);
                        self.up[i] = true;
                        self.loops[i].apply_restart();
                        self.trace.push(TraceEvent::Restart { node, at });
                    } else if self.senders[i].send(Envelope::Restart).is_ok() {
                        // A restart without a preceding crash mirrors
                        // `InProcessCluster::restart`: it arrives as mail.
                        self.pending[i].fetch_add(1, Ordering::Relaxed);
                        self.trace.push(TraceEvent::Restart { node, at });
                    }
                }
            }
        }
    }

    /// Runs the scheduler until virtual time reaches `horizon` or the system
    /// quiesces (no pending mail, no scripted events, no live timers).
    /// Callable repeatedly with growing horizons; `Event::Init` is delivered
    /// to every node (in node order) on the first call.
    pub fn run(&mut self, horizon: Duration) {
        if !self.initialized {
            self.initialized = true;
            for nl in &mut self.loops {
                nl.init();
            }
        }
        // Stable sort: equal-time events keep their scheduled order.
        self.script.sort_by_key(ScriptEvent::at);
        let mut script_idx = 0usize;
        // Skip events already applied by a previous `run` call.
        while script_idx < self.script.len() && self.script[script_idx].at() < self.clock.now() {
            script_idx += 1;
        }

        for _step in 0..MAX_STEPS {
            let now = self.clock.now();
            if now >= horizon {
                break;
            }
            // 1. Scripted external events due now.
            while script_idx < self.script.len() && self.script[script_idx].at() <= now {
                let event = self.script[script_idx].clone();
                script_idx += 1;
                self.apply_script_event(event);
            }
            // 2. Due timers fire on every up node, in node order.
            for i in 0..self.loops.len() {
                if self.up[i] {
                    self.loops[i].fire_due_timers();
                }
            }
            // 3. Which nodes have mail?
            let enabled: Vec<usize> = (0..self.loops.len())
                .filter(|&i| self.up[i] && self.pending[i].load(Ordering::Relaxed) > 0)
                .collect();
            if enabled.is_empty() {
                // Idle: jump straight to the next wake-up, or quiesce.
                match self.next_wake(script_idx) {
                    Some(t) if t < horizon => {
                        let t = t.max(now + Duration::from_nanos(1));
                        self.clock.advance_to(t);
                        self.trace.push(TraceEvent::AdvanceTo(t));
                    }
                    _ => break,
                }
                continue;
            }
            // 4. Occasionally advance time *into* a busy period, so timer
            // firings race with queued mail instead of always waiting for
            // queues to drain.
            if self.next_u64() % 100 < ADVANCE_BIAS_PCT {
                if let Some(t) = self.next_wake(script_idx) {
                    if t > now && t < horizon {
                        self.clock.advance_to(t);
                        self.trace.push(TraceEvent::AdvanceTo(t));
                        continue;
                    }
                }
            }
            // 5. Deliver: pick a node and a burst size.
            let pick = enabled[(self.next_u64() % enabled.len() as u64) as usize];
            let limit = if self.next_u64() % BIG_BURST_ONE_IN == 0 {
                MAX_ENVELOPE_BATCH
            } else {
                1 + (self.next_u64() % 8) as usize
            };
            let consumed = self.loops[pick].step_deliver(limit);
            self.pending[pick].fetch_sub(consumed, Ordering::Relaxed);
            self.trace.push(TraceEvent::Deliver {
                node: self.ids[pick],
                consumed,
                at: now,
            });
            // 6. Virtual time creeps forward a seeded microsecond-scale step
            // per delivery, so busy periods still make progress toward
            // timers and the horizon.
            let micro = 1 + self.next_u64() % 100;
            self.clock.advance_to(now + Duration::from_micros(micro));
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// The shared delivery log (same type the threaded runtimes populate).
    pub fn delivery_log(&self) -> &Arc<DeliveryLog> {
        &self.deliveries
    }

    /// A snapshot of every delivery so far, in global delivery-log order.
    pub fn deliveries(&self) -> Vec<RuntimeDelivery> {
        self.deliveries.snapshot()
    }

    /// Every message the transport carried so far, in send order.
    pub fn sent_messages(&self) -> Vec<SentRecord<M>> {
        self.sent.lock().unwrap().clone()
    }

    /// The scheduler's decision log.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// FNV-1a digest of the decision log: two runs scheduled identically
    /// have equal digests (compare full traces for the strong check).
    pub fn trace_digest(&self) -> u64 {
        let mut d = Digest::new();
        for ev in &self.trace {
            match ev {
                TraceEvent::Deliver { node, consumed, at } => {
                    d.write_u64(1);
                    d.write_u64(u64::from(node.0));
                    d.write_u64(*consumed as u64);
                    d.write_u64(at.as_nanos() as u64);
                }
                TraceEvent::AdvanceTo(to) => {
                    d.write_u64(2);
                    d.write_u64(to.as_nanos() as u64);
                }
                TraceEvent::Submit { node, at } => {
                    d.write_u64(3);
                    d.write_u64(u64::from(node.0));
                    d.write_u64(at.as_nanos() as u64);
                }
                TraceEvent::BecomeLeader { node, at } => {
                    d.write_u64(4);
                    d.write_u64(u64::from(node.0));
                    d.write_u64(at.as_nanos() as u64);
                }
                TraceEvent::Crash { node, at } => {
                    d.write_u64(5);
                    d.write_u64(u64::from(node.0));
                    d.write_u64(at.as_nanos() as u64);
                }
                TraceEvent::Restart { node, at } => {
                    d.write_u64(6);
                    d.write_u64(u64::from(node.0));
                    d.write_u64(at.as_nanos() as u64);
                }
            }
        }
        d.finish()
    }
}

/// FNV-1a, the same construction the harness explorers use for seed-token
/// digests.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxMsg, WhiteBoxReplica};
    use wbam_types::{ClusterConfig, Destination, GroupId, MsgId, Payload};

    fn whitebox_nodes(cluster: &ClusterConfig) -> Vec<BoxedNode<WhiteBoxMsg>> {
        let mut nodes: Vec<BoxedNode<WhiteBoxMsg>> = Vec::new();
        for gc in cluster.groups() {
            for member in gc.members() {
                let cfg =
                    ReplicaConfig::new(*member, gc.id(), cluster.clone()).without_auto_election();
                nodes.push(Box::new(WhiteBoxReplica::new(cfg)));
            }
        }
        for client in cluster.clients() {
            nodes.push(Box::new(MulticastClient::new(ClientConfig::new(
                *client,
                cluster.clone(),
            ))));
        }
        nodes
    }

    fn scripted_runtime(seed: u64) -> DeterministicRuntime<WhiteBoxMsg> {
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let client = cluster.clients()[0];
        let mut rt = DeterministicRuntime::new(whitebox_nodes(&cluster), seed);
        for seq in 0..5u64 {
            let msg = AppMessage::new(
                MsgId::new(client, seq),
                Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
                Payload::from(format!("op-{seq}").as_str()),
            );
            rt.schedule_submit(Duration::from_millis(10 * (seq + 1)), client, msg);
        }
        rt
    }

    /// The deployed node-loop code path, scheduled virtually, still delivers
    /// atomic multicasts in agreement across all replicas.
    #[test]
    fn deterministic_runtime_delivers_multicasts() {
        let mut rt = scripted_runtime(42);
        rt.run(Duration::from_secs(30));
        let deliveries = rt.deliveries();
        // 5 messages × 6 replicas + 5 client completions.
        assert!(
            deliveries.len() >= 35,
            "expected at least 35 deliveries, got {}",
            deliveries.len()
        );
        let order_of = |p: ProcessId| -> Vec<MsgId> {
            deliveries
                .iter()
                .filter(|d| d.process == p)
                .map(|d| d.delivery.msg.id)
                .collect()
        };
        let reference = order_of(ProcessId(0));
        assert_eq!(reference.len(), 5);
        for p in 1..6u32 {
            assert_eq!(order_of(ProcessId(p)), reference, "replica p{p} differs");
        }
        assert!(!rt.sent_messages().is_empty());
    }

    /// Twin-run determinism at the runtime layer: the same seed and script
    /// reproduce the same decisions, deliveries and message trace, element
    /// for element.
    #[test]
    fn same_seed_reproduces_the_run_exactly() {
        let mut a = scripted_runtime(7);
        let mut b = scripted_runtime(7);
        a.run(Duration::from_secs(30));
        b.run(Duration::from_secs(30));
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.trace_digest(), b.trace_digest());
        let da = a.deliveries();
        let db = b.deliveries();
        assert_eq!(da.len(), db.len());
        for (x, y) in da.iter().zip(&db) {
            assert_eq!(x.process, y.process);
            assert_eq!(x.delivery.msg.id, y.delivery.msg.id);
            assert_eq!(x.delivery.global_ts, y.delivery.global_ts);
            assert_eq!(x.elapsed, y.elapsed);
        }
        let sa = a.sent_messages();
        let sb = b.sent_messages();
        assert_eq!(sa.len(), sb.len());
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!((x.from, x.to), (y.from, y.to));
        }
    }

    /// A crashed-and-restarted minority replica does not block agreement,
    /// and the crash/restart decisions appear in the trace.
    #[test]
    fn crash_and_restart_are_scheduled_deterministically() {
        let mut rt = scripted_runtime(99);
        rt.schedule_crash(
            Duration::from_millis(15),
            ProcessId(1),
            Duration::from_millis(400),
        );
        rt.run(Duration::from_secs(30));
        assert!(rt
            .trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::Crash { node, .. } if *node == ProcessId(1))));
        assert!(rt
            .trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::Restart { node, .. } if *node == ProcessId(1))));
        // The two healthy replicas of group 0 and all of group 1 agree.
        let deliveries = rt.deliveries();
        let order_of = |p: ProcessId| -> Vec<MsgId> {
            deliveries
                .iter()
                .filter(|d| d.process == p)
                .map(|d| d.delivery.msg.id)
                .collect()
        };
        let reference = order_of(ProcessId(0));
        assert_eq!(reference.len(), 5, "healthy replica delivers everything");
        assert_eq!(order_of(ProcessId(2)), reference);
    }
}
