//! Loopback/LAN TCP transport and the per-process node runtime behind the
//! `wbamd` deployment binary.
//!
//! Every peer pair is connected by two *simplex* TCP connections, one per
//! direction: a process dials each peer it sends to and uses that connection
//! only for writing, and accepts incoming connections only for reading. This
//! keeps connection management trivial (no simultaneous-open deduplication)
//! at the cost of one extra socket per pair — irrelevant at the cluster sizes
//! atomic multicast targets.
//!
//! Framing is `wbam_types::wire` (`u32` big-endian length + JSON body). The
//! first frame on every connection is a `Hello` handshake identifying the
//! dialling process; all subsequent frames carry protocol messages. A writer
//! that loses its connection reconnects with exponential backoff and re-sends
//! the frame that failed, so a restarted peer process rejoins exactly like
//! the simulator's `Event::Restart` path: messages sent while it was down are
//! either queued behind the reconnect or dropped with the dead connection,
//! and the protocols' retry timers recover — the fair-lossy link model.
//!
//! # Example
//!
//! Spawn a 1-group × 1-replica "cluster" plus a client, each on its own TCP
//! endpoint (in production each [`TcpNode`] lives in its own OS process):
//!
//! ```
//! use std::collections::BTreeMap;
//! use std::time::Duration;
//! use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxReplica};
//! use wbam_runtime::TcpNode;
//! use wbam_types::{AppMessage, ClusterConfig, Destination, GroupId, MsgId, Payload, ProcessId};
//!
//! let cluster = ClusterConfig::builder().groups(1, 1).clients(1).build();
//! let replica = cluster.groups()[0].members()[0];
//! let client = cluster.clients()[0];
//! // Reserve two loopback ports for the example.
//! let mut addrs = BTreeMap::new();
//! for p in [replica, client] {
//!     let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//!     addrs.insert(p, l.local_addr().unwrap());
//! }
//! let r = TcpNode::spawn(
//!     Box::new(WhiteBoxReplica::new(
//!         ReplicaConfig::new(replica, GroupId(0), cluster.clone()).without_auto_election(),
//!     )),
//!     &addrs,
//!     false,
//! )
//! .unwrap();
//! let c = TcpNode::spawn(
//!     Box::new(MulticastClient::new(ClientConfig::new(client, cluster.clone()))),
//!     &addrs,
//!     false,
//! )
//! .unwrap();
//! c.submit(AppMessage::new(
//!     MsgId::new(client, 0),
//!     Destination::single(GroupId(0)),
//!     Payload::from("over tcp"),
//! ))
//! .unwrap();
//! // One replica delivery + one client completion.
//! assert!(r.wait_for_total(1, Duration::from_secs(10)));
//! assert!(c.wait_for_total(1, Duration::from_secs(10)));
//! r.shutdown();
//! c.shutdown();
//! ```

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam_channel::{unbounded, Receiver, Sender};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use wbam_types::wire::{decode_frame, encode_frame};
use wbam_types::{AppMessage, ProcessId, WbamError};

use crate::node_loop::{run_node, Envelope};
use crate::transport::Transport;
use crate::{BoxedNode, DeliveryLog, RuntimeDelivery};

/// First reconnect delay of a writer that lost its connection.
const BACKOFF_INITIAL: Duration = Duration::from_millis(10);
/// Backoff cap: a writer re-dials a down peer at least this often.
const BACKOFF_MAX: Duration = Duration::from_millis(500);
/// Granularity at which blocked IO threads observe the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// What travels inside a TCP frame: a connection handshake or a protocol
/// message. Every frame is encoded with [`wbam_types::wire::encode_frame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum WireFrame<M> {
    /// First frame of every connection: identifies the dialling process, so
    /// the accepting side can tag subsequent frames with their sender.
    Hello {
        /// The dialling process.
        from: ProcessId,
    },
    /// A protocol message.
    Protocol(M),
}

/// TCP transport: one writer thread per peer, dialling `addrs[peer]` and
/// framing every message with `wbam_types::wire`. Messages a node sends to
/// *itself* (a leader is a member of its own group and ACCEPTs to every
/// member) short-circuit into the local envelope channel instead of crossing
/// the network stack.
pub struct TcpTransport<M> {
    local: ProcessId,
    loopback: Sender<Envelope<M>>,
    peers: HashMap<ProcessId, Sender<M>>,
}

impl<M: Serialize + Send + 'static> TcpTransport<M> {
    /// Creates the transport used by `local` to reach every other process in
    /// `addrs`, spawning one writer thread per peer. Returns the transport
    /// and the writer thread handles (joined on shutdown).
    pub(crate) fn new(
        local: ProcessId,
        loopback: Sender<Envelope<M>>,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        shutdown: Arc<AtomicBool>,
    ) -> (Self, Vec<JoinHandle<()>>) {
        let mut peers = HashMap::new();
        let mut threads = Vec::new();
        for (&peer, &addr) in addrs {
            if peer == local {
                continue;
            }
            let (tx, rx) = unbounded();
            peers.insert(peer, tx);
            let shutdown = Arc::clone(&shutdown);
            threads.push(std::thread::spawn(move || {
                writer_loop::<M>(local, addr, rx, shutdown);
            }));
        }
        (
            TcpTransport {
                local,
                loopback,
                peers,
            },
            threads,
        )
    }
}

impl<M: Serialize + Send + 'static> Transport<M> for TcpTransport<M> {
    fn send(&self, to: ProcessId, msg: M) {
        if to == self.local {
            let _ = self.loopback.send(Envelope::FromPeer {
                from: self.local,
                msg,
            });
        } else if let Some(tx) = self.peers.get(&to) {
            let _ = tx.send(msg); // queued behind any reconnect in progress
        }
    }
}

/// Sleeps for `total`, observing the shutdown flag every poll interval;
/// returns `false` when shutdown was raised.
fn sleep_unless_shutdown(total: Duration, shutdown: &AtomicBool) -> bool {
    let mut remaining = total;
    while !remaining.is_zero() {
        if shutdown.load(Ordering::Relaxed) {
            return false;
        }
        let step = remaining.min(POLL_INTERVAL);
        std::thread::sleep(step);
        remaining -= step;
    }
    !shutdown.load(Ordering::Relaxed)
}

/// Dials `addr` until it connects, with exponential backoff (full `backoff`
/// sleeps, shutdown observed every poll interval); returns `None` when the
/// shutdown flag is raised first.
fn connect_with_backoff(addr: SocketAddr, shutdown: &AtomicBool) -> Option<TcpStream> {
    let mut backoff = BACKOFF_INITIAL;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return None;
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Some(stream);
            }
            Err(_) => {
                if !sleep_unless_shutdown(backoff, shutdown) {
                    return None;
                }
                backoff = (backoff * 2).min(BACKOFF_MAX);
            }
        }
    }
}

/// Owns the simplex connection from `local` to one peer: (re)connects with
/// backoff, sends the `Hello` handshake, then pumps queued messages into
/// frames. A frame whose write fails is re-sent on the next connection.
fn writer_loop<M: Serialize>(
    local: ProcessId,
    addr: SocketAddr,
    rx: Receiver<M>,
    shutdown: Arc<AtomicBool>,
) {
    let mut pending: Option<M> = None;
    'connection: loop {
        let Some(mut stream) = connect_with_backoff(addr, &shutdown) else {
            return;
        };
        let hello = match encode_frame(&WireFrame::<M>::Hello { from: local }) {
            Ok(f) => f,
            Err(_) => return, // ProcessId serialisation cannot fail
        };
        if stream.write_all(&hello).is_err() {
            // A connect that succeeds but whose first write fails (e.g. the
            // peer's backlog accepted, then the process died) must not
            // re-dial in a tight loop.
            if !sleep_unless_shutdown(BACKOFF_INITIAL, &shutdown) {
                return;
            }
            continue 'connection;
        }
        loop {
            let msg = match pending.take() {
                Some(m) => m,
                None => match rx.recv_timeout(POLL_INTERVAL) {
                    Ok(m) => m,
                    Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                        if shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        continue;
                    }
                    Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
                },
            };
            // Wrap, encode, and take the message back out so the write can be
            // retried on a fresh connection without requiring `M: Clone`.
            let wrapped = WireFrame::Protocol(msg);
            let frame = encode_frame(&wrapped);
            let WireFrame::Protocol(msg) = wrapped else {
                unreachable!("wrapped a Protocol frame")
            };
            match frame {
                // An unencodable message (e.g. over MAX_FRAME_LEN) is dropped:
                // it could never reach the peer, and retrying cannot help.
                Err(_) => continue,
                Ok(frame) => {
                    if stream.write_all(&frame).is_err() {
                        pending = Some(msg);
                        if !sleep_unless_shutdown(BACKOFF_INITIAL, &shutdown) {
                            return;
                        }
                        continue 'connection;
                    }
                }
            }
        }
    }
}

/// Accepts connections on `listener` and spawns one reader per connection.
/// Reader threads are detached; they exit on EOF, on a framing error, or
/// within one poll interval of shutdown.
fn listener_loop<M: DeserializeOwned + Send + 'static>(
    listener: TcpListener,
    env_tx: Sender<Envelope<M>>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let env_tx = env_tx.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || reader_loop(stream, env_tx, shutdown));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => return,
        }
    }
}

/// Reads frames off one accepted connection. The first frame must be a
/// [`WireFrame::Hello`]; protocol frames before it (or any undecodable frame
/// — a corrupt length prefix cannot be resynced from) drop the connection,
/// and the peer's writer re-dials.
fn reader_loop<M: DeserializeOwned>(
    mut stream: TcpStream,
    env_tx: Sender<Envelope<M>>,
    shutdown: Arc<AtomicBool>,
) {
    // On BSD-derived stacks an accepted socket inherits the listener's
    // nonblocking flag (it does not on Linux); force blocking mode so the
    // read timeout below paces the loop instead of a WouldBlock busy-spin.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut buf = BytesMut::new();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut from: Option<ProcessId> = None;
    loop {
        loop {
            match decode_frame::<WireFrame<M>>(&mut buf) {
                Ok(Some(WireFrame::Hello { from: peer })) => from = Some(peer),
                Ok(Some(WireFrame::Protocol(msg))) => {
                    let Some(peer) = from else { return };
                    if env_tx.send(Envelope::FromPeer { from: peer, msg }).is_err() {
                        return; // node thread gone
                    }
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// One protocol node running over real TCP: the per-process runtime behind
/// the `wbamd` deployment binary (one OS process = one [`TcpNode`]).
///
/// The node runs the same event loop as [`InProcessCluster`](crate::InProcessCluster)
/// — only the transport differs — so a protocol that is correct under the
/// simulator and the in-process runtime behaves identically here.
pub struct TcpNode<M> {
    id: ProcessId,
    env_tx: Sender<Envelope<M>>,
    deliveries: Arc<DeliveryLog>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    started: Instant,
}

impl<M: Serialize + DeserializeOwned + Send + 'static> TcpNode<M> {
    /// Binds `addrs[node.id()]`, spawns the listener, the per-peer writer
    /// threads and the node thread, and starts the node with `Event::Init`.
    ///
    /// With `restart = true` the node additionally receives `Event::Restart`
    /// before any peer traffic — the flag a redeployed `wbamd` process passes
    /// so the replica rejoins its group (fresh ballot via the `NEW_LEADER`
    /// handshake, state re-synchronised from a quorum) exactly like the
    /// simulator's restart path.
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::UnknownProcess`] when `addrs` has no entry for
    /// the node, or [`WbamError::Io`] when binding its listen address fails.
    pub fn spawn(
        node: BoxedNode<M>,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        restart: bool,
    ) -> Result<Self, WbamError> {
        let id = node.id();
        let listen = *addrs.get(&id).ok_or(WbamError::UnknownProcess(id))?;
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;

        let started = Instant::now();
        let deliveries = Arc::new(DeliveryLog::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (env_tx, env_rx) = unbounded();
        let mut threads = Vec::new();

        if restart {
            // Enqueued before the listener thread exists, so the node is
            // guaranteed to process Event::Init then Event::Restart before
            // any peer traffic (connections parked in the kernel backlog are
            // only read once the listener thread starts accepting below).
            let _ = env_tx.send(Envelope::Restart);
        }
        {
            let env_tx = env_tx.clone();
            let shutdown = Arc::clone(&shutdown);
            threads.push(std::thread::spawn(move || {
                listener_loop(listener, env_tx, shutdown);
            }));
        }
        let (transport, writer_threads) =
            TcpTransport::new(id, env_tx.clone(), addrs, Arc::clone(&shutdown));
        threads.extend(writer_threads);
        {
            let deliveries = Arc::clone(&deliveries);
            threads.push(std::thread::spawn(move || {
                run_node(node, env_rx, transport, deliveries, started);
            }));
        }
        Ok(TcpNode {
            id,
            env_tx,
            deliveries,
            shutdown,
            threads,
            started,
        })
    }

    /// The process this node plays.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Submits an application message for multicast at this node (normally a
    /// client node).
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::NotReady`] when the node thread has exited.
    pub fn submit(&self, msg: AppMessage) -> Result<(), WbamError> {
        self.control(Envelope::Submit(msg))
    }

    /// Tells the node to start leader recovery.
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::NotReady`] when the node thread has exited.
    pub fn become_leader(&self) -> Result<(), WbamError> {
        self.control(Envelope::BecomeLeader)
    }

    fn control(&self, envelope: Envelope<M>) -> Result<(), WbamError> {
        self.env_tx.send(envelope).map_err(|_| WbamError::NotReady {
            process: self.id,
            reason: "node thread has exited".to_string(),
        })
    }

    /// A snapshot of the deliveries currently buffered.
    pub fn deliveries(&self) -> Vec<RuntimeDelivery> {
        self.deliveries.snapshot()
    }

    /// Removes and returns all buffered deliveries (see
    /// [`InProcessCluster::drain_deliveries`](crate::InProcessCluster::drain_deliveries)).
    pub fn drain_deliveries(&self) -> Vec<RuntimeDelivery> {
        self.deliveries.drain()
    }

    /// Total number of deliveries observed since spawn, including drained ones.
    pub fn total_deliveries(&self) -> u64 {
        self.deliveries.total()
    }

    /// Blocks until the cumulative delivery count reaches `count` or the
    /// timeout expires; returns whether the count was reached.
    pub fn wait_for_total(&self, count: u64, timeout: Duration) -> bool {
        self.deliveries.wait_for_total(count, timeout)
    }

    /// Time since the node was spawned.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops the node and all its IO threads and waits for them to exit.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.env_tx.send(Envelope::Shutdown);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxMsg, WhiteBoxReplica};
    use wbam_types::{ClusterConfig, Destination, GroupId, MsgId, Payload};

    /// Reserves one free loopback port per process by briefly binding port 0.
    fn reserve_addrs(cluster: &ClusterConfig) -> BTreeMap<ProcessId, SocketAddr> {
        cluster
            .all_processes()
            .into_iter()
            .map(|p| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
                (p, l.local_addr().expect("local addr"))
            })
            .collect()
    }

    fn spawn_replica(
        cluster: &ClusterConfig,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        member: ProcessId,
        restart: bool,
    ) -> TcpNode<WhiteBoxMsg> {
        let group = cluster.group_of(member).expect("replica group");
        let cfg = ReplicaConfig::new(member, group, cluster.clone()).without_auto_election();
        TcpNode::spawn(Box::new(WhiteBoxReplica::new(cfg)), addrs, restart).expect("spawn")
    }

    fn order_of(node: &TcpNode<WhiteBoxMsg>) -> Vec<MsgId> {
        node.deliveries()
            .iter()
            .map(|d| d.delivery.msg.id)
            .collect()
    }

    /// A 2-group × 3-replica cluster over real loopback sockets delivers
    /// cross-group multicasts in identical per-replica order.
    #[test]
    fn tcp_cluster_delivers_cross_group_multicasts_in_order() {
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let replicas: Vec<TcpNode<WhiteBoxMsg>> = cluster
            .groups()
            .iter()
            .flat_map(|gc| gc.members().to_vec())
            .map(|m| spawn_replica(&cluster, &addrs, m, false))
            .collect();
        let client_id = cluster.clients()[0];
        let client = TcpNode::spawn(
            Box::new(MulticastClient::new(ClientConfig::new(
                client_id,
                cluster.clone(),
            ))),
            &addrs,
            false,
        )
        .expect("spawn client");

        for seq in 0..5u64 {
            client
                .submit(AppMessage::new(
                    MsgId::new(client_id, seq),
                    Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
                    Payload::from(format!("op-{seq}").as_str()),
                ))
                .unwrap();
        }
        assert!(client.wait_for_total(5, Duration::from_secs(30)));
        for r in &replicas {
            assert!(
                r.wait_for_total(5, Duration::from_secs(30)),
                "replica {} delivered only {}",
                r.id(),
                r.total_deliveries()
            );
        }
        let reference = order_of(&replicas[0]);
        assert_eq!(reference.len(), 5);
        for r in &replicas[1..] {
            assert_eq!(order_of(r), reference, "replica {} order differs", r.id());
        }
        for r in replicas {
            r.shutdown();
        }
        client.shutdown();
    }

    /// Killing a follower's process and spawning a fresh one on the same
    /// address (the `wbamd --restart` path) rejoins it to the group: peers'
    /// writers reconnect with backoff, the fresh node's `Event::Restart`
    /// pulls the group state via the NEW_LEADER handshake, and it ends up
    /// with the same delivery order as the survivors.
    #[test]
    fn restarted_process_rejoins_over_tcp() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let members = cluster.groups()[0].members().to_vec();
        let mut replicas: BTreeMap<ProcessId, TcpNode<WhiteBoxMsg>> = members
            .iter()
            .map(|m| (*m, spawn_replica(&cluster, &addrs, *m, false)))
            .collect();
        let client_id = cluster.clients()[0];
        let client = TcpNode::spawn(
            Box::new(MulticastClient::new(ClientConfig::new(
                client_id,
                cluster.clone(),
            ))),
            &addrs,
            false,
        )
        .expect("spawn client");
        let submit = |seq: u64| {
            client
                .submit(AppMessage::new(
                    MsgId::new(client_id, seq),
                    Destination::single(GroupId(0)),
                    Payload::from(format!("op-{seq}").as_str()),
                ))
                .unwrap();
        };

        for seq in 0..3 {
            submit(seq);
        }
        assert!(client.wait_for_total(3, Duration::from_secs(30)));

        // Kill the follower p1 (its listener and sockets die with it).
        let victim = members[1];
        replicas.remove(&victim).unwrap().shutdown();

        // The remaining quorum keeps delivering.
        for seq in 3..5 {
            submit(seq);
        }
        assert!(client.wait_for_total(5, Duration::from_secs(30)));

        // A fresh process takes over the victim's address and rejoins.
        let rejoined = spawn_replica(&cluster, &addrs, victim, true);
        // It recovers the full history (its delivery log starts empty) and
        // keeps up with new traffic.
        submit(5);
        assert!(
            rejoined.wait_for_total(6, Duration::from_secs(30)),
            "rejoined replica delivered only {}",
            rejoined.total_deliveries()
        );
        assert!(client.wait_for_total(6, Duration::from_secs(30)));
        let survivor = &replicas[&members[0]];
        assert!(survivor.wait_for_total(6, Duration::from_secs(30)));
        assert_eq!(
            order_of(&rejoined),
            order_of(survivor),
            "rejoined replica order differs from survivor"
        );

        rejoined.shutdown();
        for (_, r) in replicas {
            r.shutdown();
        }
        client.shutdown();
    }
}
