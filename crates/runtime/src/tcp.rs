//! Loopback/LAN TCP transport and the per-process node runtime behind the
//! `wbamd` deployment binary.
//!
//! Every peer pair is connected by two *simplex* TCP connections, one per
//! direction: a process dials each peer it sends to and uses that connection
//! only for writing, and accepts incoming connections only for reading. This
//! keeps connection management trivial (no simultaneous-open deduplication)
//! at the cost of one extra socket per pair — irrelevant at the cluster sizes
//! atomic multicast targets.
//!
//! All of a process's network IO is driven by **one nonblocking poller
//! thread** (see `WIRE.md` and DESIGN.md): it accepts inbound connections,
//! drains readable sockets, dials peers with exponential backoff, and flushes
//! per-peer output buffers with coalesced writes — a whole burst of frames
//! queued by the node thread goes out in one `write` call, so protocol
//! batches stay batched on the socket. The poller is **wake-on-ready**: on
//! Unix it multiplexes every socket plus a self-pipe wake fd through
//! `poll(2)` (the in-tree `netpoll` shim), so inbound bytes wake it the
//! instant the kernel marks a socket readable and the node thread wakes it
//! explicitly — one byte down the pipe per [`Transport::send_many`] burst —
//! when it queues outbound frames. The only timeout `poll` ever carries is
//! the next dial-backoff deadline; an idle process sleeps indefinitely and a
//! busy one never waits out a park. (Non-Unix targets keep the previous
//! portable fallback: a `recv_timeout` park on the command channel with an
//! adaptive 50 µs–50 ms idle, which woke instantly on *sends* but taxed
//! *inbound* bytes with the park latency — the regression the wake-on-ready
//! poller removes.)
//!
//! Framing is `wbam_types::wire`: each connection opens with the 4-byte
//! preamble (`"WB"` magic, wire version, codec byte) and a `Hello` frame
//! identifying the dialling process, then carries length-prefixed protocol
//! frames encoded with the negotiated [`WireCodec`] — compact binary by
//! default, JSON behind the `wbamd --wire json` compatibility flag. A peer
//! whose preamble disagrees (wrong codec, wrong version, not a WBAM process
//! at all) is rejected immediately with a clear error on stderr, so a
//! mixed-codec cluster fails fast instead of surfacing as garbled frames.
//!
//! Connection loss follows the fair-lossy link model the protocols are
//! designed for: bytes in flight die with the connection, frames queued while
//! a peer is down are capped and flushed after the reconnect (with backoff),
//! and the protocols' retry timers recover whatever was lost — so a restarted
//! peer process rejoins exactly like the simulator's `Event::Restart` path.
//! Frames dropped at the outbuf cap are *counted*, never silent: the per-peer
//! totals are published through [`TcpNode::dropped_frames`] and surface in
//! the `wbamd` stats line.
//!
//! # Example
//!
//! Spawn a 1-group × 1-replica "cluster" plus a client, each on its own TCP
//! endpoint (in production each [`TcpNode`] lives in its own OS process):
//!
//! ```
//! use std::collections::BTreeMap;
//! use std::time::Duration;
//! use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxReplica};
//! use wbam_runtime::TcpNode;
//! use wbam_types::{AppMessage, ClusterConfig, Destination, GroupId, MsgId, Payload, ProcessId};
//!
//! let cluster = ClusterConfig::builder().groups(1, 1).clients(1).build();
//! let replica = cluster.groups()[0].members()[0];
//! let client = cluster.clients()[0];
//! // Reserve two loopback ports for the example.
//! let mut addrs = BTreeMap::new();
//! for p in [replica, client] {
//!     let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//!     addrs.insert(p, l.local_addr().unwrap());
//! }
//! let r = TcpNode::spawn(
//!     Box::new(WhiteBoxReplica::new(
//!         ReplicaConfig::new(replica, GroupId(0), cluster.clone()).without_auto_election(),
//!     )),
//!     &addrs,
//!     false,
//! )
//! .unwrap();
//! let c = TcpNode::spawn(
//!     Box::new(MulticastClient::new(ClientConfig::new(client, cluster.clone()))),
//!     &addrs,
//!     false,
//! )
//! .unwrap();
//! c.submit(AppMessage::new(
//!     MsgId::new(client, 0),
//!     Destination::single(GroupId(0)),
//!     Payload::from("over tcp"),
//! ))
//! .unwrap();
//! // One replica delivery + one client completion.
//! assert!(r.wait_for_total(1, Duration::from_secs(10)).unwrap());
//! assert!(c.wait_for_total(1, Duration::from_secs(10)).unwrap());
//! r.shutdown();
//! c.shutdown();
//! ```

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use wbam_types::wire::{
    check_preamble, decode_frame_slice, encode_frame_with, encode_preamble, WireCodec, PREAMBLE_LEN,
};
use wbam_types::{AppMessage, ProcessId, WbamError};

use crate::clock::{Clock, WallClock};
use crate::node_loop::{run_node, Envelope};
use crate::transport::Transport;
use crate::{BoxedNode, DeliveryLog, RuntimeDelivery};

/// First re-dial delay after a failed or lost connection.
const BACKOFF_INITIAL: Duration = Duration::from_millis(10);
/// Backoff cap: the poller re-dials a down peer at least this often.
const BACKOFF_MAX: Duration = Duration::from_millis(500);
/// Upper bound on one (blocking) dial attempt from the poller thread.
/// Loopback dials resolve instantly (connect or refuse); this only matters on
/// a real LAN with an unreachable peer.
const DIAL_TIMEOUT: Duration = Duration::from_millis(250);
/// Cap on a peer's output buffer. When it is full, new frames are dropped
/// (fair-lossy: the protocols' retry timers recover) — this bounds memory
/// while a peer is down without ever cutting a queued frame in half. Every
/// drop is counted in [`TransportStats`].
const OUTBUF_CAP: usize = 8 * 1024 * 1024;
/// Read granularity of the poller.
const READ_CHUNK: usize = 64 * 1024;

/// What travels inside a TCP frame: a connection handshake or a protocol
/// message, encoded with the connection's negotiated [`WireCodec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum WireFrame<M> {
    /// First frame of every connection (right after the preamble): identifies
    /// the dialling process, so the accepting side can tag subsequent frames
    /// with their sender.
    Hello {
        /// The dialling process.
        from: ProcessId,
    },
    /// A protocol message.
    Protocol(M),
}

/// A batch of already-encoded frames from the node thread to the poller.
pub(crate) enum PollerCmd {
    /// Frames to append to the named peers' output buffers, in order.
    Frames(Vec<(ProcessId, Bytes)>),
    /// Stop the poller and drop all connections.
    Shutdown,
}

/// Wakes the poller thread out of its readiness wait. On Unix this is the
/// write end of the poller's self-pipe ([`netpoll::WakePipe`]): one byte per
/// call, coalesced by the kernel, drained once per poller iteration. On
/// other targets it is a no-op — the fallback poller parks in `recv_timeout`
/// on the command channel, which its senders wake directly.
#[derive(Clone)]
pub(crate) struct PollerWaker {
    #[cfg(unix)]
    pipe: Arc<netpoll::WakePipe>,
}

impl PollerWaker {
    fn new() -> Result<Self, WbamError> {
        #[cfg(unix)]
        {
            let pipe = netpoll::WakePipe::new().map_err(WbamError::from)?;
            Ok(PollerWaker {
                pipe: Arc::new(pipe),
            })
        }
        #[cfg(not(unix))]
        Ok(PollerWaker {})
    }

    fn wake(&self) {
        #[cfg(unix)]
        self.pipe.wake();
    }
}

/// Transport liveness counters the poller publishes, shared with the
/// [`TcpNode`] handle so embedders (and the `wbamd` stats line) can observe
/// frame loss that the fair-lossy model would otherwise hide completely.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Frames dropped at [`OUTBUF_CAP`], per destination peer. The peer set
    /// is fixed at spawn, so the map itself is never mutated — only the
    /// counters — and reads need no lock.
    dropped: BTreeMap<ProcessId, AtomicU64>,
}

impl TransportStats {
    fn for_peers(peers: impl IntoIterator<Item = ProcessId>) -> Self {
        TransportStats {
            dropped: peers.into_iter().map(|p| (p, AtomicU64::new(0))).collect(),
        }
    }

    fn record_drop(&self, peer: ProcessId) {
        if let Some(counter) = self.dropped.get(&peer) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total frames dropped at the output-buffer cap, across all peers.
    /// Zero in any run where no peer stayed down long enough to fill 8 MiB.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped
            .values()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Frames dropped at the output-buffer cap, by destination peer (peers
    /// with zero drops are omitted).
    pub fn dropped_frames_by_peer(&self) -> BTreeMap<ProcessId, u64> {
        self.dropped
            .iter()
            .map(|(&p, c)| (p, c.load(Ordering::Relaxed)))
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

/// Everything the spawning side needs to control a running poller thread.
pub(crate) struct PollerHandle {
    pub(crate) cmd_tx: Sender<PollerCmd>,
    pub(crate) waker: PollerWaker,
    pub(crate) stats: Arc<TransportStats>,
    pub(crate) thread: JoinHandle<()>,
}

/// TCP transport: encodes messages into wire frames on the node thread and
/// hands them — a whole protocol step per handoff — to the process's poller
/// thread, which owns every socket. Messages a node sends to *itself* (a
/// leader is a member of its own group and ACCEPTs to every member)
/// short-circuit into the local envelope channel instead of crossing the
/// network stack.
pub struct TcpTransport<M> {
    local: ProcessId,
    codec: WireCodec,
    loopback: Sender<Envelope<M>>,
    cmd_tx: Sender<PollerCmd>,
    waker: PollerWaker,
    peers: HashSet<ProcessId>,
}

impl<M: Serialize + DeserializeOwned + Send + 'static> TcpTransport<M> {
    /// Creates the transport used by `local` to reach every other process in
    /// `addrs` and spawns the poller thread that owns `listener` and all
    /// peer connections. Returns the transport and the poller's control
    /// handle (command channel, waker, stats, join handle).
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::Io`] when the wake pipe cannot be created.
    pub(crate) fn new(
        local: ProcessId,
        codec: WireCodec,
        listener: TcpListener,
        loopback: Sender<Envelope<M>>,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        shutdown: Arc<AtomicBool>,
        clock: WallClock,
    ) -> Result<(Self, PollerHandle), WbamError> {
        let (cmd_tx, cmd_rx) = unbounded();
        let waker = PollerWaker::new()?;
        // Preamble + Hello, sent as the first bytes of every outbound
        // connection. Encoded once here (where `M: Serialize` is in scope);
        // the poller itself only needs to decode.
        let mut hello = encode_preamble(codec).to_vec();
        let hello_frame = encode_frame_with(codec, &WireFrame::<M>::Hello { from: local })
            .expect("Hello frame serialisation cannot fail");
        hello.extend_from_slice(&hello_frame);

        let peer_addrs: Vec<(ProcessId, SocketAddr)> = addrs
            .iter()
            .filter(|(&p, _)| p != local)
            .map(|(&p, &a)| (p, a))
            .collect();
        let peers: HashSet<ProcessId> = peer_addrs.iter().map(|&(p, _)| p).collect();
        let stats = Arc::new(TransportStats::for_peers(peers.iter().copied()));
        let env_tx = loopback.clone();
        let thread = {
            let waker = waker.clone();
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                poller_loop::<M, _>(
                    codec, listener, peer_addrs, hello, cmd_rx, env_tx, shutdown, waker, stats,
                    clock,
                );
            })
        };
        let handle = PollerHandle {
            cmd_tx: cmd_tx.clone(),
            waker: waker.clone(),
            stats,
            thread,
        };
        Ok((
            TcpTransport {
                local,
                codec,
                loopback,
                cmd_tx,
                waker,
                peers,
            },
            handle,
        ))
    }

    fn encode(&self, msg: M) -> Option<Bytes> {
        // An unencodable message (e.g. over MAX_FRAME_LEN) is dropped: it
        // could never reach the peer, and retrying cannot help.
        encode_frame_with(self.codec, &WireFrame::Protocol(msg)).ok()
    }
}

impl<M: Serialize + DeserializeOwned + Send + 'static> Transport<M> for TcpTransport<M> {
    fn send(&self, to: ProcessId, msg: M) {
        self.send_many(vec![(to, msg)]);
    }

    fn send_many(&self, msgs: Vec<(ProcessId, M)>) {
        let mut frames = Vec::with_capacity(msgs.len());
        for (to, msg) in msgs {
            if to == self.local {
                let _ = self.loopback.send(Envelope::FromPeer {
                    from: self.local,
                    msg,
                });
            } else if self.peers.contains(&to) {
                if let Some(frame) = self.encode(msg) {
                    frames.push((to, frame));
                }
            }
        }
        if !frames.is_empty() {
            let _ = self.cmd_tx.send(PollerCmd::Frames(frames));
            // One wake per burst: the poller drains the whole channel (and
            // every other pending wake) in a single iteration.
            self.waker.wake();
        }
    }
}

/// Outbound state for one peer, owned by the poller: the (re)dialled
/// connection and the coalescing output buffer.
struct PeerOut {
    addr: SocketAddr,
    conn: Option<TcpStream>,
    /// Queued wire bytes; `offset..` is the unsent suffix. Always cut at
    /// frame boundaries when no connection is up.
    outbuf: Vec<u8>,
    offset: usize,
    /// Earliest [`Clock`] time (elapsed since runtime start) the next dial
    /// may be attempted — all backoff arithmetic is pure `Duration` math on
    /// the poller's clock, never a direct `Instant` read.
    next_dial: Duration,
    backoff: Duration,
}

impl PeerOut {
    fn new(addr: SocketAddr) -> Self {
        PeerOut {
            addr,
            conn: None,
            outbuf: Vec::new(),
            offset: 0,
            next_dial: Duration::ZERO,
            backoff: BACKOFF_INITIAL,
        }
    }

    fn queued(&self) -> usize {
        self.outbuf.len() - self.offset
    }

    /// Appends one frame, dropping it when the buffer is full (fair-lossy —
    /// dropping the *new* frame, never truncating the buffer, keeps the byte
    /// stream cut at frame boundaries even mid-flush). Returns whether the
    /// frame was queued; the caller counts drops in [`TransportStats`].
    #[must_use]
    fn queue(&mut self, frame: &[u8]) -> bool {
        if self.queued() + frame.len() > OUTBUF_CAP {
            return false;
        }
        self.outbuf.extend_from_slice(frame);
        true
    }

    /// Drops the connection and everything queued behind it: a partial frame
    /// cannot be resumed on a fresh connection, and the fair-lossy model says
    /// the protocols re-drive whatever mattered.
    fn disconnect(&mut self, now: Duration) {
        self.conn = None;
        self.outbuf.clear();
        self.offset = 0;
        self.next_dial = now + BACKOFF_INITIAL;
        self.backoff = (BACKOFF_INITIAL * 2).min(BACKOFF_MAX);
    }

    /// Records a failed dial attempt: the next attempt waits out the current
    /// backoff, which then doubles toward [`BACKOFF_MAX`].
    fn note_dial_failure(&mut self, now: Duration) {
        self.next_dial = now + self.backoff;
        self.backoff = (self.backoff * 2).min(BACKOFF_MAX);
    }

    /// Adopts a freshly dialled connection, prepending `hello` (preamble +
    /// Hello frame) to whatever queued up while the peer was down, and —
    /// crucially — resets the dial backoff to [`BACKOFF_INITIAL`] so the
    /// *next* outage starts from a fast re-dial instead of inheriting this
    /// outage's climbed-up delay.
    fn adopt_connection(&mut self, stream: TcpStream, hello: &[u8]) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        let mut buf = Vec::with_capacity(hello.len() + self.queued());
        buf.extend_from_slice(hello);
        buf.extend_from_slice(&self.outbuf[self.offset..]);
        self.outbuf = buf;
        self.offset = 0;
        self.conn = Some(stream);
        self.backoff = BACKOFF_INITIAL;
    }
}

/// Inbound state for one accepted connection.
struct InConn {
    stream: TcpStream,
    /// Peer address, for error messages only.
    desc: String,
    buf: Vec<u8>,
    preamble_ok: bool,
    from: Option<ProcessId>,
    /// Whether the last readiness wait marked this connection readable (set
    /// optimistically on accept, so a connection whose preamble is already
    /// in flight is serviced without waiting for another poll round).
    ready: bool,
}

/// Appends a command batch's frames to the peers' output buffers, counting
/// frames dropped at the cap.
fn queue_frames(
    frames: Vec<(ProcessId, Bytes)>,
    peers: &mut HashMap<ProcessId, PeerOut>,
    stats: &TransportStats,
) {
    for (to, frame) in frames {
        if let Some(peer) = peers.get_mut(&to) {
            if !peer.queue(&frame) {
                stats.record_drop(to);
            }
        }
    }
}

/// The single IO thread of a [`TcpNode`] process: accepts, reads, dials and
/// writes every socket, nonblocking throughout. Dispatches to the
/// wake-on-ready implementation on Unix and the portable parked fallback
/// elsewhere; see the module docs for the scheduling discipline.
#[allow(clippy::too_many_arguments)]
fn poller_loop<M: DeserializeOwned + Send + 'static, C: Clock>(
    codec: WireCodec,
    listener: TcpListener,
    peer_addrs: Vec<(ProcessId, SocketAddr)>,
    hello: Vec<u8>,
    cmd_rx: Receiver<PollerCmd>,
    env_tx: Sender<Envelope<M>>,
    shutdown: Arc<AtomicBool>,
    waker: PollerWaker,
    stats: Arc<TransportStats>,
    clock: C,
) {
    #[cfg(unix)]
    ready_poller_loop::<M, C>(
        codec, listener, peer_addrs, hello, cmd_rx, env_tx, shutdown, waker, stats, clock,
    );
    #[cfg(not(unix))]
    {
        let _ = waker;
        parked_poller_loop::<M, C>(
            codec, listener, peer_addrs, hello, cmd_rx, env_tx, shutdown, stats, clock,
        );
    }
}

/// The wake-on-ready poller (Unix): every socket plus the wake pipe is
/// multiplexed through `poll(2)`, so the loop runs only when the kernel has
/// something for it — readable bytes, a writable once-full socket, a dead
/// connection — or the node thread queued frames (self-pipe wake). The only
/// timeout ever passed to `poll` is the nearest dial-backoff deadline of a
/// down peer with queued bytes; an idle process sleeps indefinitely.
#[cfg(unix)]
#[allow(clippy::too_many_arguments)]
fn ready_poller_loop<M: DeserializeOwned + Send + 'static, C: Clock>(
    codec: WireCodec,
    listener: TcpListener,
    peer_addrs: Vec<(ProcessId, SocketAddr)>,
    hello: Vec<u8>,
    cmd_rx: Receiver<PollerCmd>,
    env_tx: Sender<Envelope<M>>,
    shutdown: Arc<AtomicBool>,
    waker: PollerWaker,
    stats: Arc<TransportStats>,
    clock: C,
) {
    use std::os::unix::io::AsRawFd;

    use netpoll::{poll, PollFd, POLLIN, POLLOUT};

    let mut peers: HashMap<ProcessId, PeerOut> = peer_addrs
        .into_iter()
        .map(|(p, a)| (p, PeerOut::new(a)))
        .collect();
    // Stable iteration order for aligning peers with poll-set entries.
    let peer_ids: Vec<ProcessId> = peers.keys().copied().collect();
    let mut inbound: Vec<InConn> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut listener_ready = true; // service everything on the first pass
    let mut fds: Vec<PollFd> = Vec::new();

    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }

        // 1. Consume pending wakes, *then* drain the channel: a wake racing
        // in after the drain leaves the pipe readable, so the next poll
        // returns immediately and no queued command is ever stranded.
        waker.pipe.drain();
        loop {
            match cmd_rx.try_recv() {
                Ok(PollerCmd::Frames(frames)) => queue_frames(frames, &mut peers, &stats),
                Ok(PollerCmd::Shutdown) | Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => break,
            }
        }

        // 2. Accept new inbound connections when the listener polled ready.
        if listener_ready {
            loop {
                match listener.accept() {
                    Ok((stream, addr)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        inbound.push(InConn {
                            stream,
                            desc: addr.to_string(),
                            buf: Vec::new(),
                            preamble_ok: false,
                            from: None,
                            ready: true,
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break, // transient accept error; retry next poll
                }
            }
        }

        // 3. Read and decode from every inbound connection the kernel marked
        // readable (level-triggered: unread bytes re-report next poll).
        inbound.retain_mut(|conn| {
            !std::mem::take(&mut conn.ready) || service_inbound(conn, codec, &env_tx, &mut chunk)
        });

        // 4. Dial due peers and flush queued output. Writes are attempted
        // whenever bytes are queued — at worst one spurious `WouldBlock` per
        // wake — so a frame queued in step 1 reaches the kernel in the same
        // iteration, without waiting for a POLLOUT round-trip.
        let now = clock.now();
        for peer in peers.values_mut() {
            service_peer(peer, &hello, now);
        }

        // 5. Build the poll set: wake pipe, listener, inbound sockets
        // (readable), connected peers (writable only while bytes are
        // queued; error/hangup conditions report regardless, so a dead
        // outbound connection is noticed without writing to it).
        fds.clear();
        fds.push(PollFd::new(waker.pipe.read_fd(), POLLIN));
        fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        for conn in &inbound {
            fds.push(PollFd::new(conn.stream.as_raw_fd(), POLLIN));
        }
        let peer_base = fds.len();
        let mut polled_peers: Vec<ProcessId> = Vec::with_capacity(peer_ids.len());
        for &id in &peer_ids {
            let peer = &peers[&id];
            if let Some(conn) = &peer.conn {
                let events = if peer.queued() > 0 { POLLOUT } else { 0 };
                fds.push(PollFd::new(conn.as_raw_fd(), events));
                polled_peers.push(id);
            }
        }

        // 6. The sole timeout: the nearest re-dial deadline among down peers
        // that have bytes to deliver. With none, block until readiness or an
        // explicit wake — there is nothing else the poller could usefully do.
        let timeout = peers
            .values()
            .filter(|p| p.conn.is_none() && p.queued() > 0)
            .map(|p| p.next_dial.saturating_sub(now))
            .min();
        match poll(&mut fds, timeout) {
            Ok(_) => {}
            Err(e) => {
                // A failing poll (EINVAL/ENOMEM — none expected at this fd
                // count) must not hot-loop; degrade to a short sleep and
                // retry rather than killing the process's networking.
                eprintln!("wbam-runtime: poll failed: {e}");
                std::thread::sleep(Duration::from_millis(5));
                listener_ready = true;
                for conn in &mut inbound {
                    conn.ready = true;
                }
                continue;
            }
        }

        // 7. Record readiness for the next iteration's servicing passes.
        listener_ready = fds[1].readable();
        for (conn, fd) in inbound.iter_mut().zip(&fds[2..peer_base]) {
            conn.ready = fd.readable();
        }
        let now = clock.now();
        for (&id, fd) in polled_peers.iter().zip(&fds[peer_base..]) {
            if fd.has_error() {
                // RST/FIN on a write-only connection: drop it now instead of
                // discovering the corpse on the next write.
                peers
                    .get_mut(&id)
                    .expect("polled peer exists")
                    .disconnect(now);
            }
        }
    }
}

/// The portable fallback poller (non-Unix): parks in a short `recv_timeout`
/// on the command channel, so outbound sends wake it instantly but inbound
/// socket bytes wait out the park — an adaptive 50 µs–50 ms idle that backs
/// off while the process is quiet. Kept only where `poll(2)` is unavailable.
#[cfg(not(unix))]
#[allow(clippy::too_many_arguments)]
fn parked_poller_loop<M: DeserializeOwned + Send + 'static, C: Clock>(
    codec: WireCodec,
    listener: TcpListener,
    peer_addrs: Vec<(ProcessId, SocketAddr)>,
    hello: Vec<u8>,
    cmd_rx: Receiver<PollerCmd>,
    env_tx: Sender<Envelope<M>>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
    clock: C,
) {
    /// Shortest idle wait between iterations; yields the core to the node
    /// thread instead of spinning.
    const IDLE_MIN: Duration = Duration::from_micros(50);
    /// Longest idle wait once the process has been quiet for a while; also
    /// bounds how stale the shutdown flag can get on this fallback path.
    const IDLE_MAX: Duration = Duration::from_millis(50);
    /// How long after the last activity the wait stays at `IDLE_MIN` before
    /// backing off exponentially toward `IDLE_MAX`.
    const HOT_WINDOW: Duration = Duration::from_millis(5);

    use crate::clock::WaitError;

    let mut peers: HashMap<ProcessId, PeerOut> = peer_addrs
        .into_iter()
        .map(|(p, a)| (p, PeerOut::new(a)))
        .collect();
    let mut inbound: Vec<InConn> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut idle = IDLE_MIN;
    let mut last_progress = clock.now();

    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let mut progress = false;

        loop {
            match cmd_rx.try_recv() {
                Ok(PollerCmd::Frames(frames)) => {
                    progress = true;
                    queue_frames(frames, &mut peers, &stats);
                }
                Ok(PollerCmd::Shutdown) | Err(TryRecvError::Disconnected) => return,
                Err(TryRecvError::Empty) => break,
            }
        }

        loop {
            match listener.accept() {
                Ok((stream, addr)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    inbound.push(InConn {
                        stream,
                        desc: addr.to_string(),
                        buf: Vec::new(),
                        preamble_ok: false,
                        from: None,
                        ready: true,
                    });
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        inbound.retain_mut(|conn| {
            let had = conn.buf.len();
            let keep = service_inbound(conn, codec, &env_tx, &mut chunk);
            progress |= conn.buf.len() != had || !keep;
            keep
        });

        let now = clock.now();
        for peer in peers.values_mut() {
            progress |= service_peer(peer, &hello, now);
        }

        if progress {
            last_progress = clock.now();
            idle = IDLE_MIN;
        } else if clock.now().saturating_sub(last_progress) > HOT_WINDOW {
            idle = (idle * 2).min(IDLE_MAX);
        }
        match clock.recv_deadline(&cmd_rx, Some(clock.now() + idle)) {
            Ok(PollerCmd::Frames(frames)) => {
                last_progress = clock.now();
                idle = IDLE_MIN;
                queue_frames(frames, &mut peers, &stats);
            }
            Ok(PollerCmd::Shutdown) => return,
            Err(WaitError::Timeout) => {}
            Err(WaitError::Disconnected) => return,
        }
    }
}

/// Drains one inbound connection: reads until `WouldBlock`, then decodes
/// every complete frame with a cursor and compacts the buffer once. Returns
/// `false` when the connection should be dropped (EOF, IO error, bad
/// preamble, undecodable frame — a corrupt length prefix cannot be resynced
/// from; the peer's poller re-dials).
fn service_inbound<M: DeserializeOwned>(
    conn: &mut InConn,
    codec: WireCodec,
    env_tx: &Sender<Envelope<M>>,
    chunk: &mut [u8],
) -> bool {
    loop {
        match conn.stream.read(chunk) {
            Ok(0) => return false,
            Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    let mut pos = 0usize;
    if !conn.preamble_ok {
        if conn.buf.len() < PREAMBLE_LEN {
            return true; // need more bytes
        }
        let mut preamble = [0u8; PREAMBLE_LEN];
        preamble.copy_from_slice(&conn.buf[..PREAMBLE_LEN]);
        if let Err(e) = check_preamble(&preamble, codec) {
            eprintln!("wbam-runtime: rejecting connection from {}: {e}", conn.desc);
            return false;
        }
        conn.preamble_ok = true;
        pos = PREAMBLE_LEN;
    }
    loop {
        match decode_frame_slice::<WireFrame<M>>(codec, &conn.buf[pos..]) {
            Ok(Some((WireFrame::Hello { from }, used))) => {
                conn.from = Some(from);
                pos += used;
            }
            Ok(Some((WireFrame::Protocol(msg), used))) => {
                pos += used;
                let Some(from) = conn.from else {
                    eprintln!(
                        "wbam-runtime: dropping connection from {}: protocol frame before Hello",
                        conn.desc
                    );
                    return false;
                };
                if env_tx.send(Envelope::FromPeer { from, msg }).is_err() {
                    return false; // node thread gone
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("wbam-runtime: dropping connection from {}: {e}", conn.desc);
                return false;
            }
        }
    }
    if pos > 0 {
        conn.buf.drain(..pos);
    }
    true
}

/// Dials a peer if due and flushes its output buffer with coalesced writes:
/// everything queued goes to the kernel in as few `write` calls as the
/// socket buffer allows. Returns whether any progress (dial or bytes
/// written) was made. `now` is the poller's clock reading (elapsed since
/// runtime start).
fn service_peer(peer: &mut PeerOut, hello: &[u8], now: Duration) -> bool {
    let mut progress = false;
    if peer.conn.is_none() {
        // Dial lazily: only a peer we have bytes for is worth a connection.
        if peer.queued() == 0 || now < peer.next_dial {
            return false;
        }
        match TcpStream::connect_timeout(&peer.addr, DIAL_TIMEOUT) {
            Ok(stream) => {
                // The fresh connection starts with preamble + Hello, then
                // whatever queued up while the peer was down.
                peer.adopt_connection(stream, hello);
                progress = true;
            }
            Err(_) => {
                peer.note_dial_failure(now);
                return false;
            }
        }
    }
    let stream = peer.conn.as_mut().expect("connected above");
    while peer.offset < peer.outbuf.len() {
        match stream.write(&peer.outbuf[peer.offset..]) {
            Ok(0) => {
                peer.disconnect(now);
                return true;
            }
            Ok(n) => {
                peer.offset += n;
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break, // socket buffer full
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                peer.disconnect(now);
                return true;
            }
        }
    }
    if peer.offset == peer.outbuf.len() {
        peer.outbuf.clear();
        peer.offset = 0;
    } else if peer.offset > READ_CHUNK {
        peer.outbuf.drain(..peer.offset);
        peer.offset = 0;
    }
    progress
}

/// One protocol node running over real TCP: the per-process runtime behind
/// the `wbamd` deployment binary (one OS process = one [`TcpNode`]).
///
/// The node runs the same event loop as [`InProcessCluster`](crate::InProcessCluster)
/// — only the transport differs — so a protocol that is correct under the
/// simulator and the in-process runtime behaves identically here.
///
/// The delivery accessors return [`WbamError::NotReady`] when the node
/// thread has panicked while publishing deliveries (a poisoned delivery
/// log): one dead node thread must surface as an error to the embedder, not
/// as a panic cascade through every thread that touches the log.
pub struct TcpNode<M> {
    id: ProcessId,
    env_tx: Sender<Envelope<M>>,
    cmd_tx: Sender<PollerCmd>,
    waker: PollerWaker,
    stats: Arc<TransportStats>,
    deliveries: Arc<DeliveryLog>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    clock: WallClock,
}

impl<M: Serialize + DeserializeOwned + Send + 'static> TcpNode<M> {
    /// Spawns the node with the default wire codec ([`WireCodec::Binary`]);
    /// see [`Self::spawn_with_codec`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::spawn_with_codec`].
    pub fn spawn(
        node: BoxedNode<M>,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        restart: bool,
    ) -> Result<Self, WbamError> {
        Self::spawn_with_codec(node, addrs, restart, WireCodec::default())
    }

    /// Binds `addrs[node.id()]`, spawns the poller thread and the node
    /// thread, and starts the node with `Event::Init`. All connections use
    /// `codec` for their frame bodies; the preamble handshake rejects peers
    /// running a different codec (or wire version) with a clear error.
    ///
    /// With `restart = true` the node additionally receives `Event::Restart`
    /// before any peer traffic — the flag a redeployed `wbamd` process passes
    /// so the replica rejoins its group (fresh ballot via the `NEW_LEADER`
    /// handshake, state re-synchronised from a quorum) exactly like the
    /// simulator's restart path.
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::UnknownProcess`] when `addrs` has no entry for
    /// the node, or [`WbamError::Io`] when binding its listen address (or
    /// creating the poller's wake pipe) fails.
    pub fn spawn_with_codec(
        node: BoxedNode<M>,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        restart: bool,
        codec: WireCodec,
    ) -> Result<Self, WbamError> {
        let id = node.id();
        let listen = *addrs.get(&id).ok_or(WbamError::UnknownProcess(id))?;
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;

        let clock = WallClock::new();
        let deliveries = Arc::new(DeliveryLog::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (env_tx, env_rx) = unbounded();
        let mut threads = Vec::new();

        if restart {
            // Enqueued before the poller thread exists, so the node is
            // guaranteed to process Event::Init then Event::Restart before
            // any peer traffic (connections parked in the kernel backlog are
            // only read once the poller starts accepting).
            let _ = env_tx.send(Envelope::Restart);
        }
        let (transport, poller) = TcpTransport::new(
            id,
            codec,
            listener,
            env_tx.clone(),
            addrs,
            Arc::clone(&shutdown),
            clock,
        )?;
        let PollerHandle {
            cmd_tx,
            waker,
            stats,
            thread,
        } = poller;
        threads.push(thread);
        {
            let deliveries = Arc::clone(&deliveries);
            threads.push(std::thread::spawn(move || {
                run_node(node, env_rx, transport, deliveries, clock);
            }));
        }
        Ok(TcpNode {
            id,
            env_tx,
            cmd_tx,
            waker,
            stats,
            deliveries,
            shutdown,
            threads,
            clock,
        })
    }

    /// The process this node plays.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Submits an application message for multicast at this node (normally a
    /// client node).
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::NotReady`] when the node thread has exited.
    pub fn submit(&self, msg: AppMessage) -> Result<(), WbamError> {
        self.control(Envelope::Submit(msg))
    }

    /// Tells the node to start leader recovery.
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::NotReady`] when the node thread has exited.
    pub fn become_leader(&self) -> Result<(), WbamError> {
        self.control(Envelope::BecomeLeader)
    }

    fn control(&self, envelope: Envelope<M>) -> Result<(), WbamError> {
        self.env_tx.send(envelope).map_err(|_| WbamError::NotReady {
            process: self.id,
            reason: "node thread has exited".to_string(),
        })
    }

    /// Errors out when the node thread has panicked while holding the
    /// delivery log, so embedders get a typed error instead of a cascade.
    fn check_log(&self) -> Result<(), WbamError> {
        if self.deliveries.is_poisoned() {
            return Err(WbamError::NotReady {
                process: self.id,
                reason: "node thread panicked while publishing deliveries; \
                         the delivery log may be incomplete"
                    .to_string(),
            });
        }
        Ok(())
    }

    /// A snapshot of the deliveries currently buffered.
    ///
    /// # Errors
    ///
    /// Returns [`WbamError::NotReady`] when the node thread has panicked
    /// while publishing deliveries.
    pub fn deliveries(&self) -> Result<Vec<RuntimeDelivery>, WbamError> {
        self.check_log()?;
        Ok(self.deliveries.snapshot())
    }

    /// Removes and returns all buffered deliveries (see
    /// [`InProcessCluster::drain_deliveries`](crate::InProcessCluster::drain_deliveries)).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::deliveries`].
    pub fn drain_deliveries(&self) -> Result<Vec<RuntimeDelivery>, WbamError> {
        self.check_log()?;
        Ok(self.deliveries.drain())
    }

    /// Total number of deliveries observed since spawn, including drained ones.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::deliveries`].
    pub fn total_deliveries(&self) -> Result<u64, WbamError> {
        self.check_log()?;
        Ok(self.deliveries.total())
    }

    /// Blocks until the cumulative delivery count reaches `count` or the
    /// timeout expires; returns whether the count was reached.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::deliveries`] — a node thread that panicked
    /// before or during the wait surfaces as the error, not a stuck `false`.
    pub fn wait_for_total(&self, count: u64, timeout: Duration) -> Result<bool, WbamError> {
        let reached = self.deliveries.wait_for_total(count, timeout);
        self.check_log()?;
        Ok(reached)
    }

    /// Total frames this node's transport dropped at the per-peer output
    /// buffer cap since spawn. Zero in any fault-free run; non-zero means a
    /// peer stayed unreachable long enough to fill its 8 MiB buffer and the
    /// protocols' retry timers carried the loss.
    pub fn dropped_frames(&self) -> u64 {
        self.stats.dropped_frames()
    }

    /// Frames dropped at the output-buffer cap, by destination peer (peers
    /// with zero drops are omitted).
    pub fn dropped_frames_by_peer(&self) -> BTreeMap<ProcessId, u64> {
        self.stats.dropped_frames_by_peer()
    }

    /// Time since the node was spawned.
    pub fn uptime(&self) -> Duration {
        self.clock.now()
    }

    /// Stops the node and its poller thread and waits for them to exit. The
    /// explicit wake means the poller observes the shutdown immediately,
    /// even when it is parked with no timeout.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.env_tx.send(Envelope::Shutdown);
        let _ = self.cmd_tx.send(PollerCmd::Shutdown);
        self.waker.wake();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use wbam_core::{ClientConfig, MulticastClient, ReplicaConfig, WhiteBoxMsg, WhiteBoxReplica};
    use wbam_types::{ClusterConfig, Destination, GroupId, MsgId, Payload};

    /// Reserves one free loopback port per process by briefly binding port 0.
    fn reserve_addrs(cluster: &ClusterConfig) -> BTreeMap<ProcessId, SocketAddr> {
        cluster
            .all_processes()
            .into_iter()
            .map(|p| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
                (p, l.local_addr().expect("local addr"))
            })
            .collect()
    }

    fn spawn_replica(
        cluster: &ClusterConfig,
        addrs: &BTreeMap<ProcessId, SocketAddr>,
        member: ProcessId,
        restart: bool,
        codec: WireCodec,
    ) -> TcpNode<WhiteBoxMsg> {
        let group = cluster.group_of(member).expect("replica group");
        let cfg = ReplicaConfig::new(member, group, cluster.clone()).without_auto_election();
        TcpNode::spawn_with_codec(Box::new(WhiteBoxReplica::new(cfg)), addrs, restart, codec)
            .expect("spawn")
    }

    fn order_of(node: &TcpNode<WhiteBoxMsg>) -> Vec<MsgId> {
        node.deliveries()
            .expect("delivery log healthy")
            .iter()
            .map(|d| d.delivery.msg.id)
            .collect()
    }

    /// A 2-group × 3-replica cluster over real loopback sockets delivers
    /// cross-group multicasts in identical per-replica order (binary codec,
    /// the deployed default), and a fault-free run drops zero frames at the
    /// output-buffer cap.
    #[test]
    fn tcp_cluster_delivers_cross_group_multicasts_in_order() {
        let cluster = ClusterConfig::builder().groups(2, 3).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let replicas: Vec<TcpNode<WhiteBoxMsg>> = cluster
            .groups()
            .iter()
            .flat_map(|gc| gc.members().to_vec())
            .map(|m| spawn_replica(&cluster, &addrs, m, false, WireCodec::Binary))
            .collect();
        let client_id = cluster.clients()[0];
        let client = TcpNode::spawn(
            Box::new(MulticastClient::new(ClientConfig::new(
                client_id,
                cluster.clone(),
            ))),
            &addrs,
            false,
        )
        .expect("spawn client");

        for seq in 0..5u64 {
            client
                .submit(AppMessage::new(
                    MsgId::new(client_id, seq),
                    Destination::new(vec![GroupId(0), GroupId(1)]).unwrap(),
                    Payload::from(format!("op-{seq}").as_str()),
                ))
                .unwrap();
        }
        assert!(client.wait_for_total(5, Duration::from_secs(30)).unwrap());
        for r in &replicas {
            assert!(
                r.wait_for_total(5, Duration::from_secs(30)).unwrap(),
                "replica {} delivered only {}",
                r.id(),
                r.total_deliveries().unwrap()
            );
        }
        let reference = order_of(&replicas[0]);
        assert_eq!(reference.len(), 5);
        for r in &replicas[1..] {
            assert_eq!(order_of(r), reference, "replica {} order differs", r.id());
        }
        for r in &replicas {
            assert_eq!(r.dropped_frames(), 0, "replica {} dropped frames", r.id());
            assert!(r.dropped_frames_by_peer().is_empty());
        }
        assert_eq!(client.dropped_frames(), 0);
        for r in replicas {
            r.shutdown();
        }
        client.shutdown();
    }

    /// The `--wire json` compatibility codec still carries a cluster
    /// end-to-end: a 1-group × 3-replica cluster plus client, all speaking
    /// JSON frames, delivers in identical order.
    #[test]
    fn json_codec_cluster_delivers() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let replicas: Vec<TcpNode<WhiteBoxMsg>> = cluster.groups()[0]
            .members()
            .iter()
            .map(|&m| spawn_replica(&cluster, &addrs, m, false, WireCodec::Json))
            .collect();
        let client_id = cluster.clients()[0];
        let client = TcpNode::spawn_with_codec(
            Box::new(MulticastClient::new(ClientConfig::new(
                client_id,
                cluster.clone(),
            ))),
            &addrs,
            false,
            WireCodec::Json,
        )
        .expect("spawn client");
        for seq in 0..3u64 {
            client
                .submit(AppMessage::new(
                    MsgId::new(client_id, seq),
                    Destination::single(GroupId(0)),
                    Payload::from(format!("op-{seq}").as_str()),
                ))
                .unwrap();
        }
        assert!(client.wait_for_total(3, Duration::from_secs(30)).unwrap());
        for r in &replicas {
            assert!(r.wait_for_total(3, Duration::from_secs(30)).unwrap());
        }
        let reference = order_of(&replicas[0]);
        for r in &replicas[1..] {
            assert_eq!(order_of(r), reference);
        }
        for r in replicas {
            r.shutdown();
        }
        client.shutdown();
    }

    /// Regression for the handshake version/codec negotiation: a peer whose
    /// preamble announces the wrong codec (or garbage) is disconnected
    /// promptly — the accepting side closes the socket instead of trying to
    /// parse frames it cannot decode.
    #[test]
    fn mismatched_preamble_is_rejected_with_prompt_close() {
        let cluster = ClusterConfig::builder().groups(1, 1).clients(0).build();
        let addrs = reserve_addrs(&cluster);
        let replica = cluster.groups()[0].members()[0];
        let node = spawn_replica(&cluster, &addrs, replica, false, WireCodec::Binary);

        let probe = |preamble: &[u8]| -> std::io::Result<usize> {
            let mut stream = TcpStream::connect(addrs[&replica]).expect("dial node");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream.write_all(preamble).expect("write preamble");
            let mut buf = [0u8; 16];
            stream.read(&mut buf)
        };

        // A JSON-codec peer dialling a binary-codec node: closed with EOF (or
        // reset), never left hanging and never answered with data.
        match probe(&encode_preamble(WireCodec::Json)) {
            Ok(0) => {}
            Ok(n) => panic!("expected EOF, read {n} bytes"),
            Err(e) => assert!(
                matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe),
                "unexpected error {e:?}"
            ),
        }
        // A non-WBAM client (wrong magic) gets the same prompt close.
        match probe(b"GET /") {
            Ok(0) => {}
            Ok(n) => panic!("expected EOF, read {n} bytes"),
            Err(e) => assert!(
                matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe),
                "unexpected error {e:?}"
            ),
        }
        node.shutdown();
    }

    /// Killing a follower's process and spawning a fresh one on the same
    /// address (the `wbamd --restart` path) rejoins it to the group: peers'
    /// pollers reconnect with backoff, the fresh node's `Event::Restart`
    /// pulls the group state via the NEW_LEADER handshake, and it ends up
    /// with the same delivery order as the survivors.
    #[test]
    fn restarted_process_rejoins_over_tcp() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let members = cluster.groups()[0].members().to_vec();
        let mut replicas: BTreeMap<ProcessId, TcpNode<WhiteBoxMsg>> = members
            .iter()
            .map(|m| {
                (
                    *m,
                    spawn_replica(&cluster, &addrs, *m, false, WireCodec::Binary),
                )
            })
            .collect();
        let client_id = cluster.clients()[0];
        let client = TcpNode::spawn(
            Box::new(MulticastClient::new(ClientConfig::new(
                client_id,
                cluster.clone(),
            ))),
            &addrs,
            false,
        )
        .expect("spawn client");
        let submit = |seq: u64| {
            client
                .submit(AppMessage::new(
                    MsgId::new(client_id, seq),
                    Destination::single(GroupId(0)),
                    Payload::from(format!("op-{seq}").as_str()),
                ))
                .unwrap();
        };

        for seq in 0..3 {
            submit(seq);
        }
        assert!(client.wait_for_total(3, Duration::from_secs(30)).unwrap());

        // Kill the follower p1 (its listener and sockets die with it).
        let victim = members[1];
        replicas.remove(&victim).unwrap().shutdown();

        // The remaining quorum keeps delivering.
        for seq in 3..5 {
            submit(seq);
        }
        assert!(client.wait_for_total(5, Duration::from_secs(30)).unwrap());

        // A fresh process takes over the victim's address and rejoins.
        let rejoined = spawn_replica(&cluster, &addrs, victim, true, WireCodec::Binary);
        // It recovers the full history (its delivery log starts empty) and
        // keeps up with new traffic.
        submit(5);
        assert!(
            rejoined.wait_for_total(6, Duration::from_secs(30)).unwrap(),
            "rejoined replica delivered only {}",
            rejoined.total_deliveries().unwrap()
        );
        assert!(client.wait_for_total(6, Duration::from_secs(30)).unwrap());
        let survivor = &replicas[&members[0]];
        assert!(survivor.wait_for_total(6, Duration::from_secs(30)).unwrap());
        assert_eq!(
            order_of(&rejoined),
            order_of(survivor),
            "rejoined replica order differs from survivor"
        );

        rejoined.shutdown();
        for (_, r) in replicas {
            r.shutdown();
        }
        client.shutdown();
    }

    /// Regression for the dial-backoff state machine, exercised directly on
    /// [`PeerOut`] (the poller runs these exact transitions): repeated dial
    /// failures climb the backoff exponentially to its cap, and a successful
    /// (re)connect resets it to [`BACKOFF_INITIAL`] — a later outage must
    /// start from the fast 10 ms re-dial, not inherit a stale half-second
    /// delay from an earlier one.
    #[test]
    fn dial_backoff_resets_after_successful_reconnect() {
        // A port that was bound and released: dials are refused immediately.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
            l.local_addr().expect("local addr")
        };
        // The backoff state machine is pure Duration math on the poller's
        // clock, so the test drives it with explicit times.
        let mut peer = PeerOut::new(addr);
        assert!(peer.queue(b"frame"), "empty buffer accepts a frame");
        assert_eq!(peer.next_dial, Duration::ZERO, "first dial is due at once");

        // Fail enough dials to saturate the backoff at its cap. Each attempt
        // is made exactly when due, as the poller's timeout handling does.
        let mut expected = BACKOFF_INITIAL;
        for _ in 0..10 {
            let now = peer.next_dial;
            assert!(!service_peer(&mut peer, b"hello", now), "dial must fail");
            assert!(peer.conn.is_none());
            assert_eq!(peer.next_dial, now + expected, "wrong re-dial deadline");
            expected = (expected * 2).min(BACKOFF_MAX);
        }
        assert_eq!(peer.backoff, BACKOFF_MAX, "backoff saturates at the cap");

        // The peer comes back: the next due dial succeeds and must reset the
        // backoff so the *next* outage re-dials fast.
        let listener = TcpListener::bind(addr).expect("rebind victim port");
        let due = peer.next_dial;
        assert!(service_peer(&mut peer, b"hello", due));
        assert!(peer.conn.is_some(), "reconnected");
        assert_eq!(
            peer.backoff, BACKOFF_INITIAL,
            "stale backoff survived the reconnect"
        );
        // And losing the fresh connection re-dials after BACKOFF_INITIAL,
        // not after the previous outage's saturated 500 ms.
        let now = due + Duration::from_secs(1);
        peer.disconnect(now);
        assert_eq!(peer.next_dial, now + BACKOFF_INITIAL);
        drop(listener);
    }

    /// Frames beyond [`OUTBUF_CAP`] are dropped (never truncated) and the
    /// drop is counted per peer through [`TransportStats`].
    #[test]
    fn outbuf_overflow_drops_whole_frames_and_counts_them() {
        let addr = "127.0.0.1:9".parse().unwrap(); // never dialled here
        let mut peers = HashMap::new();
        peers.insert(ProcessId(7), PeerOut::new(addr));
        let stats = TransportStats::for_peers([ProcessId(7)]);

        let big = Bytes::from(vec![0u8; OUTBUF_CAP - 10]);
        let small = Bytes::from(vec![1u8; 64]);
        queue_frames(vec![(ProcessId(7), big)], &mut peers, &stats);
        assert_eq!(stats.dropped_frames(), 0);
        // The next frame would cross the cap: dropped whole, counted.
        queue_frames(
            vec![(ProcessId(7), small.clone()), (ProcessId(7), small)],
            &mut peers,
            &stats,
        );
        assert_eq!(stats.dropped_frames(), 2);
        assert_eq!(stats.dropped_frames_by_peer()[&ProcessId(7)], 2);
        // Unknown destinations are ignored, not counted against anyone.
        queue_frames(
            vec![(ProcessId(99), Bytes::from(vec![2u8; 8]))],
            &mut peers,
            &stats,
        );
        assert_eq!(stats.dropped_frames(), 2);
        assert_eq!(peers[&ProcessId(7)].queued(), OUTBUF_CAP - 10);
    }

    /// Regression for split reads on the accept path: the 4-byte preamble,
    /// the `Hello` frame and a protocol frame arriving **one byte per
    /// `write`** (what a fault-injecting proxy forwarding byte-at-a-time
    /// makes real) must be reassembled across short nonblocking reads — the
    /// handshake is a byte stream, not a datagram. The trickled MULTICAST
    /// must come out the far end as a normal delivery.
    #[test]
    fn handshake_split_across_byte_sized_reads_is_reassembled() {
        let cluster = ClusterConfig::builder().groups(1, 1).clients(1).build();
        let addrs = reserve_addrs(&cluster);
        let replica = cluster.groups()[0].members()[0];
        let client_id = cluster.clients()[0];
        let node = spawn_replica(&cluster, &addrs, replica, false, WireCodec::Binary);

        let mut bytes = encode_preamble(WireCodec::Binary).to_vec();
        bytes.extend_from_slice(
            &encode_frame_with(
                WireCodec::Binary,
                &WireFrame::<WhiteBoxMsg>::Hello { from: client_id },
            )
            .expect("encode Hello"),
        );
        bytes.extend_from_slice(
            &encode_frame_with(
                WireCodec::Binary,
                &WireFrame::Protocol(WhiteBoxMsg::Multicast {
                    msg: AppMessage::new(
                        MsgId::new(client_id, 0),
                        Destination::single(GroupId(0)),
                        Payload::from("trickled"),
                    ),
                }),
            )
            .expect("encode Multicast"),
        );

        let mut stream = TcpStream::connect(addrs[&replica]).expect("dial node");
        stream.set_nodelay(true).unwrap();
        for byte in &bytes {
            stream.write_all(std::slice::from_ref(byte)).expect("write");
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }

        assert!(
            node.wait_for_total(1, Duration::from_secs(30)).unwrap(),
            "trickled multicast was never delivered: the accept path mishandles \
             short reads inside the handshake"
        );
        assert_eq!(order_of(&node), vec![MsgId::new(client_id, 0)]);
        node.shutdown();
    }

    /// Regression for shutdown racing an in-flight reconnect: a node whose
    /// peers are unreachable sits in the dial-backoff cycle (queued bytes,
    /// climbing `next_dial`), and `shutdown()` landing in that state must
    /// join the poller promptly — no panic from the backoff machinery, no
    /// poller thread left dialling dead addresses after the join returns.
    #[test]
    fn shutdown_during_dial_backoff_joins_promptly() {
        let cluster = ClusterConfig::builder().groups(1, 3).clients(0).build();
        // Reserved-then-released ports: every dial is refused instantly, so
        // the two dead peers drive their backoff toward BACKOFF_MAX.
        let addrs = reserve_addrs(&cluster);
        let node = spawn_replica(
            &cluster,
            &addrs,
            cluster.groups()[0].members()[0],
            false,
            WireCodec::Binary,
        );
        // Leader recovery queues NEW_STATE traffic for both (dead) group
        // members, arming the dial/backoff cycle with real queued bytes.
        node.become_leader().unwrap();
        // Let the backoff climb so the shutdown lands mid-cycle, with the
        // poller parked on a re-dial deadline rather than idle.
        std::thread::sleep(Duration::from_millis(600));

        let begin = Instant::now();
        node.shutdown();
        let took = begin.elapsed();
        assert!(
            took < Duration::from_secs(2),
            "shutdown under dial backoff took {took:?}: poller missed the wake"
        );
    }
}
